#![forbid(unsafe_code)]
//! `noc` — command-line front end for the allocator study toolkit.
//!
//! Subcommands:
//!
//! * `noc sim`     — run one network simulation and print latency/throughput
//! * `noc explain` — decompose end-to-end packet latency into pipeline stages
//! * `noc check`   — statically verify a design (deadlock freedom, liveness,
//!   allocator wiring)
//! * `noc bench`   — run the perf-regression workload matrix
//! * `noc synth`   — synthesize a VC or switch allocator design point
//! * `noc quality` — measure open-loop matching quality
//! * `noc verilog` — emit structural Verilog for a design point
//! * `noc sweep`   — run/resume cached, journaled experiment sweeps
//! * `noc serve`   — sweep-as-a-service daemon deduplicating concurrent clients
//! * `noc client`  — send one sweep/preset/status request to a serve daemon
//! * `noc top`     — live/offline congestion + matching-efficiency view
//! * `noc replay`  — recompute a run summary from a telemetry dump
//!
//! Run `noc help` (or any subcommand with `--help`) for flags. Argument
//! parsing is deliberately dependency-free.

use noc_bench::{
    compare_baseline, parse_report, report_filename, run_bench, workload_matrix, BenchParams,
};
use noc_check::{check_design, check_fixture, fixtures, RouteModel};
use noc_core::{AllocatorKind, SpecMode, SwitchAllocatorKind, VcAllocSpec};
use noc_obs::{
    anatomy_chrome_trace, chrome_trace, metrics_csv, metrics_jsonl, render_top, render_waterfall,
    window_jsonl, AnatomyCollector, AnatomyHeader, TelemetryDump, TelemetryHeader, VecSink,
    WindowSnapshot, ANATOMY_SCHEMA, PHASES, TELEMETRY_SCHEMA,
};
use noc_sim::{
    run_sim_anatomy, run_sim_engine, run_sim_observed, run_sim_profiled, run_sim_recorded_with,
    run_sim_replicated, run_sim_verified, Engine, RoutingKind, SimConfig, TelemetryOptions,
    TopologyKind, TrafficPattern,
};
use std::collections::HashMap;
use std::process::ExitCode;

const HELP: &str = "\
noc — allocator implementations for network-on-chip routers (SC'09 reproduction)

USAGE:
  noc sim     [--topology mesh|fbfly|torus] [--vcs C] [--rate R] [--sa KIND]
              [--vca KIND] [--spec nonspec|spec_gnt|spec_req] [--pattern P]
              [--buf-depth N] [--burst B] [--warmup N] [--measure N] [--seed S]
              [--seeds N] [--profile] [--trace FILE] [--metrics FILE]
              [--sample-interval N] [--json] [--verify]
              [--engine seq|par|active|auto] [--threads N]
              [--record FILE] [--top] [--window N] [--match-every K]
              [--routing dor|dateline|nodateline] [--no-watchdog]
              [--anatomy] [--anatomy-out FILE]
  noc explain [sim config flags] [--warmup N] [--measure N] [--seed S]
              [--engine seq|par|active|auto] [--threads N] [--top-k K]
              [--capacity N] [--out FILE] [--trace FILE] [--json]
  noc check   [--topology mesh|fbfly|torus] [--vcs C] [--all]
              [--fixture no-dateline|cyclic-vc]
  noc bench   [--quick] [--out DIR] [--baseline FILE] [--tolerance PCT]
              [--reps N] [--engine seq|par|active|auto] [--threads N]
  noc synth   (vca|swa) [--topology mesh|fbfly|torus] [--vcs C] [--alloc KIND]
              [--dense] [--spec nonspec|spec_gnt|spec_req]
  noc quality (vca|swa) [--topology mesh|fbfly|torus] [--vcs C] [--rate R]
              [--trials N]
  noc verilog (vca|swa) [--topology mesh|fbfly|torus] [--vcs C] [--alloc KIND]
              [--dense]
  noc sweep   (run|resume|status|clean) [--preset NAME | --spec FILE]
              [--out DIR] [--cache-dir DIR] [--engine seq|par|active|auto]
              [--threads N] [--quiet] [--no-render] [--telemetry] [--anatomy]
  noc serve   [--addr HOST:PORT] [--cache-dir DIR] [--out DIR] [--workers N]
              [--quiet] [--selftest N]
  noc client  (--preset NAME | --spec FILE | --status) [--addr HOST:PORT]
              [--engine seq|par|active|auto] [--id ID] [--quiet]
  noc top     DUMP [--once]
  noc replay  DUMP
  noc audit   [--root DIR] [--fixtures]
  noc mc      [--workers N] [--routers N] [--cycles N]
  noc help

KIND (allocator): sep_if_rr sep_if_m sep_of_rr sep_of_m wf
PATTERN:          uniform bitcomp transpose tornado shuffle

Observability (noc sim):
  --trace FILE            write a Chrome Trace Event Format flit timeline
                          (load in chrome://tracing or Perfetto)
  --metrics FILE          write counters + sampled gauges; .json/.jsonl
                          selects JSON lines, anything else CSV
  --sample-interval N     gauge sampling period in cycles (default 100)
  --json                  print the run summary as one JSON object

Telemetry & live view (noc sim / noc top / noc replay):
  --record FILE           flight-record the run: one noc-telemetry/v1 JSONL
                          window snapshot every --window cycles, keyed by
                          the config's content digest; the summary joins
                          the --json report as a \"telemetry\" block
  --top                   redraw a live congestion heatmap + matching-
                          efficiency sparkline as the run progresses
  --window N              telemetry window length in cycles (default 100)
  --match-every K         sample matching efficiency (grants vs an exact
                          maximum matching of the same cycle's requests)
                          once every K windows; 0 disables (default 1)
  --routing KIND          override the topology's routing algorithm; the
                          'nodateline' torus fixture deadlocks by design
                          (watchdog demo)
  --no-watchdog           disable the stall watchdog (default: terminate
                          after ~10k motionless cycles with flits stuck,
                          writing a post-mortem dump)
  noc top DUMP [--once]   render the latest frame of a dump and follow it
                          as it grows (--once renders a single frame)
  noc replay DUMP         recompute the run's telemetry summary from the
                          dump (byte-identical to the in-process block)

Latency anatomy (noc explain / noc sim --anatomy):
  noc explain runs one simulation with the per-packet latency ledger on
  and prints the blame report: mean/p50/p99/max cycles per pipeline stage
  (src_queue, vca, sa, credit, active, wire, serialization), each stage's
  share of total latency, and hop-by-hop waterfalls for the slowest
  packets. Per-packet stage sums reconcile exactly with end-to-end
  latency; the command exits nonzero if they do not.
  --top-k K               waterfalls to retain for the slowest packets
                          (default 4; 0 disables)
  --capacity N            per-packet ledger rows to retain (default 65536;
                          the blame report always covers every packet)
  --out FILE              write the full noc-anatomy/v1 JSONL dump, keyed
                          by the config's content digest (byte-identical
                          across --engine seq/par/active)
  --trace FILE            write the slowest packets as Chrome Trace spans
                          (one row per packet, one span per stage/hop)
  noc sim --anatomy       append the same blame report to a plain run's
                          summary (--anatomy-out FILE also writes the dump)
  noc sweep run --anatomy write a <digest>.anatomy.jsonl dump per computed
                          point, linked from the sweep manifest

Performance engines (noc sim, noc bench):
  --engine NAME           cycle-loop engine: seq (in-order reference), par
                          (two-phase step, router compute sharded across a
                          worker pool), active (skips idle routers), auto
                          (par on multi-core hosts). All engines are
                          cycle-identical; only wall-clock speed differs.
  --threads N             worker-pool size for --engine par (default: all
                          available cores)

Soundness (noc audit / noc mc):
  noc audit               static soundness gate: walks every workspace .rs
                          file and fails on `unsafe` outside the allowlist,
                          `unsafe` without a nearby SAFETY: comment,
                          `Ordering::Relaxed` without a RELAXED: audit
                          note, or a crate root missing its unsafe-code
                          lint guard
  --root DIR              workspace root to audit (default .)
  --fixtures              also check the negative fixtures under
                          crates/check/fixtures/audit: every one must be
                          flagged, proving the auditor has teeth
  noc mc                  exhaustive interleaving model check of the
                          parallel engine's epoch/done/stop protocol: the
                          faithful model must pass (race-free, deadlock-
                          free, all executions terminate) and every
                          weakened mutant must be rejected with a printed
                          counterexample schedule
  --workers N             modeled worker threads (default 3)
  --routers N             modeled router shards  (default 4)
  --cycles N              modeled epochs         (default 2)

Statistics (noc sim):
  --seeds N               replicate the run over N seeds: auto-detected
                          warmup (MSER), mean latency with a 95% CI
  --profile               attribute simulator wall time to the router
                          pipeline phases and print per-phase shares
  --verify                run with the per-cycle invariant checker enabled
                          (matching legality, credit conservation,
                          no-flit-without-VC); exits nonzero on violations

Static analysis (noc check):
  checks deadlock freedom (channel-dependency graph over the sparse VC
  transition masks; prints a minimal offending cycle), VC reachability /
  starvation / dateline discipline, and allocator wiring; exits nonzero
  if any checked design fails
  --all                   check the paper's designs (mesh, fbfly, torus at
                          C = 1, 2, 4) and every bench-matrix workload
  --fixture NAME          check a deliberately deadlocked negative fixture
                          (no-dateline | cyclic-vc) — expected to FAIL

Benchmarking (noc bench):
  runs a fixed workload matrix (mesh + flattened butterfly at three load
  points) and writes BENCH_<unix>.json (schema noc-bench/v1)
  --quick                 CI-sized runs (500+1500 cycles, median of 3)
  --out DIR               directory for the report (default .)
  --baseline FILE         compare cycles/sec against a previous report;
                          exits nonzero on regression
  --tolerance PCT         allowed slowdown vs baseline (default 15)
  --reps N                timed repetitions per workload (median wins)

Experiment sweeps (noc sweep):
  runs a declarative grid of simulations with a content-addressed result
  cache and a crash-safe completion journal, so interrupted sweeps resume
  with zero recomputation; preset sweeps reprint their legacy figure
  binary's stdout bit-identically from cache
  run                     run (or continue) a sweep; with --preset, the
                          figure text follows on stdout
  resume                  like run, but requires an existing journal
  status                  list journals (done/total points) and cache size
  clean                   delete cached results, journals, and manifests
  --preset NAME           fig13 | fig14 | ablation-traffic |
                          ablation-speculation | smoke
  --spec FILE             JSON sweep spec (grammar in DESIGN.md)
  --out DIR               journal/manifest directory (default results/sweeps)
  --cache-dir DIR         result cache directory (default results/cache)
  --engine NAME           override the cycle-loop engine for computed points
  --quiet                 suppress per-point progress lines on stderr
  --no-render             skip the figure render after a preset run

Sweep service (noc serve / noc client):
  a long-running daemon over the same cache + journal: clients send one
  noc-serve/v1 JSON request line over local TCP and stream JSONL results
  back; overlapping requests are normalized to SimConfig digests and
  deduplicated, so across any number of concurrent clients every unique
  point is simulated at most once — including across kill -9 + restart
  (journaled points are served from cache, recomputing nothing)
  noc serve               start the daemon (prints the bound address on
                          stdout; runs until killed)
  --addr HOST:PORT        listen/connect address (default 127.0.0.1:4009;
                          port 0 picks a free port)
  --workers N             concurrent simulations (default: cores, max 8)
  --selftest N            run the built-in load driver instead: N
                          concurrent overlapping clients against a fresh
                          in-process daemon; asserts computed points ==
                          unique digests, then restarts the daemon and
                          asserts zero recomputation
  noc client              send one request and print the response JSONL
  --preset NAME           request an in-repo preset by name
  --spec FILE             request the sweep spec in FILE (same grammar as
                          noc sweep --spec)
  --status                request daemon-lifetime counters instead
  --id ID                 request id echoed on every response line
  --quiet                 suppress the JSONL tee; keep the summary line

Examples:
  noc sim --topology fbfly --vcs 4 --rate 0.3 --sa wf
  noc sim --rate 0.2 --verify
  noc explain --rate 0.4 --top-k 3
  noc explain --topology fbfly --rate 0.35 --out anatomy.jsonl --json
  noc sim --rate 0.3 --anatomy
  noc check --all
  noc check --fixture no-dateline
  noc sim --rate 0.25 --metrics out.csv --trace trace.json --json
  noc sim --rate 0.15 --seeds 8 --json
  noc sim --rate 0.4 --record run.jsonl --json
  noc sim --rate 0.3 --top
  noc sim --topology torus --routing nodateline --rate 0.35
  noc top run.jsonl --once
  noc replay run.jsonl
  noc bench --quick --baseline results/bench_baseline.json
  noc synth vca --topology mesh --vcs 2 --alloc sep_if_rr
  noc quality swa --topology fbfly --vcs 4 --rate 0.5 --trials 5000
  noc verilog swa --vcs 2 --alloc sep_if_rr > swa.v
  noc sweep run --preset fig13 --engine auto
  noc sweep status
  noc serve --addr 127.0.0.1:4009 &
  noc client --preset smoke
  noc client --status
  noc serve --selftest 4
";

/// Default per-packet ledger row retention for `noc explain` and
/// `noc sim --anatomy` (the blame report always covers every packet).
const DEFAULT_ANATOMY_CAPACITY: usize = 1 << 16;

/// Default slowest-packet waterfall count for the anatomy surfaces.
const DEFAULT_ANATOMY_TOP_K: usize = 4;

/// Parsed `--key value` flags plus positional arguments.
struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key == "help" {
                    return Err(HELP.to_string());
                }
                if key == "dense"
                    || key == "json"
                    || key == "quick"
                    || key == "profile"
                    || key == "verify"
                    || key == "all"
                    || key == "quiet"
                    || key == "no-render"
                    || key == "top"
                    || key == "once"
                    || key == "no-watchdog"
                    || key == "telemetry"
                    || key == "anatomy"
                    || key == "fixtures"
                    || key == "status"
                {
                    flags.insert(key.to_string(), "true".to_string());
                    continue;
                }
                let v = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.insert(key.to_string(), v.clone());
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    fn topology(&self) -> Result<TopologyKind, String> {
        match self.flags.get("topology").map(String::as_str) {
            None | Some("mesh") => Ok(TopologyKind::Mesh8x8),
            Some("fbfly") => Ok(TopologyKind::FlattenedButterfly4x4),
            Some("torus") => Ok(TopologyKind::Torus8x8),
            Some(other) => Err(format!("unknown topology '{other}'")),
        }
    }

    fn spec_for(&self, topo: TopologyKind, c: usize) -> VcAllocSpec {
        match topo {
            TopologyKind::Mesh8x8 => VcAllocSpec::mesh(c),
            TopologyKind::FlattenedButterfly4x4 => VcAllocSpec::fbfly(c),
            TopologyKind::Torus8x8 => VcAllocSpec::torus(c),
        }
    }

    fn alloc_kind(&self) -> Result<AllocatorKind, String> {
        match self.flags.get("alloc").map(String::as_str) {
            None | Some("sep_if_rr") => Ok(AllocatorKind::SepIfRr),
            Some("sep_if_m") => Ok(AllocatorKind::SepIfMatrix),
            Some("sep_of_rr") => Ok(AllocatorKind::SepOfRr),
            Some("sep_of_m") => Ok(AllocatorKind::SepOfMatrix),
            Some("wf") => Ok(AllocatorKind::Wavefront),
            Some(other) => Err(format!("unknown allocator '{other}'")),
        }
    }

    fn sw_kind(&self, key: &str) -> Result<SwitchAllocatorKind, String> {
        use noc_arbiter::ArbiterKind::{Matrix, RoundRobin};
        match self.flags.get(key).map(String::as_str) {
            None | Some("sep_if_rr") | Some("sep_if") => Ok(SwitchAllocatorKind::SepIf(RoundRobin)),
            Some("sep_if_m") => Ok(SwitchAllocatorKind::SepIf(Matrix)),
            Some("sep_of_rr") | Some("sep_of") => Ok(SwitchAllocatorKind::SepOf(RoundRobin)),
            Some("sep_of_m") => Ok(SwitchAllocatorKind::SepOf(Matrix)),
            Some("wf") => Ok(SwitchAllocatorKind::Wavefront),
            Some(other) => Err(format!("unknown switch allocator '{other}'")),
        }
    }

    fn spec_mode(&self) -> Result<SpecMode, String> {
        match self.flags.get("spec").map(String::as_str) {
            Some("nonspec") => Ok(SpecMode::NonSpeculative),
            Some("spec_gnt") | Some("conventional") => Ok(SpecMode::Conventional),
            None | Some("spec_req") | Some("pessimistic") => Ok(SpecMode::Pessimistic),
            Some(other) => Err(format!("unknown speculation mode '{other}'")),
        }
    }

    fn engine(&self) -> Result<Engine, String> {
        let engine = match self.flags.get("engine").map(String::as_str) {
            None => Engine::Sequential,
            Some(name) => Engine::parse(name)
                .ok_or_else(|| format!("unknown engine '{name}' (seq|par|active|auto)"))?,
        };
        match (engine, self.flags.get("threads")) {
            (Engine::Parallel(_), Some(_)) => {
                let t: usize = self.get("threads", 0)?;
                if t == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                Ok(Engine::Parallel(t))
            }
            (_, Some(_)) => Err("--threads requires --engine par".to_string()),
            (engine, None) => Ok(engine),
        }
    }

    fn routing_override(&self) -> Result<Option<RoutingKind>, String> {
        match self.flags.get("routing").map(String::as_str) {
            None => Ok(None),
            Some("dor") => Ok(Some(RoutingKind::DimensionOrder)),
            Some("dateline") => Ok(Some(RoutingKind::TorusDateline)),
            Some("nodateline") => Ok(Some(RoutingKind::TorusNoDateline)),
            Some(other) => Err(format!(
                "unknown routing '{other}' (dor|dateline|nodateline)"
            )),
        }
    }

    fn pattern(&self) -> Result<TrafficPattern, String> {
        match self.flags.get("pattern").map(String::as_str) {
            None | Some("uniform") => Ok(TrafficPattern::UniformRandom),
            Some("bitcomp") => Ok(TrafficPattern::BitComplement),
            Some("transpose") => Ok(TrafficPattern::Transpose),
            Some("tornado") => Ok(TrafficPattern::Tornado),
            Some("shuffle") => Ok(TrafficPattern::Shuffle),
            Some(other) => Err(format!("unknown pattern '{other}'")),
        }
    }
}

/// Builds the simulated design point from the shared `noc sim` /
/// `noc explain` config flags.
fn sim_config(args: &Args) -> Result<SimConfig, String> {
    Ok(SimConfig {
        injection_rate: args.get("rate", 0.2)?,
        vca_kind: args.alloc_kind()?,
        sa_kind: args.sw_kind("sa")?,
        spec_mode: args.spec_mode()?,
        pattern: args.pattern()?,
        buf_depth: args.get("buf-depth", 8)?,
        burst: args.get("burst", 1)?,
        seed: args.get("seed", 0x5c09_2009u64)?,
        routing_override: args.routing_override()?,
        ..SimConfig::paper_baseline(args.topology()?, args.get("vcs", 2)?)
    })
}

fn cmd_sim(args: &Args) -> Result<(), String> {
    let cfg = sim_config(args)?;
    let warmup: u64 = args.get("warmup", 3000u64)?;
    let measure: u64 = args.get("measure", 6000u64)?;
    let trace_path = args.flags.get("trace").cloned();
    let metrics_path = args.flags.get("metrics").cloned();
    let sample_interval: u64 = args.get("sample-interval", 100u64)?;
    let seeds: usize = args.get("seeds", 1usize)?;
    let want_profile = args.flags.contains_key("profile");
    let want_verify = args.flags.contains_key("verify");
    let record_path = args.flags.get("record").cloned();
    let want_top = args.flags.contains_key("top");
    let want_record = record_path.is_some() || want_top;
    let window: u64 = args.get("window", 100u64)?;
    let match_every: u64 = args.get("match-every", 1u64)?;
    let no_watchdog = args.flags.contains_key("no-watchdog");
    let anatomy_out = args.flags.get("anatomy-out").cloned();
    let want_anatomy = args.flags.contains_key("anatomy") || anatomy_out.is_some();
    let anatomy_capacity: usize = args.get("capacity", DEFAULT_ANATOMY_CAPACITY)?;
    let anatomy_top_k: usize = args.get("top-k", DEFAULT_ANATOMY_TOP_K)?;
    if window == 0 {
        return Err("--window must be at least 1 cycle".to_string());
    }
    let engine = args.engine()?;
    if seeds > 1 && (want_profile || trace_path.is_some() || metrics_path.is_some()) {
        return Err("--seeds cannot be combined with --profile, --trace or --metrics".to_string());
    }
    if want_verify && (seeds > 1 || want_profile || trace_path.is_some() || metrics_path.is_some())
    {
        return Err(
            "--verify cannot be combined with --seeds, --profile, --trace or --metrics".to_string(),
        );
    }
    if want_record
        && (seeds > 1
            || want_profile
            || want_verify
            || trace_path.is_some()
            || metrics_path.is_some())
    {
        return Err(
            "--record/--top cannot be combined with --seeds, --profile, --verify, --trace or \
             --metrics"
                .to_string(),
        );
    }
    if want_anatomy
        && (seeds > 1
            || want_profile
            || want_verify
            || want_record
            || trace_path.is_some()
            || metrics_path.is_some())
    {
        return Err(
            "--anatomy cannot be combined with --seeds, --profile, --verify, --record, --top, \
             --trace or --metrics (use 'noc explain' for a dedicated anatomy run)"
                .to_string(),
        );
    }
    if engine != Engine::Sequential
        && (seeds > 1
            || want_profile
            || want_verify
            || trace_path.is_some()
            || metrics_path.is_some())
    {
        return Err(
            "--engine par/active applies to plain runs; drop --seeds/--profile/--verify/--trace/\
             --metrics (results are engine-independent anyway)"
                .to_string(),
        );
    }
    eprintln!(
        "simulating {} @ {} flits/cycle/terminal ({} + {} cycles, engine {})...",
        cfg.label(),
        cfg.injection_rate,
        warmup,
        measure,
        engine.label()
    );
    let mut profile = None;
    let mut verify_report = None;
    let mut anatomy: Option<AnatomyCollector> = None;
    let r = if want_verify {
        let (r, rep) = run_sim_verified(&cfg, warmup, measure);
        verify_report = Some(rep);
        r
    } else if trace_path.is_some() || metrics_path.is_some() {
        let run = run_sim_observed(
            &cfg,
            warmup,
            measure,
            VecSink::default(),
            metrics_path.as_ref().map(|_| sample_interval),
        );
        if let Some(path) = &trace_path {
            std::fs::write(path, chrome_trace(&run.sink.events))
                .map_err(|e| format!("writing trace '{path}': {e}"))?;
            eprintln!("wrote {} flit events to {path}", run.sink.events.len());
        }
        if let Some(path) = &metrics_path {
            let text = if path.ends_with(".json") || path.ends_with(".jsonl") {
                metrics_jsonl(&run.router_obs, run.metrics.as_ref())
            } else {
                metrics_csv(&run.router_obs, run.metrics.as_ref())
            };
            std::fs::write(path, text).map_err(|e| format!("writing metrics '{path}': {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        run.result
    } else if seeds > 1 {
        // Replicated run: warmup is detected automatically (MSER), so the
        // --warmup flag only contributes to the total cycle count.
        run_sim_replicated(&cfg, warmup + measure, seeds)
    } else if want_profile {
        let (r, prof) = run_sim_profiled(&cfg, warmup, measure);
        profile = Some(prof);
        r
    } else if want_anatomy {
        let (r, col) = run_sim_anatomy(
            &cfg,
            warmup,
            measure,
            engine,
            anatomy_capacity,
            anatomy_top_k,
        );
        if let Some(path) = &anatomy_out {
            let header = anatomy_header(&cfg, warmup, measure, anatomy_capacity, anatomy_top_k);
            std::fs::write(path, col.to_jsonl(&header))
                .map_err(|e| format!("cannot write anatomy dump '{path}': {e}"))?;
            eprintln!(
                "wrote anatomy dump ({} packets, {} waterfalls) to {path}",
                col.totals.packets,
                col.slow.len()
            );
        }
        anatomy = Some(col);
        r
    } else if want_record {
        let header = TelemetryHeader {
            digest: cfg.digest(warmup, measure, TELEMETRY_SCHEMA),
            label: format!("{} @ {}", cfg.label(), cfg.injection_rate),
            window,
            match_every,
            routers: cfg.topology.build().num_routers(),
            warmup,
            measure,
        };
        let capacity_flits = (cfg.vc_spec().total_vcs() * cfg.buf_depth) as u32;
        let opts = TelemetryOptions {
            window,
            match_every,
            capacity: 256,
            watchdog: (!no_watchdog).then(|| 10_000u64.div_ceil(window).max(1)),
        };
        let mut lines: Vec<String> = Vec::new();
        let mut eff: Vec<f64> = Vec::new();
        let outcome = run_sim_recorded_with(&cfg, warmup, measure, engine, opts, |snap| {
            lines.push(window_jsonl(snap));
            if want_top {
                eff.push(snap.efficiency());
                // ANSI clear + home; frames go to stderr so a --json
                // summary on stdout stays machine-readable.
                eprint!(
                    "\x1b[2J\x1b[H{}",
                    render_top(&header.label, snap, &eff, capacity_flits)
                );
            }
        });
        match outcome {
            Ok((r, _recorder)) => {
                if let Some(path) = &record_path {
                    write_telemetry_dump(path, &header, &lines)?;
                    eprintln!("wrote {} telemetry windows to {path}", lines.len());
                }
                r
            }
            Err(trip) => {
                let path = record_path
                    .unwrap_or_else(|| format!("noc-postmortem-{}.jsonl", header.digest));
                write_telemetry_dump(&path, &header, &lines)?;
                return Err(format!(
                    "{}\npost-mortem telemetry dump ({} windows): {path}",
                    trip.describe(),
                    lines.len()
                ));
            }
        }
    } else if no_watchdog {
        run_sim_engine(&cfg, warmup, measure, engine)
    } else {
        // Plain runs keep a coarse watchdog-only recorder on guard: a
        // deadlocked network terminates with a post-mortem dump instead of
        // burning cycles until the measure window runs out.
        let opts = TelemetryOptions::watchdog_only(10_000);
        match noc_sim::run_sim_recorded(&cfg, warmup, measure, engine, opts) {
            Ok((mut r, _recorder)) => {
                // The guard recorder is internal; keep the default report
                // identical to an unrecorded run.
                r.telemetry = None;
                r
            }
            Err(trip) => {
                let header = TelemetryHeader {
                    digest: cfg.digest(warmup, measure, TELEMETRY_SCHEMA),
                    label: format!("{} @ {}", cfg.label(), cfg.injection_rate),
                    window: trip.window,
                    match_every: 0,
                    routers: cfg.topology.build().num_routers(),
                    warmup,
                    measure,
                };
                let lines: Vec<String> = trip.recorder.ring().map(window_jsonl).collect();
                let path = format!("noc-postmortem-{}.jsonl", header.digest);
                write_telemetry_dump(&path, &header, &lines)?;
                return Err(format!(
                    "{}\npost-mortem telemetry dump ({} windows): {path}\n\
                     (rerun with --no-watchdog to let the simulation spin)",
                    trip.describe(),
                    lines.len()
                ));
            }
        }
    };
    if let Some(rep) = &verify_report {
        eprintln!(
            "invariants       {} checks, {} violations",
            rep.checks, rep.total_violations
        );
        if !rep.passed() {
            let mut msg = format!("{} runtime invariant violation(s):", rep.total_violations);
            for v in rep.violations.iter().take(10) {
                msg.push_str("\n  ");
                msg.push_str(v);
            }
            return Err(msg);
        }
    }
    if args.flags.contains_key("json") {
        match (&profile, &anatomy) {
            (Some(p), _) => println!("{{\"result\":{},\"profile\":{}}}", r.to_json(), p.to_json()),
            (None, Some(col)) => println!(
                "{{\"result\":{},\"anatomy\":{}}}",
                r.to_json(),
                col.summary().to_json()
            ),
            (None, None) => println!("{}", r.to_json()),
        }
        return Ok(());
    }
    println!("offered          {:.4} flits/cycle/terminal", r.offered);
    println!("accepted         {:.4} flits/cycle/terminal", r.throughput);
    println!(
        "latency          {:.2} cycles (std dev {:.2}, p99 <= {:.0})",
        r.avg_latency, r.latency_std_dev, r.latency_p99
    );
    println!(
        "  requests       {:.2} cycles / replies {:.2} cycles",
        r.request_latency, r.reply_latency
    );
    if r.seeds > 1 {
        println!(
            "replication      {} seeds, 95% CI on latency ±{:.2} cycles",
            r.seeds, r.ci95
        );
    }
    if let Some(w) = r.warmup_detected {
        println!("warmup detected  {w} cycles (MSER steady-state truncation)");
    }
    println!("stable           {}", r.stable);
    if let Some(t) = &r.telemetry {
        println!(
            "telemetry        {} windows x {} cycles, mean matching efficiency {:.3}",
            t.windows,
            t.window,
            t.mean_efficiency()
        );
        println!(
            "  worst stall streak {} consecutive motionless windows",
            t.max_stalled_windows
        );
    }
    let s = r.router_stats;
    println!(
        "switch grants    {} non-speculative, {} speculative ({} masked, {} invalid)",
        s.nonspec_grants, s.spec_grants, s.spec_masked, s.spec_invalid
    );
    if s.vca_grants > 0 {
        println!(
            "VC allocation    {} grants, {:.2} request-cycles per grant",
            s.vca_grants,
            s.vca_requests as f64 / s.vca_grants as f64
        );
    }
    if !r.routers.is_empty() {
        println!(
            "router traffic   {:.2}..{:.2} flits/cycle (min..max per router)",
            r.min_router_throughput(),
            r.max_router_throughput()
        );
        if let Some((router, port, stall)) = r.worst_stall() {
            println!(
                "worst stall      router {router} port {port}: stalled {:.1}% of cycles",
                stall * 100.0
            );
        }
    }
    if let Some(p) = &profile {
        println!(
            "simulator speed  {:.2} Mcycles/sec ({} cycles in {:.1} ms)",
            p.cycles_per_sec() / 1e6,
            p.cycles,
            p.wall_nanos as f64 / 1e6
        );
        let shares = p.shares();
        for phase in PHASES {
            println!(
                "  {:<14} {:>5.1}% of wall time, {} events",
                phase.name(),
                shares[phase as usize] * 100.0,
                p.events(phase)
            );
        }
        println!(
            "  {:<14} {:>5.1}% (traffic generation, event scheduling, stats)",
            "other",
            p.other_share() * 100.0
        );
    }
    if let Some(col) = &anatomy {
        println!("latency anatomy (cycles per packet, decomposed by pipeline stage):");
        print!("{}", col.summary().render());
        println!("{}", check_reconciliation(col, &r)?);
    }
    Ok(())
}

/// The `noc-anatomy/v1` dump identity line for a run of `cfg`.
fn anatomy_header(
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
    capacity: usize,
    top_k: usize,
) -> AnatomyHeader {
    AnatomyHeader {
        digest: cfg.digest(warmup, measure, ANATOMY_SCHEMA),
        label: format!("{} @ {}", cfg.label(), cfg.injection_rate),
        routers: cfg.topology.build().num_routers(),
        warmup,
        measure,
        capacity: capacity as u64,
        top_k: top_k as u64,
    }
}

/// Verifies the tentpole invariant on a finished run and renders the
/// one-line receipt CI greps for: every retained per-packet row's stage
/// components must sum to its end-to-end latency, and the full-population
/// stage-sum mean must be bit-identical to the measured mean latency.
fn check_reconciliation(col: &AnatomyCollector, r: &noc_sim::SimResult) -> Result<String, String> {
    let exact = col.records.iter().filter(|p| p.reconciles()).count();
    if exact != col.records.len() {
        return Err(format!(
            "latency anatomy failed to reconcile: {}/{} retained packets have stage sums != \
             eject - birth",
            col.records.len() - exact,
            col.records.len()
        ));
    }
    let mean_exact = col.totals.packets == 0
        || (col.totals.total_sum() as f64 / col.totals.packets as f64).to_bits()
            == r.avg_latency.to_bits();
    if !mean_exact {
        return Err(format!(
            "latency anatomy failed to reconcile: stage-sum mean {} != measured mean latency {}",
            col.totals.total_sum() as f64 / col.totals.packets as f64,
            r.avg_latency
        ));
    }
    Ok(format!(
        "reconciliation   {exact}/{} retained packets exact; stage-sum mean == measured latency",
        col.records.len()
    ))
}

fn cmd_explain(args: &Args) -> Result<(), String> {
    let cfg = sim_config(args)?;
    let warmup: u64 = args.get("warmup", 3000u64)?;
    let measure: u64 = args.get("measure", 6000u64)?;
    let engine = args.engine()?;
    let capacity: usize = args.get("capacity", DEFAULT_ANATOMY_CAPACITY)?;
    let top_k: usize = args.get("top-k", DEFAULT_ANATOMY_TOP_K)?;
    eprintln!(
        "explaining {} @ {} flits/cycle/terminal ({} + {} cycles, engine {})...",
        cfg.label(),
        cfg.injection_rate,
        warmup,
        measure,
        engine.label()
    );
    let (r, col) = run_sim_anatomy(&cfg, warmup, measure, engine, capacity, top_k);
    let receipt = check_reconciliation(&col, &r)?;
    if let Some(path) = args.flags.get("out") {
        let header = anatomy_header(&cfg, warmup, measure, capacity, top_k);
        std::fs::write(path, col.to_jsonl(&header))
            .map_err(|e| format!("cannot write anatomy dump '{path}': {e}"))?;
        eprintln!(
            "wrote anatomy dump ({} packets, {} waterfalls) to {path}",
            col.totals.packets,
            col.slow.len()
        );
    }
    if let Some(path) = args.flags.get("trace") {
        std::fs::write(path, anatomy_chrome_trace(&col.slowest()))
            .map_err(|e| format!("cannot write anatomy trace '{path}': {e}"))?;
        eprintln!(
            "wrote {} slowest-packet stage timelines to {path}",
            col.slow.len()
        );
    }
    if args.flags.contains_key("json") {
        println!(
            "{{\"result\":{},\"anatomy\":{}}}",
            r.to_json(),
            col.summary().to_json()
        );
        return Ok(());
    }
    println!(
        "offered          {:.4} flits/cycle/terminal, accepted {:.4}",
        r.offered, r.throughput
    );
    print!("{}", col.summary().render());
    println!("{receipt}");
    let slowest = col.slowest();
    if !slowest.is_empty() {
        println!("slowest packets:");
        for w in slowest {
            print!("{}", render_waterfall(w));
        }
    }
    Ok(())
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let c: usize = args.get("vcs", 2)?;
    let mut reports = Vec::new();
    if let Some(name) = args.flags.get("fixture") {
        let f = fixtures::by_name(name, c)
            .ok_or_else(|| format!("unknown fixture '{name}' (no-dateline | cyclic-vc)"))?;
        reports.push(check_fixture(&f));
    } else if args.flags.contains_key("all") {
        // The paper's designs across topologies and VC counts...
        for topo in ["mesh", "fbfly", "torus"] {
            for c in [1usize, 2, 4] {
                reports.push(check_fixture(&fixtures::paper_design(topo, c)));
            }
        }
        // ...plus every configuration the bench matrix actually simulates.
        for (name, cfg) in workload_matrix() {
            let topo = cfg.topology.build();
            let model = RouteModel::Simulator(cfg.routing());
            reports.push(check_design(&name, &topo, &model, &cfg.vc_spec()));
        }
    } else {
        let label = match args.topology()? {
            TopologyKind::Mesh8x8 => "mesh",
            TopologyKind::FlattenedButterfly4x4 => "fbfly",
            TopologyKind::Torus8x8 => "torus",
        };
        reports.push(check_fixture(&fixtures::paper_design(label, c)));
    }
    let mut failed = 0usize;
    for rep in &reports {
        print!("{}", rep.render());
        if !rep.passed() {
            failed += 1;
        }
    }
    println!(
        "{}/{} design(s) passed",
        reports.len() - failed,
        reports.len()
    );
    if failed > 0 {
        return Err(format!("{failed} design(s) failed verification"));
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    let mut params = if args.flags.contains_key("quick") {
        BenchParams::quick()
    } else {
        BenchParams::full()
    };
    params.reps = args.get("reps", params.reps)?;
    params.engine = args.engine()?;
    let out_dir: String = args.get("out", ".".to_string())?;
    let tolerance: f64 = args.get("tolerance", 15.0)?;
    eprintln!(
        "running bench matrix ({} mode, {} rep(s) per workload, engine {})...",
        if params.quick { "quick" } else { "full" },
        params.reps,
        params.engine.label()
    );
    let report = run_bench(&params, |line| eprintln!("  {line}"));
    let path = std::path::Path::new(&out_dir).join(report_filename(report.created_unix));
    std::fs::write(&path, report.to_json())
        .map_err(|e| format!("writing report '{}': {e}", path.display()))?;
    println!("wrote {}", path.display());
    if let Some(bpath) = args.flags.get("baseline") {
        let text = std::fs::read_to_string(bpath)
            .map_err(|e| format!("reading baseline '{bpath}': {e}"))?;
        let baseline = parse_report(&text)?;
        match compare_baseline(&report, &baseline, tolerance) {
            Ok(lines) => {
                println!("baseline check passed (tolerance {tolerance}%):");
                for l in lines {
                    println!("  {l}");
                }
            }
            Err(regressions) => {
                let mut msg =
                    format!("performance regression vs '{bpath}' (tolerance {tolerance}%):");
                for l in &regressions {
                    msg.push_str("\n  ");
                    msg.push_str(l);
                }
                return Err(msg);
            }
        }
    }
    Ok(())
}

fn cmd_synth(args: &Args) -> Result<(), String> {
    use noc_hw::builders::{sw_alloc, vc_alloc};
    let what = args.positional.get(1).map(String::as_str).unwrap_or("vca");
    let topo = args.topology()?;
    let spec = args.spec_for(topo, args.get("vcs", 2)?);
    let synth = noc_hw::Synthesizer::default();
    let result = match what {
        "vca" => vc_alloc::synthesize_vc_allocator(
            &synth,
            &spec,
            args.alloc_kind()?,
            !args.flags.contains_key("dense"),
        ),
        "swa" => sw_alloc::synthesize_switch_allocator(
            &synth,
            args.sw_kind("alloc")?,
            spec.ports(),
            spec.total_vcs(),
            args.spec_mode()?,
        ),
        other => return Err(format!("unknown synth target '{other}' (vca|swa)")),
    };
    match result {
        Ok(r) => {
            println!("design           {}", r.name);
            println!("min cycle time   {:.3} ns", r.delay_ns);
            println!("cell area        {:.0} um^2", r.area_um2);
            println!("average power    {:.2} mW (activity 0.5)", r.power_mw);
            println!(
                "cells            {} combinational + {} flops ({} buffers inserted)",
                r.cells, r.dffs, r.buffers_inserted
            );
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

fn cmd_quality(args: &Args) -> Result<(), String> {
    let what = args.positional.get(1).map(String::as_str).unwrap_or("vca");
    let topo = args.topology()?;
    let spec = args.spec_for(topo, args.get("vcs", 2)?);
    let rate: f64 = args.get("rate", 0.5)?;
    let trials: usize = args.get("trials", 3000)?;
    match what {
        "vca" => {
            let cfg = noc_quality::VcQualityConfig {
                spec,
                trials,
                seed: 0x5c09,
            };
            println!("VC allocation quality @ rate {rate} ({trials} trials):");
            for kind in AllocatorKind::QUALITY_FIGURE_KINDS {
                let q = noc_quality::vc_quality_curve(&cfg, kind, &[rate]).points[0].quality();
                println!("  {:<8} {q:.4}", kind.family());
            }
        }
        "swa" => {
            let cfg = noc_quality::SwQualityConfig {
                ports: spec.ports(),
                vcs: spec.total_vcs(),
                trials,
                seed: 0x5c09,
            };
            println!("switch allocation quality @ rate {rate} ({trials} trials):");
            for (label, kind) in [
                ("sep_if", args.sw_kind("__none")?),
                (
                    "sep_of",
                    SwitchAllocatorKind::SepOf(noc_arbiter::ArbiterKind::RoundRobin),
                ),
                ("wf", SwitchAllocatorKind::Wavefront),
            ] {
                let q = noc_quality::sw_quality_curve(&cfg, kind, &[rate]).points[0].quality();
                println!("  {label:<8} {q:.4}");
            }
        }
        other => return Err(format!("unknown quality target '{other}' (vca|swa)")),
    }
    Ok(())
}

fn cmd_verilog(args: &Args) -> Result<(), String> {
    use noc_hw::builders::{sw_alloc, vc_alloc};
    let what = args.positional.get(1).map(String::as_str).unwrap_or("vca");
    let topo = args.topology()?;
    let spec = args.spec_for(topo, args.get("vcs", 1)?);
    let nl = match what {
        "vca" => vc_alloc::vc_allocator_netlist(
            &spec,
            args.alloc_kind()?,
            !args.flags.contains_key("dense"),
        ),
        "swa" => sw_alloc::speculative_switch_allocator_netlist(
            args.sw_kind("alloc")?,
            spec.ports(),
            spec.total_vcs(),
            args.spec_mode()?,
        ),
        other => return Err(format!("unknown verilog target '{other}' (vca|swa)")),
    };
    eprintln!(
        "// '{}': {} cells, {} flops",
        nl.name,
        nl.cells().len(),
        nl.dffs().len()
    );
    print!(
        "{}",
        noc_hw::to_verilog(&nl, &noc_hw::VerilogOptions::default())
    );
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    use std::path::PathBuf;
    let sub = args.positional.get(1).map(String::as_str).unwrap_or("run");
    let out_dir = PathBuf::from(
        args.flags
            .get("out")
            .cloned()
            .unwrap_or_else(|| "results/sweeps".to_string()),
    );
    let cache_dir = PathBuf::from(
        args.flags
            .get("cache-dir")
            .cloned()
            .unwrap_or_else(|| "results/cache".to_string()),
    );
    match sub {
        "run" => sweep_run(args, out_dir, cache_dir, false),
        "resume" => sweep_run(args, out_dir, cache_dir, true),
        "status" => sweep_status(&out_dir, &cache_dir),
        "clean" => sweep_clean(&out_dir, &cache_dir),
        other => Err(format!(
            "unknown sweep subcommand '{other}' (run|resume|status|clean)"
        )),
    }
}

fn sweep_run(
    args: &Args,
    out_dir: std::path::PathBuf,
    cache_dir: std::path::PathBuf,
    require_journal: bool,
) -> Result<(), String> {
    use noc_bench::sweep::{
        cached_runner, render, run_sweep, ResultCache, SweepOptions, SweepSpec,
    };
    let preset_name = args.flags.get("preset");
    let spec = match (preset_name, args.flags.get("spec")) {
        (Some(name), None) => noc_bench::sweep::preset(name).ok_or_else(|| {
            format!(
                "unknown preset '{name}' (available: {})",
                noc_bench::sweep::preset_names().join(", ")
            )
        })?,
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec {path}: {e}"))?;
            SweepSpec::from_json(&text)?
        }
        (Some(_), Some(_)) => return Err("--preset and --spec are mutually exclusive".to_string()),
        (None, None) => return Err("sweep run needs --preset NAME or --spec FILE".to_string()),
    };
    let engine = match args.flags.get("engine") {
        Some(_) => Some(args.engine()?),
        None => None,
    };
    let opts = SweepOptions {
        cache_dir: cache_dir.clone(),
        out_dir,
        engine,
        quiet: args.flags.contains_key("quiet"),
        require_journal,
        telemetry: args.flags.contains_key("telemetry"),
        anatomy: args.flags.contains_key("anatomy"),
    };
    let outcome = run_sweep(&spec, &opts)?;
    eprintln!(
        "sweep {}: {} points — {} computed, {} cache hits, {} journal skips in {:.1}s",
        outcome.name,
        outcome.total,
        outcome.computed,
        outcome.cache_hits,
        outcome.journal_skips,
        outcome.wall_ms as f64 / 1000.0
    );
    eprintln!("manifest: {}", outcome.manifest_path.display());
    if let Some(name) = preset_name {
        if !args.flags.contains_key("no-render") {
            // Re-render the legacy figure through the cache: every grid
            // point is a hit; only adaptive saturation probes (cached for
            // next time) may still simulate.
            let runner = cached_runner(
                ResultCache::new(&cache_dir)?,
                engine.unwrap_or(noc_sim::Engine::Sequential),
            );
            if let Some(text) = render::render_preset(name, &runner) {
                print!("{text}");
            }
        }
    }
    Ok(())
}

fn sweep_status(out_dir: &std::path::Path, cache_dir: &std::path::Path) -> Result<(), String> {
    use noc_bench::sweep::{journal::read_status, ResultCache};
    let mut journals: Vec<std::path::PathBuf> = std::fs::read_dir(out_dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "journal"))
        .collect();
    journals.sort();
    if journals.is_empty() {
        println!("no sweep journals in {}", out_dir.display());
    }
    for path in journals {
        match read_status(&path) {
            Some((header, done)) => {
                let state = if done >= header.points {
                    "complete"
                } else {
                    "partial"
                };
                println!(
                    "{:<24} {:>5}/{:<5} {:<9} spec {}",
                    header.name, done, header.points, state, header.spec_digest
                );
            }
            None => println!("unreadable journal: {}", path.display()),
        }
    }
    let cached = if cache_dir.is_dir() {
        ResultCache::new(cache_dir)?.len()
    } else {
        0
    };
    println!("cache: {} results in {}", cached, cache_dir.display());
    Ok(())
}

fn sweep_clean(out_dir: &std::path::Path, cache_dir: &std::path::Path) -> Result<(), String> {
    use noc_bench::sweep::ResultCache;
    let removed_cache = if cache_dir.is_dir() {
        ResultCache::new(cache_dir)?.clear()?
    } else {
        0
    };
    let mut removed_files = 0usize;
    for entry in std::fs::read_dir(out_dir).into_iter().flatten().flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".journal") || name.ends_with(".manifest.json") {
            std::fs::remove_file(&path)
                .map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
            removed_files += 1;
        }
    }
    println!("removed {removed_cache} cached results, {removed_files} journal/manifest files");
    Ok(())
}

/// Default `noc serve` listen address, shared with `noc client`.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:4009";

/// Default serve worker-pool width: one simulation per core, capped.
fn default_serve_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(2)
}

/// `noc serve` — the sweep-as-a-service daemon (or, with `--selftest N`,
/// its built-in concurrent-client load driver).
fn cmd_serve(args: &Args) -> Result<(), String> {
    use noc_bench::sweep::serve::{run_selftest, start, ServeOptions};
    use std::path::PathBuf;
    let cache_dir = PathBuf::from(
        args.flags
            .get("cache-dir")
            .cloned()
            .unwrap_or_else(|| "results/cache".to_string()),
    );
    let out_dir = PathBuf::from(
        args.flags
            .get("out")
            .cloned()
            .unwrap_or_else(|| "results/sweeps".to_string()),
    );
    let workers = args.get("workers", default_serve_workers())?;
    if args.flags.contains_key("selftest") {
        let clients: usize = args.get("selftest", 4)?;
        return run_selftest(clients, &cache_dir, &out_dir, workers);
    }
    let opts = ServeOptions {
        addr: args
            .flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_string()),
        cache_dir,
        out_dir,
        workers,
        quiet: args.flags.contains_key("quiet"),
    };
    let daemon = start(&opts)?;
    // The resolved address goes to stdout so scripts binding port 0 can
    // capture it; everything else the daemon prints is stderr.
    println!("{}", daemon.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    daemon.wait();
    Ok(())
}

/// `noc client` — send one request line to a serve daemon, tee the
/// response JSONL to stdout, and summarize on stderr.
fn cmd_client(args: &Args) -> Result<(), String> {
    use noc_bench::sweep::serve::request;
    use noc_bench::sweep::SweepSpec;
    use noc_obs::{
        serve_preset_request_line, serve_status_request_line, serve_sweep_request_line, ServeEvent,
    };
    let addr = args
        .flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_string());
    let id = args
        .flags
        .get("id")
        .cloned()
        .unwrap_or_else(|| format!("cli-{}", std::process::id()));
    let engine = match args.flags.get("engine") {
        Some(name) => {
            // Validate locally for a pre-connection diagnostic; the
            // daemon re-validates on its side.
            Engine::parse(name).ok_or_else(|| format!("unknown engine '{name}'"))?;
            Some(name.as_str())
        }
        None => None,
    };
    let status = args.flags.contains_key("status");
    let line = match (status, args.flags.get("preset"), args.flags.get("spec")) {
        (true, None, None) => serve_status_request_line(&id),
        (false, Some(name), None) => serve_preset_request_line(&id, name, engine),
        (false, None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec {path}: {e}"))?;
            // Validate client-side so a typo fails with the spec
            // grammar's diagnostics instead of a remote error line.
            SweepSpec::from_json(&text)?;
            serve_sweep_request_line(&id, &text, engine)
        }
        _ => {
            return Err(
                "client needs exactly one of --preset NAME, --spec FILE, --status".to_string(),
            )
        }
    };
    let quiet = args.flags.contains_key("quiet");
    let mut status_counters = None;
    let outcome = request(&addr, &line, |raw, event| {
        if !quiet {
            println!("{raw}");
        }
        if let ServeEvent::Status {
            computed, clients, ..
        } = event
        {
            status_counters = Some((*computed, *clients));
        }
    })?;
    if let Some((computed, clients)) = status_counters {
        eprintln!("client {id}: daemon has computed {computed} points for {clients} requests");
    } else {
        eprintln!(
            "client {id}: {} points ({} scheduled, {} cache, {} coalesced) in {} ms",
            outcome.unique,
            outcome.scheduled,
            outcome.cache_hits,
            outcome.coalesced,
            outcome.wall_ms
        );
    }
    Ok(())
}

/// Writes a `noc-telemetry/v1` dump: the header line followed by one
/// pre-rendered JSONL line per window.
fn write_telemetry_dump(
    path: &str,
    header: &TelemetryHeader,
    lines: &[String],
) -> Result<(), String> {
    let mut text = header.to_json();
    text.push('\n');
    for line in lines {
        text.push_str(line);
        text.push('\n');
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write telemetry dump '{path}': {e}"))
}

fn load_dump(args: &Args) -> Result<TelemetryDump, String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: noc top DUMP [--once] | noc replay DUMP")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read telemetry dump '{path}': {e}"))?;
    TelemetryDump::parse(&text)
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let dump = load_dump(args)?;
    println!("{}", dump.summary().to_json());
    Ok(())
}

/// Renders the dump's latest window the way the live `--top` view would.
///
/// The header does not carry buffer capacities, so the occupancy heatmap is
/// scaled by the largest occupancy seen anywhere in the dump: relative
/// hotspots stay visible even without the absolute scale.
fn render_dump_top(dump: &TelemetryDump) -> Option<String> {
    let latest = dump.windows.last()?;
    let capacity = dump
        .windows
        .iter()
        .flat_map(|w| w.routers.iter().map(|r| r.occupancy))
        .max()
        .unwrap_or(0)
        .max(1);
    let eff: Vec<f64> = dump
        .windows
        .iter()
        .map(WindowSnapshot::efficiency)
        .collect();
    let label = format!("{} (replay)", dump.header.label);
    Some(render_top(&label, latest, &eff, capacity))
}

fn cmd_top(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: noc top DUMP [--once]")?
        .clone();
    let once = args.flags.contains_key("once");
    let mut last_len = 0usize;
    loop {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read telemetry dump '{path}': {e}"))?;
        if text.len() != last_len {
            last_len = text.len();
            let dump = TelemetryDump::parse(&text)?;
            match render_dump_top(&dump) {
                Some(frame) if once => {
                    print!("{frame}");
                    return Ok(());
                }
                Some(frame) => {
                    print!("\x1b[2J\x1b[H{frame}");
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                }
                None if once => return Err(format!("'{path}' contains no telemetry windows")),
                None => {}
            }
        } else if once {
            return Err(format!("'{path}' contains no telemetry windows"));
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
}

/// `noc audit` — the static soundness gate (see `noc_check::audit`).
/// Exits nonzero on any finding, so CI can call it directly; `--fixtures`
/// additionally requires every negative fixture to be flagged.
fn cmd_audit(args: &Args) -> Result<(), String> {
    let root = std::path::PathBuf::from(args.flags.get("root").map(String::as_str).unwrap_or("."));
    if !root.join("crates").is_dir() {
        return Err(format!(
            "'{}' does not look like the workspace root (no crates/ \
             directory); pass --root DIR",
            root.display()
        ));
    }
    let report =
        noc_check::audit_workspace(&root).map_err(|e| format!("audit walk failed: {e}"))?;
    print!("{}", report.render());
    let mut failed = !report.passed();
    if args.flags.contains_key("fixtures") {
        let fixtures =
            noc_check::audit_fixtures(&root).map_err(|e| format!("fixture walk failed: {e}"))?;
        if fixtures.is_empty() {
            return Err("no audit fixtures found".to_string());
        }
        for (path, rep) in fixtures {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            if rep.passed() {
                println!("[FAIL] fixture {name}: not flagged — the auditor has lost its teeth");
                failed = true;
            } else {
                println!(
                    "[OK]   fixture {name}: flagged as expected ({})",
                    rep.findings
                        .iter()
                        .map(|f| f.rule)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
        }
    }
    if failed {
        Err("audit failed".to_string())
    } else {
        Ok(())
    }
}

/// `noc mc` — exhaustive interleaving model check of the `run_parallel`
/// epoch/done/stop protocol. The faithful model must pass and every
/// weakened mutant must be rejected; a rejected mutant prints its
/// counterexample schedule so the failure mode is inspectable.
fn cmd_mc(args: &Args) -> Result<(), String> {
    use noc_mc::{explore, ExploreError, Limits, RunParModel};
    let workers: usize = args.get("workers", 3)?;
    let routers: usize = args.get("routers", 4)?;
    let cycles: u64 = args.get("cycles", 2)?;
    if workers == 0 || routers == 0 || cycles == 0 {
        return Err("--workers, --routers, and --cycles must be positive".to_string());
    }
    let mut failed = false;

    let spec = RunParModel::faithful(workers, routers, cycles);
    let model = spec.build();
    match explore(&model, Limits::default()) {
        Ok(o) => println!(
            "[PASS] {}: {} executions, {} transitions, max schedule depth {}",
            model.name, o.executions, o.transitions, o.max_depth
        ),
        Err(e) => {
            println!("[FAIL] {}:\n{}", model.name, e.render(&model));
            failed = true;
        }
    }

    for spec in RunParModel::mutants(workers, routers, cycles) {
        let model = spec.build();
        match explore(&model, Limits::default()) {
            Err(ExploreError::Violation(cx)) => {
                println!("[OK]   {} rejected:", model.name);
                print!("{}", cx.render(&model));
            }
            Err(e @ ExploreError::LimitExceeded { .. }) => {
                println!("[FAIL] {}: {}", model.name, e.render(&model));
                failed = true;
            }
            Ok(o) => {
                println!(
                    "[FAIL] {} PASSED exploration ({} executions) — the \
                     checker has lost its teeth",
                    model.name, o.executions
                );
                failed = true;
            }
        }
    }

    if failed {
        Err("model check failed".to_string())
    } else {
        Ok(())
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(msg) => {
            // --help lands here with the full help text.
            println!("{msg}");
            return ExitCode::SUCCESS;
        }
    };
    let cmd = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let result = match cmd {
        "sim" => cmd_sim(&args),
        "explain" => cmd_explain(&args),
        "check" => cmd_check(&args),
        "bench" => cmd_bench(&args),
        "synth" => cmd_synth(&args),
        "quality" => cmd_quality(&args),
        "verilog" => cmd_verilog(&args),
        "sweep" => cmd_sweep(&args),
        "serve" => cmd_serve(&args),
        "client" => cmd_client(&args),
        "top" => cmd_top(&args),
        "replay" => cmd_replay(&args),
        "audit" => cmd_audit(&args),
        "mc" => cmd_mc(&args),
        "help" | "" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{HELP}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        let argv: Vec<String> = s.split_whitespace().map(String::from).collect();
        Args::parse(&argv).unwrap()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = args("sim --topology fbfly --rate 0.3 --vcs 4");
        assert_eq!(a.positional, vec!["sim"]);
        assert_eq!(a.topology().unwrap(), TopologyKind::FlattenedButterfly4x4);
        assert!((a.get::<f64>("rate", 0.0).unwrap() - 0.3).abs() < 1e-12);
        assert_eq!(a.get::<usize>("vcs", 1).unwrap(), 4);
    }

    #[test]
    fn defaults_apply() {
        let a = args("sim");
        assert_eq!(a.topology().unwrap(), TopologyKind::Mesh8x8);
        assert_eq!(a.get::<usize>("vcs", 2).unwrap(), 2);
        assert_eq!(a.spec_mode().unwrap(), SpecMode::Pessimistic);
        assert_eq!(a.pattern().unwrap(), TrafficPattern::UniformRandom);
    }

    #[test]
    fn rejects_bad_values() {
        let a = args("sim --topology hypercube");
        assert!(a.topology().is_err());
        let a = args("sim --rate abc");
        assert!(a.get::<f64>("rate", 0.0).is_err());
        let a = args("quality vca --alloc frobnicator");
        assert!(a.alloc_kind().is_err());
    }

    #[test]
    fn missing_flag_value_is_an_error() {
        let argv = vec!["sim".to_string(), "--rate".to_string()];
        assert!(Args::parse(&argv).is_err());
    }

    #[test]
    fn dense_is_a_bare_flag() {
        let a = args("synth vca --dense --vcs 2");
        assert!(a.flags.contains_key("dense"));
        assert_eq!(a.positional, vec!["synth", "vca"]);
    }

    #[test]
    fn json_is_a_bare_flag() {
        let a = args("sim --json --rate 0.2");
        assert!(a.flags.contains_key("json"));
        assert!((a.get::<f64>("rate", 0.0).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn verify_and_all_are_bare_flags() {
        let a = args("sim --verify --rate 0.2");
        assert!(a.flags.contains_key("verify"));
        assert!((a.get::<f64>("rate", 0.0).unwrap() - 0.2).abs() < 1e-12);
        let a = args("check --all");
        assert!(a.flags.contains_key("all"));
        assert_eq!(a.positional, vec!["check"]);
    }

    #[test]
    fn check_fixture_takes_a_value() {
        let a = args("check --fixture no-dateline --vcs 2");
        assert_eq!(
            a.flags.get("fixture").map(String::as_str),
            Some("no-dateline")
        );
        assert!(fixtures::by_name("no-dateline", 2).is_some());
        assert!(fixtures::by_name("cyclic-vc", 2).is_some());
        assert!(fixtures::by_name("bogus", 2).is_none());
    }

    #[test]
    fn engine_flag_parses_and_validates() {
        assert_eq!(args("sim").engine().unwrap(), Engine::Sequential);
        assert_eq!(
            args("sim --engine seq").engine().unwrap(),
            Engine::Sequential
        );
        assert_eq!(
            args("sim --engine par").engine().unwrap(),
            Engine::Parallel(0)
        );
        assert_eq!(
            args("sim --engine par --threads 4").engine().unwrap(),
            Engine::Parallel(4)
        );
        assert_eq!(
            args("bench --engine active").engine().unwrap(),
            Engine::ActiveSet
        );
        assert!(args("bench --engine auto").engine().is_ok());
        assert!(args("sim --engine warp").engine().is_err());
        assert!(args("sim --engine seq --threads 4").engine().is_err());
        assert!(args("sim --engine par --threads 0").engine().is_err());
    }

    #[test]
    fn telemetry_flags_parse() {
        let a = args("sim --record run.jsonl --window 250 --match-every 4");
        assert_eq!(a.flags.get("record").map(String::as_str), Some("run.jsonl"));
        assert_eq!(a.get::<u64>("window", 100).unwrap(), 250);
        assert_eq!(a.get::<u64>("match-every", 1).unwrap(), 4);
        // top / once / no-watchdog / telemetry are bare flags.
        let a = args("sim --top --no-watchdog --rate 0.2");
        assert!(a.flags.contains_key("top"));
        assert!(a.flags.contains_key("no-watchdog"));
        assert!((a.get::<f64>("rate", 0.0).unwrap() - 0.2).abs() < 1e-12);
        let a = args("top run.jsonl --once");
        assert!(a.flags.contains_key("once"));
        assert_eq!(a.positional, vec!["top", "run.jsonl"]);
        let a = args("sweep run --telemetry");
        assert!(a.flags.contains_key("telemetry"));
    }

    #[test]
    fn anatomy_flags_parse() {
        // --anatomy is bare in both surfaces that accept it.
        let a = args("sim --anatomy --rate 0.3");
        assert!(a.flags.contains_key("anatomy"));
        assert!((a.get::<f64>("rate", 0.0).unwrap() - 0.3).abs() < 1e-12);
        let a = args("sweep run --anatomy --preset smoke");
        assert!(a.flags.contains_key("anatomy"));
        assert_eq!(a.positional, vec!["sweep", "run"]);
        // explain takes sim-style config flags plus its own knobs.
        let a = args("explain --rate 0.4 --top-k 3 --capacity 1024 --out anatomy.jsonl");
        assert_eq!(a.positional, vec!["explain"]);
        assert_eq!(a.get::<usize>("top-k", DEFAULT_ANATOMY_TOP_K).unwrap(), 3);
        assert_eq!(
            a.get::<usize>("capacity", DEFAULT_ANATOMY_CAPACITY)
                .unwrap(),
            1024
        );
        assert_eq!(
            a.flags.get("out").map(String::as_str),
            Some("anatomy.jsonl")
        );
        // --anatomy-out implies --anatomy in cmd_sim; it takes a value.
        let a = args("sim --anatomy-out dump.jsonl");
        assert_eq!(
            a.flags.get("anatomy-out").map(String::as_str),
            Some("dump.jsonl")
        );
    }

    #[test]
    fn serve_and_client_flags_parse() {
        // --selftest takes a value (the client count).
        let a = args("serve --selftest 4 --workers 2");
        assert_eq!(a.positional, vec!["serve"]);
        assert_eq!(a.get::<usize>("selftest", 0).unwrap(), 4);
        assert_eq!(a.get::<usize>("workers", 8).unwrap(), 2);
        let a = args("serve --addr 127.0.0.1:0 --quiet");
        assert_eq!(a.flags.get("addr").map(String::as_str), Some("127.0.0.1:0"));
        assert!(a.flags.contains_key("quiet"));
        // --status is a bare flag on the client side.
        let a = args("client --status --addr 127.0.0.1:4009");
        assert!(a.flags.contains_key("status"));
        assert_eq!(a.positional, vec!["client"]);
        let a = args("client --preset smoke --engine par --id c1");
        assert_eq!(a.flags.get("preset").map(String::as_str), Some("smoke"));
        assert_eq!(a.flags.get("id").map(String::as_str), Some("c1"));
        assert!(Engine::parse(a.flags.get("engine").unwrap()).is_some());
    }

    #[test]
    fn routing_override_table() {
        assert_eq!(args("sim").routing_override().unwrap(), None);
        assert_eq!(
            args("sim --routing dor").routing_override().unwrap(),
            Some(RoutingKind::DimensionOrder)
        );
        assert_eq!(
            args("sim --routing dateline").routing_override().unwrap(),
            Some(RoutingKind::TorusDateline)
        );
        assert_eq!(
            args("sim --routing nodateline").routing_override().unwrap(),
            Some(RoutingKind::TorusNoDateline)
        );
        assert!(args("sim --routing minimal").routing_override().is_err());
    }

    #[test]
    fn allocator_kind_table() {
        for (s, k) in [
            ("sep_if_rr", AllocatorKind::SepIfRr),
            ("sep_if_m", AllocatorKind::SepIfMatrix),
            ("sep_of_rr", AllocatorKind::SepOfRr),
            ("sep_of_m", AllocatorKind::SepOfMatrix),
            ("wf", AllocatorKind::Wavefront),
        ] {
            let a = args(&format!("synth vca --alloc {s}"));
            assert_eq!(a.alloc_kind().unwrap(), k, "{s}");
        }
    }
}
