//! Exports a generated allocator netlist as synthesizable structural
//! Verilog, for pushing through a real synthesis flow (the paper's Design
//! Compiler + 45 nm setup) to cross-check this repo's cost model.
//!
//! Run with:
//! `cargo run --release --example export_verilog [vc|sw] [mesh|fbfly] [C] > alloc.v`

use noc_core::{AllocatorKind, SpecMode, SwitchAllocatorKind, VcAllocSpec};
use noc_hw::builders::sw_alloc::speculative_switch_allocator_netlist;
use noc_hw::builders::vc_alloc::vc_allocator_netlist;
use noc_hw::{to_verilog, VerilogOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("vc");
    let fbfly = args.get(2).map(String::as_str) == Some("fbfly");
    let c: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let spec = if fbfly {
        VcAllocSpec::fbfly(c)
    } else {
        VcAllocSpec::mesh(c)
    };
    let nl = match which {
        "sw" => speculative_switch_allocator_netlist(
            SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
            spec.ports(),
            spec.total_vcs(),
            SpecMode::Pessimistic,
        ),
        _ => vc_allocator_netlist(&spec, AllocatorKind::SepIfRr, true),
    };
    eprintln!(
        "// exporting '{}': {} cells, {} flops",
        nl.name,
        nl.cells().len(),
        nl.dffs().len()
    );
    print!("{}", to_verilog(&nl, &VerilogOptions::default()));
}
