//! Latency-throughput characterization of the 8×8 mesh — the motivating
//! workload of Figure 13(a–c): how does the choice of switch allocator
//! shape the latency curve of a latency-sensitive (e.g. cache-coherence)
//! interconnect?
//!
//! Run with `cargo run --release --example mesh_latency [C] [pattern]`
//! where `C` is the number of VCs per class (default 2) and `pattern` one
//! of `uniform|bitcomp|transpose|tornado|shuffle`.

use noc_core::SwitchAllocatorKind;
use noc_sim::sim::latency_curve;
use noc_sim::{SimConfig, TopologyKind, TrafficPattern};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let c: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let pattern = match args.get(2).map(String::as_str) {
        Some("bitcomp") => TrafficPattern::BitComplement,
        Some("transpose") => TrafficPattern::Transpose,
        Some("tornado") => TrafficPattern::Tornado,
        Some("shuffle") => TrafficPattern::Shuffle,
        _ => TrafficPattern::UniformRandom,
    };
    let base = SimConfig {
        pattern,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, c)
    };
    let rates: Vec<f64> = (1..=9).map(|i| 0.05 * i as f64).collect();
    println!(
        "mesh 8x8, {} VCs ({}), {} traffic",
        base.vc_spec().total_vcs(),
        base.vc_spec().label(),
        pattern.label()
    );
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>8}",
        "alloc", "rate", "latency", "thruput", "stable"
    );
    for (label, kind) in [
        (
            "sep_if",
            SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
        ),
        ("wf", SwitchAllocatorKind::Wavefront),
    ] {
        let cfg = SimConfig {
            sa_kind: kind,
            ..base.clone()
        };
        for r in latency_curve(&cfg, &rates, 2_000, 4_000) {
            println!(
                "{:<8} {:>8.3} {:>10.2} {:>10.3} {:>8}",
                label, r.offered, r.avg_latency, r.throughput, r.stable
            );
        }
    }
}
