//! The flattened-butterfly / UGAL scenario: a throughput-oriented network
//! (§5.4's "data supply networks") where allocator matching quality
//! directly buys saturation bandwidth, and where the VC class structure
//! (message × resource classes) is exercised end to end.
//!
//! Compares the switch allocators' saturation rates and shows how UGAL
//! shifts traffic to non-minimal routes under adversarial (tornado)
//! traffic.
//!
//! Run with `cargo run --release --example fbfly_ugal`.

use noc_core::SwitchAllocatorKind;
use noc_sim::sim::{latency_curve, saturation_rate};
use noc_sim::{SimConfig, TopologyKind, TrafficPattern};

fn main() {
    let base = SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 4);
    println!("flattened butterfly 4x4 (concentration 4, P=10), 2x2x4 VCs, UGAL routing\n");

    // --- saturation under uniform traffic, per switch allocator ---------
    println!("uniform random traffic:");
    for (label, kind) in [
        (
            "sep_if",
            SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
        ),
        (
            "sep_of",
            SwitchAllocatorKind::SepOf(noc_arbiter::ArbiterKind::RoundRobin),
        ),
        ("wf", SwitchAllocatorKind::Wavefront),
    ] {
        let cfg = SimConfig {
            sa_kind: kind,
            ..base.clone()
        };
        let sat = saturation_rate(&cfg, 2_000, 4_000);
        println!("  {label:<8} saturation ~{sat:.3} flits/cycle/terminal");
    }

    // --- adversarial traffic: UGAL's reason to exist --------------------
    // Tornado-like permutations concentrate load on single rows; minimal
    // routing alone would bottleneck, Valiant detours restore balance.
    println!("\ntornado traffic, wf switch allocator:");
    let cfg = SimConfig {
        sa_kind: SwitchAllocatorKind::Wavefront,
        pattern: TrafficPattern::Tornado,
        ..base.clone()
    };
    let rates = [0.1, 0.2, 0.3, 0.4];
    for r in latency_curve(&cfg, &rates, 2_000, 4_000) {
        println!(
            "  rate {:>5.2}: latency {:>7.2} cycles, throughput {:.3}, stable={}",
            r.offered, r.avg_latency, r.throughput, r.stable
        );
    }

    // --- UGAL route-choice split under both patterns ---------------------
    println!("\nUGAL minimal vs non-minimal route choices (rate 0.35):");
    for pattern in [TrafficPattern::UniformRandom, TrafficPattern::Tornado] {
        let mut net = noc_sim::Network::new(SimConfig {
            pattern,
            injection_rate: 0.35,
            ..base.clone()
        });
        net.stats.set_window(0, u64::MAX);
        net.run(4_000);
        let (min, non) = net.ugal_split();
        println!(
            "  {:<8} {min} minimal, {non} non-minimal ({:.1}% diverted)",
            pattern.label(),
            100.0 * non as f64 / (min + non).max(1) as f64
        );
    }
}
