//! Quickstart: the three allocator architectures on a toy request matrix,
//! a VC allocation round, and a short network simulation.
//!
//! Run with `cargo run --release --example quickstart`.

use noc_core::SwitchAllocatorKind;
use noc_core::{AllocatorKind, BitMatrix, SpecMode, SpeculativeSwitchAllocator, SwitchRequests};
use noc_sim::{run_sim, SimConfig, TopologyKind};

fn main() {
    // --- 1. General allocation: 4 requesters x 4 resources --------------
    let requests = BitMatrix::from_entries(
        4,
        4,
        [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (3, 2), (3, 3)],
    );
    println!("request matrix:\n{requests:?}\n");
    for kind in [
        AllocatorKind::SepIfRr,
        AllocatorKind::SepOfRr,
        AllocatorKind::Wavefront,
        AllocatorKind::MaxSize,
    ] {
        let mut alloc = kind.build(4, 4);
        let grants = alloc.allocate(&requests);
        println!(
            "{:<9} -> {} grants: {:?}",
            kind.label(),
            grants.count_ones(),
            grants.iter_set().collect::<Vec<_>>()
        );
        assert!(grants.is_matching_for(&requests));
    }

    // --- 2. Speculative switch allocation (Figure 9) ---------------------
    let mut sa = SpeculativeSwitchAllocator::new(
        SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
        5,
        2,
        SpecMode::Pessimistic,
    );
    let mut nonspec = SwitchRequests::new(5, 2);
    nonspec.request(0, 0, 3); // established packet at input 0 wants output 3
    let mut spec = SwitchRequests::new(5, 2);
    spec.request(1, 0, 3); // head flit at input 1 speculates for output 3
    spec.request(2, 1, 4); // head flit at input 2 speculates for output 4
    let res = sa.allocate(&nonspec, &spec);
    println!(
        "\nspeculative SA: {} nonspec grant(s), {} spec grant(s), {} masked",
        res.nonspec.len(),
        res.spec.len(),
        res.masked.len()
    );
    // Output 3 is nonspec-requested, so the input-1 speculation is masked
    // pessimistically; output 4 is free, so input 2 speculates successfully.
    assert_eq!(res.spec.len(), 1);
    assert_eq!(res.spec[0].out_port, 4);

    // --- 3. A short network simulation (mesh 8x8, 2x1x2 VCs) -------------
    let cfg = SimConfig {
        injection_rate: 0.15,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
    };
    let r = run_sim(&cfg, 1_000, 4_000);
    println!(
        "\nmesh 2x1x2 @ 0.15 flits/cycle/node: avg latency {:.1} cycles, throughput {:.3}, stable={}",
        r.avg_latency, r.throughput, r.stable
    );
    println!(
        "speculation: {} clean grants, {} masked, {} invalid",
        r.router_stats.spec_grants, r.router_stats.spec_masked, r.router_stats.spec_invalid
    );
}
