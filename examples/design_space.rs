//! Design-space walkthrough for one router configuration: the complete
//! §4/§5 methodology on a single design point — hardware cost (delay,
//! area, power) from the synthesis model, matching quality from the
//! open-loop harness, and network-level impact from the simulator.
//!
//! Run with `cargo run --release --example design_space [mesh|fbfly] [C]`.

// Panicking on setup failure is the right behaviour outside library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc_core::{AllocatorKind, SpecMode, SwitchAllocatorKind, VcAllocSpec};
use noc_hw::builders::sw_alloc::synthesize_switch_allocator;
use noc_hw::builders::vc_alloc::synthesize_vc_allocator;
use noc_hw::Synthesizer;
use noc_quality::{vc_quality_curve, VcQualityConfig};
use noc_sim::{run_sim, SimConfig, TopologyKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fbfly = args.get(1).map(String::as_str) == Some("fbfly");
    let c: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let (spec, topo) = if fbfly {
        (VcAllocSpec::fbfly(c), TopologyKind::FlattenedButterfly4x4)
    } else {
        (VcAllocSpec::mesh(c), TopologyKind::Mesh8x8)
    };
    println!(
        "design point: {} {} (P={}, V={})\n",
        topo.label(),
        spec.label(),
        spec.ports(),
        spec.total_vcs()
    );

    // --- 1. VC allocator cost: dense vs sparse ---------------------------
    let synth = Synthesizer::default();
    println!("VC allocator synthesis (45nm-LP-like model):");
    for kind in [AllocatorKind::SepIfRr, AllocatorKind::Wavefront] {
        for sparse in [false, true] {
            let tag = format!(
                "{} {}",
                kind.label(),
                if sparse { "sparse" } else { "dense" }
            );
            match synthesize_vc_allocator(&synth, &spec, kind, sparse) {
                Ok(r) => println!(
                    "  {tag:<18} {:>6.3} ns {:>9.0} um2 {:>7.2} mW ({} cells)",
                    r.delay_ns,
                    r.area_um2,
                    r.power_mw,
                    r.cells + r.dffs
                ),
                Err(e) => println!("  {tag:<18} {e}"),
            }
        }
    }

    // --- 2. Switch allocator cost across speculation schemes -------------
    println!("\nswitch allocator synthesis (sep_if/rr):");
    let sa = SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin);
    for mode in SpecMode::ALL {
        let r = synthesize_switch_allocator(&synth, sa, spec.ports(), spec.total_vcs(), mode)
            .expect("switch allocators are small");
        println!(
            "  {:<10} {:>6.3} ns {:>9.0} um2 {:>7.2} mW",
            mode.label(),
            r.delay_ns,
            r.area_um2,
            r.power_mw
        );
    }

    // --- 3. Matching quality at full request rate ------------------------
    println!("\nVC-allocation matching quality at rate 1.0 (open loop):");
    let qcfg = VcQualityConfig {
        spec: spec.clone(),
        trials: 2_000,
        seed: 1,
    };
    for kind in AllocatorKind::QUALITY_FIGURE_KINDS {
        let q = vc_quality_curve(&qcfg, kind, &[1.0]).points[0].quality();
        println!("  {:<8} {q:.3}", kind.family());
    }

    // --- 4. Network-level check ------------------------------------------
    let cfg = SimConfig {
        injection_rate: 0.2,
        ..SimConfig::paper_baseline(topo, c)
    };
    let r = run_sim(&cfg, 2_000, 5_000);
    println!(
        "\nnetwork @ 0.2 flits/cycle/terminal: {:.1} cycles avg latency (requests {:.1}, replies {:.1})",
        r.avg_latency, r.request_latency, r.reply_latency
    );
}
