//! End-to-end verification: the runtime invariant checker must stay silent
//! on every workload of the bench matrix, and the static checker must prove
//! every simulated configuration deadlock-free.

use noc_bench::workload_matrix;
use noc_check::{check_design, RouteModel};
use noc_sim::{run_sim_verified, SimConfig, TopologyKind};

#[test]
fn bench_matrix_runs_with_zero_invariant_violations() {
    for (name, cfg) in workload_matrix() {
        let (res, rep) = run_sim_verified(&cfg, 200, 600);
        assert!(
            rep.passed(),
            "{name}: {} violations, e.g. {:?}",
            rep.total_violations,
            rep.violations.first()
        );
        assert!(rep.checks > 0, "{name}: checker did not run");
        assert!(res.throughput > 0.0, "{name}: no traffic delivered");
    }
}

#[test]
fn torus_runs_with_zero_invariant_violations() {
    let cfg = SimConfig {
        injection_rate: 0.15,
        ..SimConfig::paper_baseline(TopologyKind::Torus8x8, 2)
    };
    let (_, rep) = run_sim_verified(&cfg, 300, 900);
    assert!(rep.passed(), "torus: {:?}", rep.violations.first());
}

#[test]
fn every_bench_workload_is_statically_deadlock_free() {
    for (name, cfg) in workload_matrix() {
        let topo = cfg.topology.build();
        let model = RouteModel::Simulator(cfg.routing());
        let rep = check_design(&name, &topo, &model, &cfg.vc_spec());
        assert!(rep.passed(), "{name}:\n{}", rep.render());
    }
}
