//! Differential tests proving the fast-path engines cycle-exact.
//!
//! The two-phase parallel engine and the active-set (idle-router-skipping)
//! engine exist purely for speed; they must be *bit-identical* to the
//! sequential reference on every workload. Two layers of evidence:
//!
//! 1. **Result equivalence** — the full bench workload matrix (mesh and
//!    flattened butterfly, every injection rate), three seeds each, run on
//!    all three engines: the `SimResult` JSON must match byte for byte.
//! 2. **Trace equivalence** — the same workloads run with a [`DigestSink`]
//!    attached: the order-sensitive FNV-1a digest over every flit event
//!    must match, and on a mismatch the test names the first diverging
//!    cycle so the bug is bisectable.

use noc_bench::workload_matrix;
use noc_obs::{window_jsonl, AnatomyHeader, DigestSink, ANATOMY_SCHEMA};
use noc_sim::{
    run_sim_anatomy, run_sim_engine, run_sim_recorded_with, Engine, Network, SimConfig,
    TelemetryOptions,
};

const WARMUP: u64 = 500;
const MEASURE: u64 = 1500;
const TRACE_CYCLES: u64 = 1000;
const SEEDS: u64 = 3;

/// The non-reference engines under test. Four worker threads exercises
/// real sharding even on smaller CI hosts (the pool clamps to the router
/// count anyway).
fn fast_engines() -> [Engine; 2] {
    [Engine::Parallel(4), Engine::ActiveSet]
}

fn seeded(cfg: &SimConfig, off: u64) -> SimConfig {
    let mut cfg = cfg.clone();
    cfg.seed = cfg.seed.wrapping_add(off);
    cfg
}

/// Layer 1: identical `SimResult` JSON across engines for every workload
/// with the given name prefix, across seeds.
fn assert_results_identical(prefix: &str) {
    for (name, cfg) in workload_matrix() {
        if !name.starts_with(prefix) {
            continue;
        }
        for off in 0..SEEDS {
            let cfg = seeded(&cfg, off);
            let reference = run_sim_engine(&cfg, WARMUP, MEASURE, Engine::Sequential).to_json();
            for engine in fast_engines() {
                let got = run_sim_engine(&cfg, WARMUP, MEASURE, engine).to_json();
                assert_eq!(
                    got,
                    reference,
                    "{name} seed+{off}: engine '{}' diverged from sequential SimResult",
                    engine.label()
                );
            }
        }
    }
}

/// Runs `cfg` for `cycles` cycles on `engine` with a digest sink attached
/// and returns the finished sink.
fn trace_digest(cfg: &SimConfig, engine: Engine, cycles: u64) -> DigestSink {
    let mut net = Network::with_sink(cfg.clone(), DigestSink::with_cycle_digests());
    engine.run(&mut net, cycles);
    let mut sink = net.sink;
    sink.finish_cycles(cycles);
    sink
}

/// Layer 2: identical flit-event digests across engines; a mismatch
/// reports the first cycle whose cumulative digest differs.
fn assert_traces_identical(prefix: &str) {
    for (name, cfg) in workload_matrix() {
        if !name.starts_with(prefix) {
            continue;
        }
        let reference = trace_digest(&cfg, Engine::Sequential, TRACE_CYCLES);
        for engine in fast_engines() {
            let got = trace_digest(&cfg, engine, TRACE_CYCLES);
            if got.digest() != reference.digest() {
                let cycle =
                    DigestSink::first_divergence(got.cycle_digests(), reference.cycle_digests());
                panic!(
                    "{name}: engine '{}' trace digest {:#018x} != sequential {:#018x} \
                     ({} vs {} events); first diverging cycle: {:?}",
                    engine.label(),
                    got.digest(),
                    reference.digest(),
                    got.events(),
                    reference.events(),
                    cycle
                );
            }
            assert_eq!(
                got.events(),
                reference.events(),
                "{name}: engine '{}' event count diverged with equal digests",
                engine.label()
            );
        }
    }
}

#[test]
fn mesh_results_bit_identical_across_engines() {
    assert_results_identical("mesh8x8");
}

#[test]
fn fbfly_results_bit_identical_across_engines() {
    assert_results_identical("fbfly4x4");
}

#[test]
fn mesh_flit_traces_identical_across_engines() {
    assert_traces_identical("mesh8x8");
}

#[test]
fn fbfly_flit_traces_identical_across_engines() {
    assert_traces_identical("fbfly4x4");
}

/// Runs `cfg` with the flight recorder attached and returns every telemetry
/// window as its dump-file JSONL line, plus the result JSON.
fn telemetry_lines(cfg: &SimConfig, engine: Engine) -> (String, Vec<String>) {
    let opts = TelemetryOptions {
        watchdog: None,
        ..TelemetryOptions::recording()
    };
    let mut lines = Vec::new();
    let outcome = run_sim_recorded_with(cfg, WARMUP, MEASURE, engine, opts, |snap| {
        lines.push(window_jsonl(snap));
    });
    let (res, _rec) = match outcome {
        Ok(pair) => pair,
        Err(trip) => panic!("run cannot trip without a watchdog: {}", trip.describe()),
    };
    (res.to_json(), lines)
}

/// Layer 3: the flight recorder is part of the cycle-exact contract. Every
/// per-window JSONL line — per-router counters, stall mix, matching-quality
/// samples — must be byte-identical across engines, so a recorded dump is
/// reproducible evidence regardless of which engine produced it.
#[test]
fn telemetry_dumps_byte_identical_across_engines() {
    for (name, cfg) in workload_matrix() {
        // One mid-load workload per topology keeps the recorded layer
        // cheap; the result/trace layers above already sweep the matrix.
        if name != "mesh8x8_c2_r0.25" && name != "fbfly4x4_c2_r0.2" {
            continue;
        }
        let (ref_json, ref_lines) = telemetry_lines(&cfg, Engine::Sequential);
        assert!(
            !ref_lines.is_empty(),
            "{name}: recorder produced no windows"
        );
        for engine in fast_engines() {
            let (got_json, got_lines) = telemetry_lines(&cfg, engine);
            assert_eq!(
                got_json,
                ref_json,
                "{name}: engine '{}' recorded-run SimResult diverged",
                engine.label()
            );
            assert_eq!(
                got_lines,
                ref_lines,
                "{name}: engine '{}' telemetry windows diverged",
                engine.label()
            );
        }
    }
}

/// Runs `cfg` with the per-packet latency ledger attached and returns the
/// result JSON plus the full `noc-anatomy/v1` dump text.
fn anatomy_dump(cfg: &SimConfig, engine: Engine) -> (String, String) {
    let (res, col) = run_sim_anatomy(cfg, WARMUP, MEASURE, engine, 1 << 16, 4);
    let header = AnatomyHeader {
        digest: cfg.digest(WARMUP, MEASURE, ANATOMY_SCHEMA),
        label: cfg.label(),
        routers: cfg.topology.build().num_routers(),
        warmup: WARMUP,
        measure: MEASURE,
        capacity: 1 << 16,
        top_k: 4,
    };
    (res.to_json(), col.to_jsonl(&header))
}

/// Layer 4: the latency-anatomy ledger is part of the cycle-exact contract.
/// Hop records cross the engine boundary (drained in router-id order) and
/// fold on ejection, so the full dump — totals, histograms, every retained
/// per-packet row, the top-K waterfalls — must be byte-identical across
/// engines, and attaching the ledger must not perturb the result.
#[test]
fn anatomy_dumps_byte_identical_across_engines() {
    for (name, cfg) in workload_matrix() {
        // Same two mid-load workloads as the telemetry layer: the
        // result/trace layers above already sweep the matrix.
        if name != "mesh8x8_c2_r0.25" && name != "fbfly4x4_c2_r0.2" {
            continue;
        }
        let plain = run_sim_engine(&cfg, WARMUP, MEASURE, Engine::Sequential).to_json();
        let (ref_json, ref_dump) = anatomy_dump(&cfg, Engine::Sequential);
        assert_eq!(
            ref_json, plain,
            "{name}: attaching the anatomy ledger changed the sequential SimResult"
        );
        for engine in fast_engines() {
            let (got_json, got_dump) = anatomy_dump(&cfg, engine);
            assert_eq!(
                got_json,
                ref_json,
                "{name}: engine '{}' anatomy-run SimResult diverged",
                engine.label()
            );
            assert_eq!(
                got_dump,
                ref_dump,
                "{name}: engine '{}' anatomy dump diverged",
                engine.label()
            );
        }
    }
}

/// The parallel engine must give the same answer whatever the worker
/// count — sharding is a performance knob, not a semantic one.
#[test]
fn parallel_engine_thread_count_does_not_change_results() {
    let (name, cfg) = workload_matrix().swap_remove(1);
    let reference = run_sim_engine(&cfg, WARMUP, MEASURE, Engine::Sequential).to_json();
    for threads in [1, 2, 3, 7, 64, 200] {
        let got = run_sim_engine(&cfg, WARMUP, MEASURE, Engine::Parallel(threads)).to_json();
        assert_eq!(got, reference, "{name}: {threads} threads diverged");
    }
}
