//! Cross-crate integration: the gate-level netlists (`noc-hw`) and the
//! behavioural models (`noc-core`) implement the same microarchitectures.
//! The per-module unit tests check this exhaustively at small sizes; here
//! we exercise the full public API path on paper-scale design points.

use noc_core::{AllocatorKind, SpecMode, SwitchAllocatorKind, VcAllocSpec};
use noc_hw::builders::sw_alloc::{speculative_switch_allocator_netlist, switch_allocator_netlist};
use noc_hw::builders::vc_alloc::vc_allocator_netlist;
use noc_hw::{SynthError, Synthesizer};

#[test]
fn all_synthesizable_vc_design_points_produce_cost_numbers() {
    let synth = Synthesizer::default();
    let mut ok = 0;
    let mut oom = 0;
    for spec in [
        VcAllocSpec::mesh(1),
        VcAllocSpec::mesh(2),
        VcAllocSpec::fbfly(1),
    ] {
        for kind in AllocatorKind::COST_FIGURE_KINDS {
            for sparse in [false, true] {
                match noc_hw::builders::vc_alloc::synthesize_vc_allocator(
                    &synth, &spec, kind, sparse,
                ) {
                    Ok(r) => {
                        assert!(
                            r.delay_ns > 0.1 && r.delay_ns < 20.0,
                            "{}: {}",
                            r.name,
                            r.delay_ns
                        );
                        assert!(r.area_um2 > 100.0);
                        assert!(r.power_mw > 0.01);
                        ok += 1;
                    }
                    Err(SynthError::OutOfMemory { .. }) => oom += 1,
                }
            }
        }
    }
    assert!(ok >= 25, "only {ok} design points synthesized");
    // Dense wavefront VC allocators beyond the small mesh configs OOM, as
    // in the paper.
    assert!(oom >= 1, "expected at least one capacity failure");
}

#[test]
fn sparse_beats_dense_on_all_three_cost_axes_for_separable() {
    let synth = Synthesizer::default();
    let spec = VcAllocSpec::fbfly(2);
    for kind in [AllocatorKind::SepIfRr, AllocatorKind::SepOfMatrix] {
        let dense = synth.run(vc_allocator_netlist(&spec, kind, false)).unwrap();
        let sparse = synth.run(vc_allocator_netlist(&spec, kind, true)).unwrap();
        assert!(sparse.delay_ns < dense.delay_ns, "{kind:?} delay");
        assert!(sparse.area_um2 < dense.area_um2, "{kind:?} area");
        assert!(sparse.power_mw < dense.power_mw, "{kind:?} power");
    }
}

#[test]
fn speculation_cost_ordering_holds_across_design_points() {
    // nonspec <= pessimistic <= conventional in delay, for the paper's two
    // port counts (§5.2/§5.3.1).
    let synth = Synthesizer::unlimited();
    for (p, v) in [(5usize, 4usize), (10, 8)] {
        for kind in [
            SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
            SwitchAllocatorKind::SepOf(noc_arbiter::ArbiterKind::RoundRobin),
            SwitchAllocatorKind::Wavefront,
        ] {
            let d = |mode| {
                synth
                    .run(speculative_switch_allocator_netlist(kind, p, v, mode))
                    .unwrap()
                    .delay_ns
            };
            let nonspec = d(SpecMode::NonSpeculative);
            let pess = d(SpecMode::Pessimistic);
            let conv = d(SpecMode::Conventional);
            assert!(
                nonspec <= pess + 1e-9,
                "{kind:?} P={p}: nonspec {nonspec} > pessimistic {pess}"
            );
            assert!(
                pess < conv,
                "{kind:?} P={p}: pessimistic {pess} !< conventional {conv}"
            );
        }
    }
}

#[test]
fn matrix_arbiter_variants_trade_area_for_delay() {
    // §4.3.1/§5.3.1: matrix arbiters are (slightly) faster but larger than
    // round-robin arbiters, at identical architecture.
    let synth = Synthesizer::unlimited();
    use noc_arbiter::ArbiterKind::{Matrix, RoundRobin};
    let m = synth
        .run(switch_allocator_netlist(
            SwitchAllocatorKind::SepIf(Matrix),
            10,
            8,
        ))
        .unwrap();
    let rr = synth
        .run(switch_allocator_netlist(
            SwitchAllocatorKind::SepIf(RoundRobin),
            10,
            8,
        ))
        .unwrap();
    assert!(
        m.delay_ns < rr.delay_ns,
        "m {} !< rr {}",
        m.delay_ns,
        rr.delay_ns
    );
    assert!(
        m.area_um2 > rr.area_um2,
        "m {} !> rr {}",
        m.area_um2,
        rr.area_um2
    );
}

#[test]
fn wavefront_vc_allocator_cost_grows_superlinearly_with_vcs() {
    // §4.3.1: "the wavefront allocator's delay quickly surpasses that of
    // the separable implementations as the number of VCs increases" and
    // its area grows cubically.
    let synth = Synthesizer::unlimited();
    let small = synth
        .run(vc_allocator_netlist(
            &VcAllocSpec::mesh(1),
            AllocatorKind::Wavefront,
            true,
        ))
        .unwrap();
    let big = synth
        .run(vc_allocator_netlist(
            &VcAllocSpec::mesh(4),
            AllocatorKind::Wavefront,
            true,
        ))
        .unwrap();
    // 4x the VCs: area should grow far more than 4x (cubic blocks).
    assert!(big.area_um2 > 8.0 * small.area_um2);
    assert!(big.delay_ns > 1.5 * small.delay_ns);
    // While the separable input-first allocator grows gently in delay.
    let sep_small = synth
        .run(vc_allocator_netlist(
            &VcAllocSpec::mesh(1),
            AllocatorKind::SepIfRr,
            true,
        ))
        .unwrap();
    let sep_big = synth
        .run(vc_allocator_netlist(
            &VcAllocSpec::mesh(4),
            AllocatorKind::SepIfRr,
            true,
        ))
        .unwrap();
    assert!(sep_big.delay_ns < 2.5 * sep_small.delay_ns);
    assert!(
        sep_big.delay_ns < big.delay_ns,
        "sep_if must be faster at C=4"
    );
}
