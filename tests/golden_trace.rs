//! Golden-trace snapshot tests.
//!
//! A 2,000-cycle deterministic run per topology (paper-baseline router,
//! two VCs per class) is digested flit-event by flit-event and compared
//! against the recording in `results/golden_traces.json`. This pins the
//! simulator's cycle-exact behaviour across refactors: any change to
//! injection order, allocation outcomes, or link timing shows up as a
//! digest mismatch, and the per-cycle digest trail names the first
//! diverging cycle so the offending change is bisectable.
//!
//! When a behaviour change is *intended*, re-bless the recording:
//!
//! ```text
//! NOC_BLESS=1 cargo test --test golden_trace
//! ```

use noc_obs::{DigestSink, JsonValue};
use noc_sim::{Engine, Network, SimConfig, TopologyKind};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/results/golden_traces.json");
const GOLDEN_SCHEMA: &str = "noc-golden/v1";
const CYCLES: u64 = 2000;

const TOPOLOGIES: [(&str, TopologyKind); 3] = [
    ("mesh8x8", TopologyKind::Mesh8x8),
    ("fbfly4x4", TopologyKind::FlattenedButterfly4x4),
    ("torus8x8", TopologyKind::Torus8x8),
];

fn golden_cfg(kind: TopologyKind) -> SimConfig {
    SimConfig::paper_baseline(kind, 2)
}

fn run_digest(cfg: &SimConfig, engine: Engine) -> DigestSink {
    let mut net = Network::with_sink(cfg.clone(), DigestSink::with_cycle_digests());
    engine.run(&mut net, CYCLES);
    let mut sink = net.sink;
    sink.finish_cycles(CYCLES);
    sink
}

/// One recorded topology entry.
struct Golden {
    digest: u64,
    events: u64,
    cycle_digests: Vec<u64>,
}

fn parse_hex64(s: &str) -> u64 {
    u64::from_str_radix(s, 16).unwrap_or_else(|e| panic!("bad hex digest '{s}': {e}"))
}

fn load_golden() -> Vec<(String, Golden)> {
    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "cannot read {GOLDEN_PATH}: {e}\n\
             (first run? bless it with: NOC_BLESS=1 cargo test --test golden_trace)"
        )
    });
    let doc = JsonValue::parse(&text)
        .unwrap_or_else(|e| panic!("golden trace file must be valid JSON: {e}"));
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some(GOLDEN_SCHEMA),
        "unexpected golden trace schema"
    );
    assert_eq!(
        doc.get("cycles").and_then(JsonValue::as_f64),
        Some(CYCLES as f64),
        "golden recording length changed; re-bless with NOC_BLESS=1"
    );
    let Some(topos) = doc.get("topologies") else {
        panic!("missing 'topologies'");
    };
    let JsonValue::Obj(members) = topos else {
        panic!("'topologies' must be an object");
    };
    members
        .iter()
        .map(|(name, entry)| {
            let digest = parse_hex64(
                entry
                    .get("digest")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_else(|| panic!("{name}: missing digest")),
            );
            let events = entry
                .get("events")
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("{name}: missing events"))
                as u64;
            let cycle_digests = entry
                .get("cycle_digests")
                .and_then(JsonValue::as_array)
                .unwrap_or_else(|| panic!("{name}: missing cycle_digests"))
                .iter()
                .map(|v| {
                    parse_hex64(
                        v.as_str()
                            .unwrap_or_else(|| panic!("{name}: cycle digest must be a string")),
                    )
                })
                .collect();
            (
                name.clone(),
                Golden {
                    digest,
                    events,
                    cycle_digests,
                },
            )
        })
        .collect()
}

fn render_golden(entries: &[(String, DigestSink)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{GOLDEN_SCHEMA}\",\"cycles\":{CYCLES},\"topologies\":{{"
    ));
    for (i, (name, sink)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"digest\":\"{:016x}\",\"events\":{},\"cycle_digests\":[",
            sink.digest(),
            sink.events()
        ));
        for (c, d) in sink.cycle_digests().iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{d:016x}\""));
        }
        out.push_str("]}");
    }
    out.push_str("}}\n");
    out
}

fn bless() {
    let entries: Vec<(String, DigestSink)> = TOPOLOGIES
        .iter()
        .map(|&(name, kind)| {
            (
                name.to_string(),
                run_digest(&golden_cfg(kind), Engine::Sequential),
            )
        })
        .collect();
    std::fs::write(GOLDEN_PATH, render_golden(&entries))
        .unwrap_or_else(|e| panic!("cannot write golden trace file: {e}"));
    eprintln!("blessed {} topologies into {GOLDEN_PATH}", entries.len());
}

#[test]
fn golden_traces_match_recorded() {
    if std::env::var("NOC_BLESS").is_ok_and(|v| v == "1") {
        bless();
        return;
    }
    let golden = load_golden();
    for &(name, kind) in &TOPOLOGIES {
        let (_, want) = golden
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from golden file; re-bless"));
        // Every engine must reproduce the recorded sequential trace.
        for engine in [Engine::Sequential, Engine::Parallel(4), Engine::ActiveSet] {
            let got = run_digest(&golden_cfg(kind), engine);
            if got.digest() != want.digest {
                let cycle = DigestSink::first_divergence(got.cycle_digests(), &want.cycle_digests);
                panic!(
                    "{name} (engine '{}'): trace digest {:#018x} != recorded {:#018x} \
                     ({} vs {} events); first diverging cycle: {:?}\n\
                     If this change is intended, re-bless with: \
                     NOC_BLESS=1 cargo test --test golden_trace",
                    engine.label(),
                    got.digest(),
                    want.digest,
                    got.events(),
                    want.events,
                    cycle
                );
            }
            assert_eq!(got.events(), want.events, "{name}: event count drifted");
            assert_eq!(
                got.cycle_digests(),
                &want.cycle_digests[..],
                "{name}: per-cycle digests drifted with equal final digest"
            );
        }
    }
}

#[test]
fn golden_file_is_well_formed() {
    if std::env::var("NOC_BLESS").is_ok_and(|v| v == "1") {
        return; // the bless path owns the file this run
    }
    let golden = load_golden();
    assert_eq!(golden.len(), TOPOLOGIES.len());
    for (name, g) in &golden {
        assert!(
            TOPOLOGIES.iter().any(|(n, _)| n == name),
            "unknown topology '{name}' in golden file"
        );
        assert_eq!(
            g.cycle_digests.len(),
            CYCLES as usize,
            "{name}: one digest per cycle"
        );
        assert!(g.events > 0, "{name}: recorded run injected no flits");
        assert_eq!(
            *g.cycle_digests.last().expect("non-empty"),
            g.digest,
            "{name}: final cumulative digest must equal the run digest"
        );
    }
}
