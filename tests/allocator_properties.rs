//! Property-based tests over the core allocation invariants (proptest).

use noc_core::{Allocator, AllocatorKind, AugmentingPathAllocator, BitMatrix, MaxSizeAllocator};
use proptest::prelude::*;

/// Brute-force maximum matching by exhaustive row-by-row search — the
/// ground-truth oracle for small matrices.
fn brute_force_max_matching(req: &BitMatrix) -> usize {
    fn go(req: &BitMatrix, row: usize, used_cols: &mut [bool]) -> usize {
        if row == req.num_rows() {
            return 0;
        }
        // Either skip this row...
        let mut best = go(req, row + 1, used_cols);
        // ...or match it to any free requested column.
        for c in req.row(row).iter_set() {
            if !used_cols[c] {
                used_cols[c] = true;
                best = best.max(1 + go(req, row + 1, used_cols));
                used_cols[c] = false;
            }
        }
        best
    }
    go(req, 0, &mut vec![false; req.num_cols()])
}

/// Strategy: a request matrix up to 12×12 with arbitrary density.
fn request_matrix() -> impl Strategy<Value = BitMatrix> {
    (1usize..=12, 1usize..=12).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(proptest::bool::ANY, rows * cols).prop_map(move |bits| {
            let mut m = BitMatrix::new(rows, cols);
            for (i, b) in bits.iter().enumerate() {
                if *b {
                    m.set(i / cols, i % cols, true);
                }
            }
            m
        })
    })
}

/// Strategy: a small request matrix (≤5×5) where brute-force optimal
/// matching is affordable.
fn small_request_matrix() -> impl Strategy<Value = BitMatrix> {
    (1usize..=5, 1usize..=5).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(proptest::bool::ANY, rows * cols).prop_map(move |bits| {
            let mut m = BitMatrix::new(rows, cols);
            for (i, b) in bits.iter().enumerate() {
                if *b {
                    m.set(i / cols, i % cols, true);
                }
            }
            m
        })
    })
}

/// Strategy: a short sequence of request matrices with fixed shape, for
/// stateful (priority-carrying) runs.
fn request_sequence() -> impl Strategy<Value = (usize, usize, Vec<Vec<bool>>)> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(rows, cols)| {
        (
            Just(rows),
            Just(cols),
            proptest::collection::vec(
                proptest::collection::vec(proptest::bool::ANY, rows * cols),
                1..8,
            ),
        )
    })
}

fn all_kinds() -> Vec<AllocatorKind> {
    vec![
        AllocatorKind::SepIfRr,
        AllocatorKind::SepIfMatrix,
        AllocatorKind::SepOfRr,
        AllocatorKind::SepOfMatrix,
        AllocatorKind::Wavefront,
        AllocatorKind::MaxSize,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_allocator_produces_valid_matchings(req in request_matrix()) {
        for kind in all_kinds() {
            let mut a = kind.build(req.num_rows(), req.num_cols());
            let g = a.allocate(&req);
            prop_assert!(g.is_matching_for(&req), "{kind:?}\n{req:?}\n{g:?}");
        }
    }

    #[test]
    fn wavefront_matchings_are_maximal(req in request_matrix()) {
        let mut a = AllocatorKind::Wavefront.build(req.num_rows(), req.num_cols());
        let g = a.allocate(&req);
        prop_assert!(g.is_maximal_for(&req), "{req:?}\n{g:?}");
    }

    #[test]
    fn maxsize_dominates_every_other_allocator(req in request_matrix()) {
        let best = MaxSizeAllocator::max_matching_size(&req);
        for kind in all_kinds() {
            let mut a = kind.build(req.num_rows(), req.num_cols());
            let got = a.allocate(&req).count_ones();
            prop_assert!(got <= best, "{kind:?}: {got} > max {best}");
        }
        // And the maximum allocator achieves it.
        let mut ms = AllocatorKind::MaxSize.build(req.num_rows(), req.num_cols());
        prop_assert_eq!(ms.allocate(&req).count_ones(), best);
    }

    #[test]
    fn augmenting_path_matches_brute_force_optimum(req in small_request_matrix()) {
        // The augmenting-path allocator with an unbounded budget and the
        // max-size oracle must both achieve the exhaustive-search optimum.
        let best = brute_force_max_matching(&req);
        prop_assert_eq!(MaxSizeAllocator::max_matching_size(&req), best, "{:?}", req);
        let mut a = AugmentingPathAllocator::new(req.num_rows(), req.num_cols(), req.num_rows());
        let g = a.allocate(&req);
        prop_assert!(g.is_matching_for(&req), "{:?}\n{:?}", req, g);
        prop_assert_eq!(g.count_ones(), best, "{:?}", req);
    }

    #[test]
    fn maximal_matchings_are_at_least_half_of_maximum(req in request_matrix()) {
        // Classic 2-approximation: |maximal| >= |maximum| / 2; the
        // wavefront allocator must respect it.
        let best = MaxSizeAllocator::max_matching_size(&req);
        let mut wf = AllocatorKind::Wavefront.build(req.num_rows(), req.num_cols());
        let got = wf.allocate(&req).count_ones();
        prop_assert!(2 * got >= best, "wavefront {got} < {best}/2");
    }

    #[test]
    fn non_conflicting_requests_always_granted((rows, cols, seq) in request_sequence()) {
        // Feed a random history, then a conflict-free matrix: everything in
        // it must be granted by every architecture (§4.3.2 guarantee).
        for kind in all_kinds() {
            let mut a = kind.build(rows, cols);
            for bits in &seq {
                let mut m = BitMatrix::new(rows, cols);
                for (i, b) in bits.iter().enumerate() {
                    if *b {
                        m.set(i / cols, i % cols, true);
                    }
                }
                a.allocate(&m);
            }
            // Diagonal (conflict-free) requests.
            let diag = BitMatrix::from_entries(
                rows,
                cols,
                (0..rows.min(cols)).map(|i| (i, i)),
            );
            let g = a.allocate(&diag);
            prop_assert_eq!(g, diag, "{:?} after history", kind);
        }
    }

    #[test]
    fn allocation_is_deterministic((rows, cols, seq) in request_sequence()) {
        for kind in all_kinds() {
            let run = || {
                let mut a = kind.build(rows, cols);
                let mut out = Vec::new();
                for bits in &seq {
                    let mut m = BitMatrix::new(rows, cols);
                    for (i, b) in bits.iter().enumerate() {
                        if *b {
                            m.set(i / cols, i % cols, true);
                        }
                    }
                    out.push(a.allocate(&m));
                }
                out
            };
            prop_assert_eq!(run(), run(), "{:?}", kind);
        }
    }
}
