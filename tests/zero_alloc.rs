//! Steady-state allocation audit: after warmup, the cycle loop of every
//! engine must run without touching the global allocator. The two-phase
//! step keeps its `RouterOutputs` buffers across cycles and the timing
//! wheel reuses its slot vectors, so a single heap allocation per cycle
//! is a regression — and one this test catches exactly, via a counting
//! `#[global_allocator]` wrapped around `System`.
//!
//! The parallel engine allocates per *call* (thread spawn, the shard
//! cells), never per *cycle*: doubling the cycle count must not change
//! the allocation count.
//!
//! Measurements share one mutex so the counter is never polluted by a
//! concurrently running test in this binary; other test binaries are
//! separate processes and invisible to this allocator.

use noc_core::{AllocatorKind, SpecMode, SwitchAllocatorKind};
use noc_sim::{Network, SimConfig, TopologyKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counts allocation calls (`alloc`, `alloc_zeroed`, `realloc`);
/// `dealloc` is free to run — dropping is not the regression we hunt.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; the counter has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // RELAXED: independent event counter; read only while the
        // measurement mutex serializes all allocating activity.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator,
        // which is `System` underneath.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // RELAXED: as in `alloc`.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // RELAXED: as in `alloc`.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; `ptr`/`layout` pair is the
        // caller's obligation.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes measurements across this binary's test threads.
static MEASURE: Mutex<()> = Mutex::new(());

const WARMUP: u64 = 2_000;
const MEASURED: u64 = 500;

fn net(topo: TopologyKind) -> Network {
    let cfg = SimConfig {
        injection_rate: 0.2,
        ..SimConfig::paper_baseline(topo, 1)
    };
    Network::new(cfg)
}

/// Allocation count across `f()`.
// RELAXED: single-threaded reads of a monotone counter bumped by this same
// thread's allocations; no ordering with other memory is needed.
fn allocs_during<R>(f: impl FnOnce() -> R) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    drop(r);
    // RELAXED: same single-threaded monotone-counter read as above.
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn sequential_engine_steady_state_is_allocation_free() {
    let guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    for topo in [TopologyKind::Mesh8x8, TopologyKind::FlattenedButterfly4x4] {
        let mut n = net(topo);
        n.run(WARMUP);
        let during = allocs_during(|| n.run(MEASURED));
        assert_eq!(
            during, 0,
            "seq engine allocated {during} times in {MEASURED} steady-state cycles on {topo:?}"
        );
    }
    drop(guard);
}

/// The bit-parallel kernels (banked arbiter sweeps, wavefront diagonal
/// recurrence, the matrix allocator's `allocate_into` scratch, and the
/// router's struct-of-arrays output-VC state) must preserve the zero-alloc
/// steady state. Covers both separable kernels at C=2 (mesh 5-port, 4-VC
/// routers: every VA/SA stage takes the u64 path) and the wavefront
/// VC+switch pairing, whose grant scratch is the newest reuse surface.
#[test]
fn kernel_paths_steady_state_is_allocation_free() {
    let guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let rr = noc_arbiter::ArbiterKind::RoundRobin;
    let configs: [(AllocatorKind, SwitchAllocatorKind, SpecMode); 3] = [
        // Paper baseline kinds at C=2: separable input-first kernels.
        (
            AllocatorKind::SepIfRr,
            SwitchAllocatorKind::SepIf(rr),
            SpecMode::Pessimistic,
        ),
        // Output-first kernels plus conventional speculation masking.
        (
            AllocatorKind::SepOfRr,
            SwitchAllocatorKind::SepOf(rr),
            SpecMode::Conventional,
        ),
        // Wavefront VC allocation drives `MatrixVcAllocator`'s reused
        // grant scratch through `Allocator::allocate_into`.
        (
            AllocatorKind::Wavefront,
            SwitchAllocatorKind::Wavefront,
            SpecMode::Pessimistic,
        ),
    ];
    for (vca_kind, sa_kind, spec_mode) in configs {
        let cfg = SimConfig {
            injection_rate: 0.2,
            vca_kind,
            sa_kind,
            spec_mode,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        };
        let mut n = Network::new(cfg);
        n.run(WARMUP);
        let during = allocs_during(|| n.run(MEASURED));
        assert_eq!(
            during, 0,
            "kernel path {vca_kind:?}/{sa_kind:?}/{spec_mode:?} allocated \
             {during} times in {MEASURED} steady-state cycles"
        );
    }
    drop(guard);
}

#[test]
fn active_engine_steady_state_is_allocation_free() {
    let guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let mut n = net(TopologyKind::Mesh8x8);
    n.run_active(WARMUP);
    let during = allocs_during(|| n.run_active(MEASURED));
    assert_eq!(
        during, 0,
        "active engine allocated {during} times in {MEASURED} steady-state cycles"
    );
    drop(guard);
}

#[test]
fn parallel_engine_allocates_per_call_not_per_cycle() {
    let guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    // Two identically warmed networks; the only difference is how many
    // cycles the measured call runs. Thread spawn and shard setup are
    // per-call constants, so the counts must match exactly.
    let mut a = net(TopologyKind::Mesh8x8);
    let mut b = net(TopologyKind::Mesh8x8);
    a.run_parallel(WARMUP, 3);
    b.run_parallel(WARMUP, 3);
    let short = allocs_during(|| a.run_parallel(MEASURED, 3));
    let long = allocs_during(|| b.run_parallel(2 * MEASURED, 3));
    assert_eq!(
        short,
        long,
        "parallel engine allocation count scales with cycles \
         ({short} for {MEASURED} cycles vs {long} for {} cycles)",
        2 * MEASURED
    );
    drop(guard);
}
