//! Round-trip tests: `SimResult::to_json` must be strict JSON that the
//! in-repo reader parses back losslessly, with NaN mapped to `null`.

use noc_obs::JsonValue;
use noc_sim::{run_sim, run_sim_replicated, SimConfig, TopologyKind};

fn mesh(rate: f64) -> SimConfig {
    SimConfig {
        injection_rate: rate,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
    }
}

#[test]
fn single_run_summary_round_trips_with_nan_as_null() {
    let r = run_sim(&mesh(0.1), 500, 1_500);
    let v = JsonValue::parse(&r.to_json()).expect("to_json must be strict JSON");
    // Plain runs have no CI estimate: NaN must serialize as null and read
    // back as NaN through num_or_nan.
    assert!(r.ci95.is_nan());
    assert!(v.get("ci95").expect("ci95 key").is_null());
    assert!(v.num_or_nan("ci95").is_nan());
    assert!(v.get("warmup_detected").expect("key").is_null());
    assert_eq!(v.num_or_nan("seeds"), 1.0);
    // Finite metrics survive exactly.
    assert_eq!(v.num_or_nan("avg_latency"), r.avg_latency);
    assert_eq!(v.num_or_nan("throughput"), r.throughput);
    assert_eq!(v.num_or_nan("latency_p99"), r.latency_p99);
    assert_eq!(v.get("stable").and_then(JsonValue::as_bool), Some(r.stable));
    // The percentile table is part of the schema now.
    let pct = v.get("percentiles").expect("percentiles object");
    assert_eq!(pct.num_or_nan("p50"), r.hist.percentile(0.5));
    assert_eq!(pct.num_or_nan("p99"), r.hist.percentile(0.99));
    assert_eq!(pct.num_or_nan("max"), r.hist.percentile(1.0));
}

#[test]
fn replicated_run_summary_round_trips_ci_and_warmup() {
    let r = run_sim_replicated(&mesh(0.1), 2_000, 3);
    let v = JsonValue::parse(&r.to_json()).expect("strict JSON");
    assert_eq!(v.num_or_nan("seeds"), 3.0);
    assert!(r.ci95.is_finite());
    assert_eq!(v.num_or_nan("ci95"), r.ci95);
    assert_eq!(
        v.num_or_nan("warmup_detected"),
        r.warmup_detected.unwrap() as f64
    );
}

#[test]
fn empty_run_serializes_every_nan_as_null() {
    // Zero injection: nothing is delivered, every latency metric is NaN.
    let r = run_sim(&mesh(0.0), 100, 200);
    let json = r.to_json();
    assert!(!json.contains("NaN"), "raw NaN leaked into JSON: {json}");
    let v = JsonValue::parse(&json).expect("strict JSON");
    for key in ["avg_latency", "request_latency", "latency_p99", "ci95"] {
        assert!(v.num_or_nan(key).is_nan(), "{key} should read back NaN");
    }
}
