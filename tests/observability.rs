//! Acceptance tests for the observability layer (`noc-obs`): CLI export
//! formats, stall-attribution invariants, and trace-event consistency.

// Panicking on setup failure is the right behaviour outside library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc_obs::{validate_json, CountingSink, FlitEventKind, NopSink};
use noc_sim::{run_sim, run_sim_observed, SimConfig, TopologyKind};
use std::process::Command;

fn noc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_noc"))
        .args(args)
        .output()
        .expect("failed to spawn noc binary")
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("noc-obs-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn cli_exports_are_machine_readable() {
    let dir = scratch_dir("cli");
    let csv_path = dir.join("metrics.csv");
    let trace_path = dir.join("trace.json");
    let out = noc(&[
        "sim",
        "--topology",
        "mesh",
        "--vcs",
        "1",
        "--rate",
        "0.1",
        "--warmup",
        "200",
        "--measure",
        "600",
        "--sample-interval",
        "50",
        "--metrics",
        csv_path.to_str().unwrap(),
        "--trace",
        trace_path.to_str().unwrap(),
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // stdout: one valid JSON object including the per-router breakdown.
    let text = String::from_utf8_lossy(&out.stdout);
    validate_json(text.trim()).unwrap_or_else(|e| panic!("summary not JSON: {e}\n{text}"));
    for key in [
        "\"avg_latency\"",
        "\"router_stats\"",
        "\"max_router_throughput\"",
        "\"min_router_throughput\"",
        "\"routers\":[",
        "\"worst_port_stall\"",
    ] {
        assert!(text.contains(key), "summary missing {key}: {text}");
    }

    // CSV: exact header, uniform field counts, both record types present.
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "record,cycle,router,port,vc,name,value"
    );
    for l in lines {
        assert_eq!(l.split(',').count(), 7, "ragged CSV row: {l}");
    }
    assert!(csv.contains("\ncounter,"));
    assert!(csv.contains("\ngauge,"));
    assert!(csv.contains("sa_stall"));
    assert!(csv.contains("utilization"));

    // Chrome trace: one well-formed JSON object with slices and spans.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    validate_json(&trace).unwrap_or_else(|e| panic!("trace not JSON: {e}"));
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("\"ph\":\"b\""));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_metrics_json_extension_selects_json_lines() {
    let dir = scratch_dir("jsonl");
    let path = dir.join("metrics.jsonl");
    let out = noc(&[
        "sim",
        "--topology",
        "mesh",
        "--vcs",
        "1",
        "--rate",
        "0.05",
        "--warmup",
        "100",
        "--measure",
        "300",
        "--metrics",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let jsonl = std::fs::read_to_string(&path).unwrap();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        validate_json(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert!(line.contains("\"record\":"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stall_fractions_partition_every_cycle() {
    let cfg = SimConfig {
        injection_rate: 0.25,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
    };
    let total = 1_500u64;
    let run = run_sim_observed(&cfg, 500, total - 500, NopSink, None);
    assert!(!run.router_obs.is_empty());
    for (r, obs) in run.router_obs.iter().enumerate() {
        for (idx, s) in obs.vc.iter().enumerate() {
            // Exactly one bucket per cycle: the counters partition the run.
            assert_eq!(
                s.cycles(),
                total,
                "router {r} vc slot {idx}: buckets don't partition the run"
            );
            let (c, v, a, e) = s.fractions();
            let sum = c + v + a + e;
            assert!(
                (0.0..=1.0 + 1e-9).contains(&sum),
                "router {r} vc slot {idx}: stall fractions sum to {sum}"
            );
            assert!(s.stall_fraction() <= 1.0 + 1e-9);
        }
        let (_, worst) = obs.worst_port_stall();
        assert!((0.0..=1.0).contains(&worst));
    }
    // The per-router breakdown mirrors the raw counters.
    assert_eq!(run.result.routers.len(), run.router_obs.len());
    for b in &run.result.routers {
        assert!(b.throughput.is_finite() && b.throughput >= 0.0);
        assert!((0.0..=1.0).contains(&b.worst_port_stall));
    }
}

#[test]
fn trace_events_are_consistent_with_run_statistics() {
    let cfg = SimConfig {
        injection_rate: 0.15,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
    };
    let run = run_sim_observed(&cfg, 300, 900, CountingSink::default(), None);
    let s = &run.sink;
    assert!(s.count(FlitEventKind::Inject) > 0);
    // Conservation: a flit must be injected before it can eject or move.
    assert!(s.count(FlitEventKind::Eject) <= s.count(FlitEventKind::Inject));
    assert!(s.count(FlitEventKind::SwitchTraversal) >= s.count(FlitEventKind::Eject));
    // Grant events mirror the router counters exactly.
    let rs = run.result.router_stats;
    assert_eq!(s.count(FlitEventKind::SaGrant), rs.nonspec_grants);
    assert_eq!(s.count(FlitEventKind::SaSpecGrant), rs.spec_grants);
    assert_eq!(s.count(FlitEventKind::SaSpecMasked), rs.spec_masked);
    assert_eq!(s.count(FlitEventKind::SaSpecInvalid), rs.spec_invalid);
    assert_eq!(s.count(FlitEventKind::SaSpecRequest), rs.spec_requests);
    assert_eq!(s.count(FlitEventKind::VcaRequest), rs.vca_requests);
    assert_eq!(s.count(FlitEventKind::VcaGrant), rs.vca_grants);
}

#[test]
fn traced_and_untraced_runs_agree_exactly() {
    // The observability layer must not perturb simulation behaviour: a
    // traced run and a plain run of the same configuration are identical.
    let cfg = SimConfig {
        injection_rate: 0.2,
        ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2)
    };
    let plain = run_sim(&cfg, 400, 800);
    let traced = run_sim_observed(&cfg, 400, 800, CountingSink::default(), Some(64));
    assert_eq!(
        plain.avg_latency.to_bits(),
        traced.result.avg_latency.to_bits()
    );
    assert_eq!(
        plain.throughput.to_bits(),
        traced.result.throughput.to_bits()
    );
    assert_eq!(
        plain.router_stats.nonspec_grants,
        traced.result.router_stats.nonspec_grants
    );
    assert_eq!(
        plain.router_stats.spec_requests,
        traced.result.router_stats.spec_requests
    );
    let m = traced.metrics.expect("sampling was enabled");
    assert!(!m.samples.is_empty());
    for s in &m.samples {
        assert!((0.0..=1.0 + 1e-9).contains(&s.utilization), "{s:?}");
    }
}
