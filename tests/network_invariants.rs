//! End-to-end network invariants across allocator configurations: no flit
//! loss, drainage (deadlock freedom at the tested loads), determinism, and
//! request/reply transaction closure.

use noc_core::{SpecMode, SwitchAllocatorKind};
use noc_sim::{Network, SimConfig, TopologyKind, TrafficPattern};

fn drain(net: &mut Network, max_cycles: u64) -> bool {
    for _ in 0..max_cycles {
        net.step();
        if net.is_drained() {
            return true;
        }
    }
    false
}

fn all_router_configs() -> Vec<SimConfig> {
    use noc_arbiter::ArbiterKind::RoundRobin;
    let mut cfgs = Vec::new();
    for topo in [TopologyKind::Mesh8x8, TopologyKind::FlattenedButterfly4x4] {
        for sa in [
            SwitchAllocatorKind::SepIf(RoundRobin),
            SwitchAllocatorKind::SepOf(RoundRobin),
            SwitchAllocatorKind::Wavefront,
        ] {
            for mode in SpecMode::ALL {
                cfgs.push(SimConfig {
                    sa_kind: sa,
                    spec_mode: mode,
                    injection_rate: 0.15,
                    ..SimConfig::paper_baseline(topo, 2)
                });
            }
        }
    }
    cfgs
}

#[test]
fn conservation_and_drainage_across_all_configurations() {
    for mut cfg in all_router_configs() {
        let label = format!("{} {:?} {:?}", cfg.label(), cfg.sa_kind, cfg.spec_mode);
        let mut net = Network::new(cfg.clone());
        net.stats.set_window(0, u64::MAX);
        net.run(1_500);
        let injected_so_far = net.total_flits_injected();
        assert!(injected_so_far > 300, "{label}: injected {injected_so_far}");
        cfg.injection_rate = 0.0;
        // Stop traffic by rebuilding config in place (same network state).
        *netcfg_mut(&mut net) = cfg;
        assert!(drain(&mut net, 5_000), "{label}: failed to drain");
        assert_eq!(
            net.total_flits_injected(),
            net.stats.flits_ejected,
            "{label}: flits lost or duplicated"
        );
    }
}

// Helper to mutate the network's config (injection rate) mid-run.
fn netcfg_mut(net: &mut Network) -> &mut SimConfig {
    net.config_mut()
}

#[test]
fn dense_and_sparse_vc_allocators_both_work_in_network() {
    for sparse in [false, true] {
        let cfg = SimConfig {
            vca_sparse: sparse,
            injection_rate: 0.2,
            ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2)
        };
        let r = noc_sim::run_sim(&cfg, 1_000, 3_000);
        assert!(r.stable, "sparse={sparse}");
        assert!(r.avg_latency.is_finite());
    }
}

#[test]
fn all_traffic_patterns_deliver() {
    for pattern in [
        TrafficPattern::UniformRandom,
        TrafficPattern::BitComplement,
        TrafficPattern::Transpose,
        TrafficPattern::Tornado,
        TrafficPattern::Shuffle,
    ] {
        let cfg = SimConfig {
            pattern,
            injection_rate: 0.1,
            ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2)
        };
        let r = noc_sim::run_sim(&cfg, 1_500, 3_000);
        assert!(r.stable, "{pattern:?}");
        assert!(r.throughput > 0.05, "{pattern:?}: {}", r.throughput);
    }
}

#[test]
fn seeds_change_results_but_reruns_do_not() {
    let base = SimConfig {
        injection_rate: 0.2,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
    };
    let run = |seed: u64| {
        let cfg = SimConfig {
            seed,
            ..base.clone()
        };
        let r = noc_sim::run_sim(&cfg, 1_000, 2_000);
        (r.avg_latency, r.throughput)
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

#[test]
fn request_and_reply_latencies_are_both_measured() {
    let cfg = SimConfig {
        injection_rate: 0.15,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
    };
    let r = noc_sim::run_sim(&cfg, 1_500, 4_000);
    assert!(r.request_latency.is_finite());
    assert!(r.reply_latency.is_finite());
    // Both classes travel the same network; their latencies are similar.
    let ratio = r.request_latency / r.reply_latency;
    assert!((0.5..2.0).contains(&ratio), "{ratio}");
}

#[test]
fn buffer_depth_sensitivity_monotone_near_saturation() {
    // Deeper buffers cannot hurt saturation throughput (ablation from
    // DESIGN.md §6).
    let mk = |depth: usize| SimConfig {
        buf_depth: depth,
        injection_rate: 0.3,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
    };
    let shallow = noc_sim::run_sim(&mk(4), 1_500, 3_000);
    let deep = noc_sim::run_sim(&mk(16), 1_500, 3_000);
    assert!(deep.throughput >= shallow.throughput * 0.98);
}
