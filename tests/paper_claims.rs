//! Scaled-down reproductions of the paper's headline claims, runnable as
//! part of the regular test suite. The full-scale numbers come from the
//! `fig*` binaries in `noc-bench` (see EXPERIMENTS.md).

use noc_core::{AllocatorKind, VcAllocSpec};
use noc_quality::{sw_quality_curve, vc_quality_curve, SwQualityConfig, VcQualityConfig};
use noc_sim::{run_sim, SimConfig, TopologyKind};

#[test]
fn fig4_claim_96_of_256_legal_transitions() {
    let spec = VcAllocSpec::fbfly(4);
    assert_eq!(spec.legal_transition_count(), 96);
    assert_eq!(spec.total_vcs() * spec.total_vcs(), 256);
}

#[test]
fn fig7_claim_vc_quality_ordering_and_bounds() {
    // wf = 1 everywhere; sep_if >= sep_of; separable degrade with C.
    let mk = |spec: VcAllocSpec| VcQualityConfig {
        spec,
        trials: 600,
        seed: 5,
    };
    let rates = [0.6, 1.0];
    for c in [2usize, 4] {
        let cfg = mk(VcAllocSpec::fbfly(c));
        let wf = vc_quality_curve(&cfg, AllocatorKind::Wavefront, &rates);
        assert!((wf.min_quality() - 1.0).abs() < 1e-9, "wf C={c}");
        let qi = vc_quality_curve(&cfg, AllocatorKind::SepIfRr, &rates).min_quality();
        let qo = vc_quality_curve(&cfg, AllocatorKind::SepOfRr, &rates).min_quality();
        assert!(qi >= qo, "C={c}: sep_if {qi} < sep_of {qo}");
        assert!(qo < 1.0, "C={c}: separable should lose quality");
    }
    // §4.3.2: sep_of up to ~25% worse than wf under high load.
    let cfg = mk(VcAllocSpec::fbfly(4));
    let qo = vc_quality_curve(&cfg, AllocatorKind::SepOfRr, &[1.0]).points[0].quality();
    assert!(qo < 0.85, "sep_of at full load: {qo}");
    assert!(qo > 0.6, "sep_of at full load: {qo}");
}

#[test]
fn fig12_claim_switch_quality_shapes() {
    use noc_arbiter::ArbiterKind::RoundRobin;
    use noc_core::SwitchAllocatorKind::{SepIf, SepOf, Wavefront};
    let cfg = SwQualityConfig {
        ports: 10,
        vcs: 16,
        trials: 500,
        seed: 6,
    };
    // At high rate on the largest config: wf > sep_of > sep_if.
    let q = |k| sw_quality_curve(&cfg, k, &[1.0]).points[0].quality();
    let (qi, qo, qw) = (q(SepIf(RoundRobin)), q(SepOf(RoundRobin)), q(Wavefront));
    assert!(qw > qo && qo > qi, "ordering violated: {qi} {qo} {qw}");
}

#[test]
fn section_5_3_3_claim_wavefront_gains_throughput_on_large_fbfly() {
    // Scaled-down check of the ">20% for 2x2x4" claim: at an offered load
    // between the sep_if and wf saturation points, wf must remain stable
    // while sep_if saturates.
    use noc_core::SwitchAllocatorKind;
    let base = SimConfig {
        injection_rate: 0.53,
        ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 4)
    };
    let sep = run_sim(&base, 2_000, 4_000);
    let wf = run_sim(
        &SimConfig {
            sa_kind: SwitchAllocatorKind::Wavefront,
            ..base.clone()
        },
        2_000,
        4_000,
    );
    assert!(wf.stable, "wf should sustain 0.53 on fbfly 2x2x4");
    assert!(
        !sep.stable || sep.avg_latency > 2.0 * wf.avg_latency,
        "sep_if unexpectedly comfortable: {} vs wf {}",
        sep.avg_latency,
        wf.avg_latency
    );
}

#[test]
fn section_5_3_3_claim_speculation_cuts_mesh_zero_load_latency() {
    use noc_core::SpecMode;
    let base = SimConfig {
        injection_rate: 0.01,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
    };
    let spec = run_sim(&base, 1_500, 6_000).avg_latency;
    let nonspec = run_sim(
        &SimConfig {
            spec_mode: SpecMode::NonSpeculative,
            ..base.clone()
        },
        1_500,
        6_000,
    )
    .avg_latency;
    let gain = (nonspec - spec) / nonspec;
    // Paper: up to 23%; we assert a healthy band.
    assert!(
        (0.10..0.40).contains(&gain),
        "speculation zero-load gain {gain:.2} out of band (spec {spec}, nonspec {nonspec})"
    );
}

#[test]
fn section_4_3_3_claim_vc_allocator_choice_barely_matters_at_network_level() {
    // "the choice of VC allocator does not significantly affect the
    // latency-throughput characteristics". Compare sep_if vs wf VC
    // allocators at a moderate load.
    let base = SimConfig {
        injection_rate: 0.25,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
    };
    let a = run_sim(&base, 2_000, 4_000);
    let b = run_sim(
        &SimConfig {
            vca_kind: AllocatorKind::Wavefront,
            ..base.clone()
        },
        2_000,
        4_000,
    );
    assert!(a.stable && b.stable);
    let diff = (a.avg_latency - b.avg_latency).abs() / a.avg_latency;
    assert!(
        diff < 0.05,
        "VC allocator changed latency by {:.1}%",
        diff * 100.0
    );
}

#[test]
fn section_5_2_claim_pessimistic_equals_conventional_at_low_load() {
    use noc_core::SpecMode;
    let base = SimConfig {
        injection_rate: 0.05,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
    };
    let pess = run_sim(&base, 1_500, 4_000).avg_latency;
    let conv = run_sim(
        &SimConfig {
            spec_mode: SpecMode::Conventional,
            ..base.clone()
        },
        1_500,
        4_000,
    )
    .avg_latency;
    let diff = (pess - conv).abs() / conv;
    assert!(
        diff < 0.03,
        "low-load divergence {diff:.3} (pess {pess}, conv {conv})"
    );
}
