#![forbid(unsafe_code)]
//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors a
//! minimal wall-clock benchmark harness behind the subset of the criterion
//! 0.5 API the workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Each benchmark runs a short warmup, then `sample_size` timed samples of an
//! adaptively chosen iteration batch, and prints the median / min / max
//! nanoseconds per iteration in a stable, grep-friendly one-line format:
//!
//! ```text
//! bench group/name ... median 12345 ns/iter (min 12000, max 13000, 20 samples)
//! ```

use std::fmt;
use std::hint;
use std::time::Instant;

/// Opaque value barrier (stand-in for `criterion::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: `function/parameter` (stand-in for `BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id with no parameter part.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures (stand-in for `criterion::Bencher`).
pub struct Bencher {
    /// Nanoseconds per iteration for each sample, filled by [`Bencher::iter`].
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting the configured number of samples.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warmup and batch-size calibration: aim for ~5 ms per sample.
        let start = Instant::now();
        black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1) as f64;
        let batch = ((5_000_000.0 / once_ns) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
        }
    }
}

/// A named group of benchmarks (stand-in for `BenchmarkGroup`).
pub struct BenchmarkGroup {
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("bench {}/{id} ... no samples", self.group_name);
            return;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        println!(
            "bench {}/{id} ... median {:.0} ns/iter (min {:.0}, max {:.0}, {} samples)",
            self.group_name,
            median,
            s[0],
            s[s.len() - 1],
            s.len(),
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        self.run(&id.to_string(), f);
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Ends the group (output is already printed; kept for API parity).
    pub fn finish(self) {}
}

/// Benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            group_name: name.to_string(),
            sample_size: 100,
        }
    }
}

/// Declares a benchmark group function list (stand-in for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` (stand-in for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut ran = 0u64;
        g.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.finish();
        assert!(ran > 5);
    }
}
