//! Input-queued VC router with the paper's two-stage pipeline (§3.2).
//!
//! Stage 1 performs VC allocation and (speculative) switch allocation in
//! parallel; stage 2 is switch traversal. Lookahead routing is modeled by
//! computing each head flit's next-hop routing decision while it traverses
//! the switch, so the decision is already available when it arrives
//! downstream. Buffers are statically partitioned, eight flits per VC, with
//! credit-based flow control.

use crate::packet::Flit;
use crate::routing::{route_at, RoutingKind};
use crate::topology::Topology;
use crate::verify::InvariantChecker;
use noc_arbiter::Bits;
use noc_core::{
    AllocatorKind, BitMatrix, DenseVcAllocator, OutVc, SparseVcAllocator, SpecAllocResult,
    SpecMode, SpeculativeSwitchAllocator, SwitchAllocatorKind, SwitchRequests, VcAllocSpec,
    VcAllocator, VcRequest,
};
use noc_obs::{
    FlitEvent, FlitEventKind, HopRecord, NopProfiler, NopSink, Phase, PhaseProfiler,
    RouterCounters, RouterObs, TraceSink,
};
use std::collections::VecDeque;
use std::time::Instant;

/// Router microarchitecture configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// VC class structure (also fixes the port count).
    pub spec: VcAllocSpec,
    /// Buffer depth per VC in flits (the paper uses 8).
    pub buf_depth: usize,
    /// VC allocator architecture.
    pub vca_kind: AllocatorKind,
    /// Use the sparse VC allocator organization (§4.2).
    pub vca_sparse: bool,
    /// Switch allocator architecture.
    pub sa_kind: SwitchAllocatorKind,
    /// Speculation scheme (§5.2).
    pub spec_mode: SpecMode,
    /// Routing algorithm (used for lookahead computation).
    pub routing: RoutingKind,
}

impl RouterConfig {
    /// The paper's default router for a topology: separable input-first VC
    /// allocator (§5.3.3), separable input-first switch allocator,
    /// pessimistic speculation, 8-flit buffers.
    pub fn paper_default(spec: VcAllocSpec, routing: RoutingKind) -> Self {
        RouterConfig {
            spec,
            buf_depth: 8,
            vca_kind: AllocatorKind::SepIfRr,
            vca_sparse: true,
            sa_kind: SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
            spec_mode: SpecMode::Pessimistic,
            routing,
        }
    }
}

// Per-output-VC state is kept struct-of-arrays on [`Router`]
// (`out_owner` / `out_credits` / `free_out`): the credit-gating sweep of
// stage 1b touches only credits and the VC-allocation free map touches only
// ownership, so splitting the former `{owner, credits}` array-of-structs
// halves the bytes each hot loop pulls through the cache and lets the free
// map live as a bit matrix the allocator kernels consume directly.

/// A flit leaving the router this cycle.
#[derive(Clone, Debug)]
pub struct OutgoingFlit {
    /// Output port.
    pub port: usize,
    /// VC at that output (downstream input VC index).
    pub vc: usize,
    /// The flit itself (lookahead fields updated).
    pub flit: Flit,
}

/// Products of one router cycle, for the network to distribute.
#[derive(Clone, Debug, Default)]
pub struct RouterOutputs {
    /// Flits entering links this cycle.
    pub flits: Vec<OutgoingFlit>,
    /// Credits to return upstream: `(input port, input VC)` slots freed.
    pub credits: Vec<(usize, usize)>,
    /// Hop-attribution records for head flits that traversed the switch
    /// this cycle (empty unless the packet ledger is enabled). Drained by
    /// the network's commit phase in router-id order, which is what makes
    /// anatomy dumps byte-identical across engines.
    pub hops: Vec<HopRecord>,
}

impl RouterOutputs {
    /// Output lists pre-sized to the per-cycle worst case — one switch
    /// traversal (flit + credit + hop record) per output port — so a
    /// steady-state engine reusing the buffers never reallocates them.
    pub fn with_capacity(ports: usize) -> Self {
        RouterOutputs {
            flits: Vec::with_capacity(ports),
            credits: Vec::with_capacity(ports),
            hops: Vec::with_capacity(ports),
        }
    }

    /// Empties all lists, keeping their capacity for reuse next cycle.
    pub fn clear(&mut self) {
        self.flits.clear();
        self.credits.clear();
        self.hops.clear();
    }

    /// True when the cycle produced neither flits nor credits (a hop
    /// record always accompanies a departing flit, so it needs no check).
    pub fn is_empty(&self) -> bool {
        self.flits.is_empty() && self.credits.is_empty()
    }
}

/// Reusable per-cycle buffers for the router hot path. Everything a step
/// needs — stall-attribution flags, VC-allocation requests and grants, the
/// free-VC map, switch request matrices and grant lists — lives here, so
/// steady-state stepping performs no heap allocation.
struct StepScratch {
    /// Input VCs that pushed a flit into the switch this cycle. These six
    /// per-input-VC flag sets are bit masks rather than `Vec<bool>`: one
    /// `P*V`-wide [`Bits`] (inline words, no heap indirection) per flag
    /// keeps the whole stall-attribution state in a couple of cache lines.
    moved: Bits,
    /// Input VCs granted an output VC this cycle.
    va_winner: Bits,
    /// Input VCs whose non-speculative bid was blocked on credits.
    credit_blocked: Bits,
    /// Input VCs that issued a non-speculative switch request.
    bid: Bits,
    /// Input VCs that issued a speculative switch request.
    spec_bid: Bits,
    /// Input VCs that won the switch for next cycle.
    granted: Bits,
    /// VC-allocation request per input VC (live entries recycled through
    /// `spare_reqs` so their `classes` vectors keep their allocation).
    vca_reqs: Vec<Option<VcRequest>>,
    spare_reqs: Vec<VcRequest>,
    /// VC-allocation grants (filled by `allocate_into`).
    vca_grants: Vec<Option<OutVc>>,
    /// Non-speculative and speculative switch request matrices.
    nonspec: SwitchRequests,
    spec: SwitchRequests,
    /// Speculative switch allocation result (filled by `allocate_into`).
    sa_result: SpecAllocResult,
    /// Swap buffer for the ST stage so `st_stage` keeps its capacity.
    st_prev: Vec<(usize, usize)>,
}

impl StepScratch {
    fn new(ports: usize, vcs: usize) -> Self {
        let n = ports * vcs;
        StepScratch {
            moved: Bits::new(n),
            va_winner: Bits::new(n),
            credit_blocked: Bits::new(n),
            bid: Bits::new(n),
            spec_bid: Bits::new(n),
            granted: Bits::new(n),
            vca_reqs: vec![None; n],
            // Pre-primed pool: at most one live request per input VC, and
            // each request carries at most `vcs` candidate classes, so the
            // steady-state loop never grows these vectors.
            spare_reqs: (0..n)
                .map(|_| VcRequest {
                    out_port: 0,
                    classes: Vec::with_capacity(vcs),
                })
                .collect(),
            vca_grants: Vec::new(),
            nonspec: SwitchRequests::new(ports, vcs),
            spec: SwitchRequests::new(ports, vcs),
            sa_result: SpecAllocResult::with_capacity(ports),
            st_prev: Vec::with_capacity(ports),
        }
    }
}

/// Opt-in matching-quality sampler: every `period` cycles, compares the
/// switch grants actually issued against an exact maximum matching of the
/// same cycle's port-level request matrix. The accumulated ratio
/// `granted / max` is the allocator's *matching efficiency* — the metric
/// the paper's Figure 4 uses to separate wavefront from separable
/// allocators, here observable live on a running network. Sampling (rather
/// than evaluating every cycle) keeps the Hopcroft-Karp-style augmenting
/// search off the hot path; `period` is chosen by the telemetry layer.
#[derive(Clone, Debug)]
struct MatchSampler {
    /// Sample cadence in cycles.
    period: u64,
    /// Switch grants issued on sampled cycles (cumulative).
    granted: u64,
    /// Maximum-matching sizes on sampled cycles (cumulative).
    max: u64,
    /// Reusable port-level request matrix (union of non-speculative and
    /// speculative requests).
    req: BitMatrix,
}

/// Per-input-VC stage accumulator for the packet ledger: how many cycles
/// the head flit currently at (or headed for) the front of the VC has been
/// charged to each pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
struct HopAcc {
    vca: u64,
    sa: u64,
    credit: u64,
    active: u64,
}

/// Opt-in per-packet latency ledger (the substrate of `noc explain`):
/// arrival cycles of buffered head flits plus a stage accumulator per
/// input VC. Disabled (`None` on [`Router::anatomy`]) it costs one branch
/// per cycle, mirroring the [`MatchSampler`] pattern; the [`Flit`] struct
/// itself stays untouched.
#[derive(Clone, Debug)]
struct RouterAnatomy {
    /// Arrival cycle of each buffered head flit, `[port * V + vc]`, FIFO
    /// (a VC never reorders packets, so pops match pushes).
    arrivals: Vec<VecDeque<u64>>,
    /// Stage accumulator per input VC for the head flit at the front.
    acc: Vec<HopAcc>,
}

/// Counters for the speculation-efficiency analysis (§5.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterStats {
    /// Switch grants to non-speculative requests.
    pub nonspec_grants: u64,
    /// Speculative grants that survived masking and validation.
    pub spec_grants: u64,
    /// Speculative grants discarded by the masking stage.
    pub spec_masked: u64,
    /// Speculative grants that survived masking but failed validation
    /// (VC allocation lost or no credit).
    pub spec_invalid: u64,
    /// Speculative switch requests issued (one per head flit per cycle in
    /// which it bid for the switch alongside VC allocation). Every
    /// speculative request either loses switch arbitration outright or
    /// lands in exactly one of `spec_grants`, `spec_masked`,
    /// `spec_invalid`, so their sum never exceeds this.
    pub spec_requests: u64,
    /// VC allocation grants.
    pub vca_grants: u64,
    /// VC allocation requests (one per head flit per cycle spent waiting);
    /// `vca_requests / vca_grants - 1` is the average number of retry
    /// cycles per packet — the "time head flits have to wait before being
    /// assigned an output VC" of §1.
    pub vca_requests: u64,
}

/// One router instance.
pub struct Router {
    /// Router id (index in the topology).
    pub id: usize,
    cfg: RouterConfig,
    ports: usize,
    vcs: usize,
    /// Input buffers, `[port * V + vc]`.
    in_buf: Vec<VecDeque<Flit>>,
    /// Output VC held by each input VC (flat output id), if any.
    in_out_vc: Vec<Option<usize>>,
    /// Input VC currently holding each output VC, `[port * V + vc]`
    /// (struct-of-arrays with `out_credits` / `free_out`).
    out_owner: Vec<Option<u32>>,
    /// Credits per output VC: free buffer slots in the downstream input VC.
    out_credits: Vec<u32>,
    /// Free output-VC map — bit `(p, vc)` set iff `out_owner[p * V + vc]`
    /// is `None`. Maintained incrementally at grant and tail-release so VC
    /// allocation reads it directly instead of rebuilding it every cycle.
    free_out: BitMatrix,
    vca: Box<dyn VcAllocator + Send>,
    sa: SpeculativeSwitchAllocator,
    /// Switch grants issued last cycle, traversing this cycle:
    /// `(input flat id, output port)`.
    st_stage: Vec<(usize, usize)>,
    /// Reusable per-cycle buffers.
    scratch: StepScratch,
    /// Cycles the active-set engine skipped this router for, still owed to
    /// the per-VC `empty` stall counters (reconciled lazily by
    /// [`Router::flush_skipped`]).
    skipped_cycles: u64,
    /// Statistics.
    pub stats: RouterStats,
    /// Always-on observability counters (per-port flit counts and
    /// per-input-VC stall-cause attribution).
    pub obs: RouterObs,
    /// Matching-quality sampler; `None` (the default) costs one branch per
    /// cycle.
    match_sampler: Option<MatchSampler>,
    /// Packet-ledger state; `None` (the default) costs one branch per
    /// cycle plus one per accepted head flit.
    anatomy: Option<RouterAnatomy>,
    /// Test-only failure injection: panic when stepped at this cycle.
    /// `None` in all production paths; costs one comparison per step.
    test_panic_at: Option<u64>,
}

impl Router {
    /// Arms a one-shot injected panic: the router panics when stepped at
    /// `cycle`. Exists solely for the engine panic-safety regression
    /// tests (`crates/sim/tests/par_panic.rs`).
    #[doc(hidden)]
    pub fn arm_test_panic(&mut self, cycle: u64) {
        self.test_panic_at = Some(cycle);
    }

    /// Creates a router with empty buffers and full credits.
    pub fn new(id: usize, cfg: RouterConfig) -> Self {
        let ports = cfg.spec.ports();
        let vcs = cfg.spec.total_vcs();
        let n = ports * vcs;
        let vca: Box<dyn VcAllocator + Send> = if cfg.vca_sparse {
            Box::new(SparseVcAllocator::new(cfg.spec.clone(), cfg.vca_kind))
        } else {
            Box::new(DenseVcAllocator::new(cfg.spec.clone(), cfg.vca_kind))
        };
        let sa = SpeculativeSwitchAllocator::new(cfg.sa_kind, ports, vcs, cfg.spec_mode);
        Router {
            id,
            ports,
            vcs,
            // Pre-sized to the credit limit: the overflow assertion in
            // `accept_flit` bounds occupancy at `buf_depth`, so these never
            // reallocate and the steady state stays allocation-free.
            in_buf: (0..n)
                .map(|_| VecDeque::with_capacity(cfg.buf_depth))
                .collect(),
            in_out_vc: vec![None; n],
            out_owner: vec![None; n],
            out_credits: vec![cfg.buf_depth as u32; n],
            free_out: {
                let mut free = BitMatrix::new(ports, vcs);
                for p in 0..ports {
                    for vc in 0..vcs {
                        free.set(p, vc, true);
                    }
                }
                free
            },
            vca,
            sa,
            // At most one traversal per output port per cycle.
            st_stage: Vec::with_capacity(ports),
            scratch: StepScratch::new(ports, vcs),
            skipped_cycles: 0,
            stats: RouterStats::default(),
            obs: RouterObs::new(ports, vcs),
            match_sampler: None,
            anatomy: None,
            test_panic_at: None,
            cfg,
        }
    }

    /// Enables the packet ledger: per-hop stage attribution for every head
    /// flit passing through, emitted as [`HopRecord`]s on
    /// [`RouterOutputs::hops`] at switch traversal.
    pub fn enable_anatomy(&mut self) {
        let n = self.ports * self.vcs;
        self.anatomy = Some(RouterAnatomy {
            arrivals: (0..n).map(|_| VecDeque::new()).collect(),
            acc: vec![HopAcc::default(); n],
        });
    }

    /// Enables matching-quality sampling every `period` cycles (telemetry
    /// opt-in; see [`MatchSampler`]).
    pub fn enable_match_sampling(&mut self, period: u64) {
        assert!(period > 0, "matching sample period must be positive");
        self.match_sampler = Some(MatchSampler {
            period,
            granted: 0,
            max: 0,
            req: BitMatrix::new(self.ports, self.ports),
        });
    }

    /// Ports on this router.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// VCs per port.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Buffer occupancy (flits) in input VC `(port, vc)`.
    pub fn input_occupancy(&self, port: usize, vc: usize) -> usize {
        self.in_buf[port * self.vcs + vc].len()
    }

    /// Downstream occupancy estimate for UGAL: credits consumed across the
    /// VCs of `(msg_class, rc)` at `out_port`.
    pub fn output_occupancy(&self, out_port: usize, msg_class: usize, rc: usize) -> usize {
        let base = self.cfg.spec.class_base(msg_class, rc);
        (base..base + self.cfg.spec.vcs_per_class())
            .map(|v| self.cfg.buf_depth - self.out_credits[out_port * self.vcs + v] as usize)
            .sum()
    }

    /// Credits currently available at output VC `(port, vc)` — free buffer
    /// slots in the downstream input VC.
    pub fn output_credits(&self, port: usize, vc: usize) -> usize {
        self.out_credits[port * self.vcs + vc] as usize
    }

    /// Accepts a flit delivered by a link into input VC `(port, vc)` at
    /// cycle `now` (the arrival cycle feeds the packet ledger's hop spans;
    /// without the ledger it is unused).
    pub fn accept_flit(&mut self, port: usize, vc: usize, flit: Flit, now: u64) {
        let idx = port * self.vcs + vc;
        assert!(
            self.in_buf[idx].len() < self.cfg.buf_depth,
            "router {} input ({port},{vc}) overflow — credit protocol violated",
            self.id
        );
        if flit.head {
            if let Some(an) = &mut self.anatomy {
                an.arrivals[idx].push_back(now);
            }
        }
        self.in_buf[idx].push_back(flit);
    }

    /// Accepts a credit for output VC `(port, vc)`.
    pub fn accept_credit(&mut self, port: usize, vc: usize) {
        let c = &mut self.out_credits[port * self.vcs + vc];
        *c += 1;
        assert!(
            *c as usize <= self.cfg.buf_depth,
            "router {} credit overflow at ({port},{vc})",
            self.id
        );
    }

    /// Runs one cycle without tracing (the common fast path).
    pub fn step(&mut self, topo: &Topology, now: u64) -> RouterOutputs {
        self.step_profiled(topo, now, &mut NopSink, &mut NopProfiler)
    }

    /// Runs one cycle, reporting pipeline steps to `sink`; with
    /// [`NopSink`] the instrumentation compiles away.
    pub fn step_traced<S: TraceSink>(
        &mut self,
        topo: &Topology,
        now: u64,
        sink: &mut S,
    ) -> RouterOutputs {
        self.step_profiled(topo, now, sink, &mut NopProfiler)
    }

    /// Runs one cycle: switch traversal for last cycle's grants, then VC
    /// allocation and speculative switch allocation in parallel (stage 1
    /// for the flits still queued). Every pipeline step is reported to
    /// `sink`, and wall time per pipeline phase to `prof`; with
    /// [`NopSink`] / [`NopProfiler`] the instrumentation (including every
    /// clock read) compiles away.
    pub fn step_profiled<S: TraceSink, P: PhaseProfiler>(
        &mut self,
        topo: &Topology,
        now: u64,
        sink: &mut S,
        prof: &mut P,
    ) -> RouterOutputs {
        let mut out = RouterOutputs::default();
        self.step_into(topo, now, &mut out, sink, prof);
        out
    }

    /// Core of one router cycle, writing this cycle's link flits and
    /// upstream credits into a caller-owned buffer (cleared first). All
    /// intermediate state lives in the router's scratch arena, so in steady
    /// state a step performs no heap allocation — the property the
    /// `step_cycle` microbenchmark tracks. The two-phase engines call this
    /// directly: it only mutates this router (and `out`), reading nothing
    /// from other routers, which is what makes the compute phase safe to run
    /// for all routers in parallel before any output is committed.
    pub fn step_into<S: TraceSink, P: PhaseProfiler>(
        &mut self,
        topo: &Topology,
        now: u64,
        out: &mut RouterOutputs,
        sink: &mut S,
        prof: &mut P,
    ) {
        if self.test_panic_at == Some(now) {
            panic!("injected router panic (router {} cycle {now})", self.id);
        }
        out.clear();
        self.flush_skipped();
        let v = self.vcs;
        let n = self.ports * v;
        let id = self.id as u32;
        let ev = move |kind, port: usize, vc: usize, f: &Flit| FlitEvent {
            cycle: now,
            kind,
            router: id,
            port: port as u16,
            vc: vc as u16,
            packet_id: f.packet_id,
            flit_index: f.flit_index as u32,
        };
        macro_rules! trace {
            ($kind:expr, $port:expr, $vc:expr, $flit:expr) => {
                if S::ACTIVE {
                    sink.record(ev($kind, $port, $vc, $flit));
                }
            };
        }

        // Input VCs that pushed a flit into the switch this cycle (for
        // stall attribution).
        self.scratch.moved.clear();

        // ---- Stage 2: switch traversal of last cycle's grants ----------
        let st_timer = P::ACTIVE.then(Instant::now);
        let mut route_nanos = 0u64;
        let mut route_events = 0u64;
        // Swap (not take) so both grant buffers keep their capacity.
        std::mem::swap(&mut self.st_stage, &mut self.scratch.st_prev);
        let st_flits = self.scratch.st_prev.len() as u64;
        for &(in_flat, out_port) in &self.scratch.st_prev {
            let Some(out_flat) = self.in_out_vc[in_flat] else {
                unreachable!("ST without an output VC")
            };
            debug_assert_eq!(out_flat / v, out_port);
            let Some(mut flit) = self.in_buf[in_flat].pop_front() else {
                unreachable!("ST grant with empty buffer")
            };
            assert!(
                self.out_credits[out_flat] > 0,
                "ST without downstream credit"
            );
            self.out_credits[out_flat] -= 1;
            out.credits.push((in_flat / v, in_flat % v));
            if flit.tail {
                self.out_owner[out_flat] = None;
                self.free_out.set(out_flat / v, out_flat % v, true);
                self.in_out_vc[in_flat] = None;
            }
            self.scratch.moved.set(in_flat, true);
            self.obs.out_flits[out_port] += 1;
            if flit.head {
                if let Some(an) = &mut self.anatomy {
                    // Close this head's hop ledger. The departure cycle
                    // itself is switch traversal (`+ 1`); cycles the head
                    // spent buffered behind an earlier packet were never
                    // classified (only the VC front is) and are
                    // head-of-line blocking — time waiting to even request
                    // an output VC — so the residual folds into `vca`.
                    let arrive = an.arrivals[in_flat].pop_front().unwrap_or(now);
                    let acc = std::mem::take(&mut an.acc[in_flat]);
                    let counted = acc.vca + acc.sa + acc.credit + acc.active + 1;
                    let span = now - arrive + 1;
                    debug_assert!(
                        counted <= span,
                        "router {}: hop ledger overcounted ({counted} > {span})",
                        self.id
                    );
                    out.hops.push(HopRecord {
                        packet_id: flit.packet_id,
                        router: id,
                        in_port: (in_flat / v) as u16,
                        in_vc: (in_flat % v) as u16,
                        arrive,
                        depart: now,
                        vca: acc.vca + (span - counted),
                        sa: acc.sa,
                        credit: acc.credit,
                        active: acc.active + 1,
                    });
                }
            }
            // Lookahead routing for the next router (head flits on network
            // links only; ejected flits need no further routing).
            if flit.head {
                if let Some(link) = topo.link(self.id, out_port) {
                    let route_timer = P::ACTIVE.then(Instant::now);
                    let (la, rs) = route_at(
                        topo,
                        self.cfg.routing,
                        link.to_router,
                        flit.dest,
                        flit.route_state,
                    );
                    if let Some(t) = route_timer {
                        route_nanos += t.elapsed().as_nanos() as u64;
                        route_events += 1;
                    }
                    flit.lookahead = la;
                    flit.route_state = rs;
                    if S::ACTIVE {
                        sink.record(FlitEvent {
                            router: link.to_router as u32,
                            ..ev(FlitEventKind::Route, la.out_port, 0, &flit)
                        });
                    }
                }
            }
            trace!(
                FlitEventKind::SwitchTraversal,
                out_port,
                out_flat % v,
                &flit
            );
            out.flits.push(OutgoingFlit {
                port: out_port,
                vc: out_flat % v,
                flit,
            });
        }
        self.scratch.st_prev.clear();
        if let Some(t) = st_timer {
            // Lookahead route computation happens *during* traversal, so
            // attribute its share separately and the remainder to ST.
            let total = t.elapsed().as_nanos() as u64;
            prof.record(Phase::Route, route_nanos, route_events);
            prof.record(
                Phase::Traversal,
                total.saturating_sub(route_nanos),
                st_flits,
            );
        }

        // ---- Stage 1a: VC allocation ------------------------------------
        let va_timer = P::ACTIVE.then(Instant::now);
        for slot in self.scratch.vca_reqs.iter_mut() {
            if let Some(r) = slot.take() {
                self.scratch.spare_reqs.push(r);
            }
        }
        let mut any_vca = false;
        for in_flat in 0..n {
            if self.in_out_vc[in_flat].is_some() {
                continue;
            }
            if let Some(f) = self.in_buf[in_flat].front() {
                debug_assert!(
                    f.head,
                    "router {}: body flit at head of VC without output VC",
                    self.id
                );
                let mut req = self.scratch.spare_reqs.pop().unwrap_or_else(|| VcRequest {
                    out_port: 0,
                    classes: Vec::new(),
                });
                req.out_port = f.lookahead.out_port;
                req.classes.clear();
                req.classes.push(f.lookahead.resource_class);
                self.scratch.vca_reqs[in_flat] = Some(req);
                any_vca = true;
                self.stats.vca_requests += 1;
                trace!(FlitEventKind::VcaRequest, in_flat / v, in_flat % v, f);
            }
        }
        self.scratch.va_winner.clear();
        if any_vca {
            self.vca.allocate_into(
                &self.scratch.vca_reqs,
                &self.free_out,
                &mut self.scratch.vca_grants,
            );
            debug_assert!(noc_core::validate_vc_grants(
                &self.cfg.spec,
                &self.scratch.vca_reqs,
                &self.free_out,
                &self.scratch.vca_grants
            )
            .is_ok());
            for in_flat in 0..n {
                if let Some(OutVc { port, vc }) = self.scratch.vca_grants[in_flat] {
                    let out_flat = port * v + vc;
                    self.in_out_vc[in_flat] = Some(out_flat);
                    self.out_owner[out_flat] = Some(in_flat as u32);
                    self.free_out.set(port, vc, false);
                    self.scratch.va_winner.set(in_flat, true);
                    self.stats.vca_grants += 1;
                    if S::ACTIVE {
                        if let Some(f) = self.in_buf[in_flat].front() {
                            trace!(FlitEventKind::VcaGrant, in_flat / v, in_flat % v, f);
                        }
                    }
                }
            }
        }

        if let Some(t) = va_timer {
            let reqs = self.scratch.vca_reqs.iter().filter(|r| r.is_some()).count() as u64;
            prof.record(Phase::VcAlloc, t.elapsed().as_nanos() as u64, reqs);
        }

        // ---- Stage 1b: switch allocation --------------------------------
        let sa_timer = P::ACTIVE.then(Instant::now);
        self.scratch.nonspec.clear();
        self.scratch.spec.clear();
        let mut any_req = false;
        // Stall attribution inputs: why each input VC did (or could) bid.
        self.scratch.credit_blocked.clear();
        self.scratch.bid.clear();
        self.scratch.spec_bid.clear();
        for in_flat in 0..n {
            if self.in_buf[in_flat].is_empty() {
                continue;
            }
            match self.in_out_vc[in_flat] {
                Some(out_flat) if !self.scratch.va_winner.get(in_flat) => {
                    // Established packet: non-speculative request, gated on
                    // credit availability.
                    if self.out_credits[out_flat] > 0 {
                        self.scratch
                            .nonspec
                            .request(in_flat / v, in_flat % v, out_flat / v);
                        any_req = true;
                        self.scratch.bid.set(in_flat, true);
                        if S::ACTIVE {
                            if let Some(f) = self.in_buf[in_flat].front() {
                                trace!(FlitEventKind::SaRequest, in_flat / v, in_flat % v, f);
                            }
                        }
                    } else {
                        self.scratch.credit_blocked.set(in_flat, true);
                    }
                }
                _ => {
                    // Head flit performing (or having just performed) VC
                    // allocation this cycle: speculative request, issued in
                    // parallel with VA so it cannot depend on its outcome.
                    if self.cfg.spec_mode != SpecMode::NonSpeculative {
                        if let Some(f) = self.in_buf[in_flat].front() {
                            if f.head || self.scratch.va_winner.get(in_flat) {
                                self.scratch.spec.request(
                                    in_flat / v,
                                    in_flat % v,
                                    f.lookahead.out_port,
                                );
                                any_req = true;
                                self.scratch.spec_bid.set(in_flat, true);
                                self.stats.spec_requests += 1;
                                trace!(FlitEventKind::SaSpecRequest, in_flat / v, in_flat % v, f);
                            }
                        }
                    }
                }
            }
        }
        self.scratch.granted.clear();
        if any_req {
            self.sa.allocate_into(
                &self.scratch.nonspec,
                &self.scratch.spec,
                &mut self.scratch.sa_result,
            );
            let res = &self.scratch.sa_result;
            self.stats.spec_masked += res.masked.len() as u64;
            if S::ACTIVE {
                for g in &res.masked {
                    let in_flat = g.in_port * v + g.vc;
                    if let Some(f) = self.in_buf[in_flat].front() {
                        trace!(FlitEventKind::SaSpecMasked, g.in_port, g.vc, f);
                    }
                }
            }
            for g in &res.nonspec {
                self.stats.nonspec_grants += 1;
                let in_flat = g.in_port * v + g.vc;
                self.scratch.granted.set(in_flat, true);
                self.st_stage.push((in_flat, g.out_port));
                if S::ACTIVE {
                    if let Some(f) = self.in_buf[in_flat].front() {
                        trace!(FlitEventKind::SaGrant, g.in_port, g.vc, f);
                    }
                }
            }
            for g in &res.spec {
                let in_flat = g.in_port * v + g.vc;
                // Validate: the VC must have won VC allocation this very
                // cycle for the same output port, with a credit available.
                let valid = self.scratch.va_winner.get(in_flat)
                    && self.in_out_vc[in_flat]
                        .is_some_and(|of| of / v == g.out_port && self.out_credits[of] > 0);
                let kind = if valid {
                    self.stats.spec_grants += 1;
                    self.scratch.granted.set(in_flat, true);
                    self.st_stage.push((in_flat, g.out_port));
                    FlitEventKind::SaSpecGrant
                } else {
                    self.stats.spec_invalid += 1;
                    FlitEventKind::SaSpecInvalid
                };
                if S::ACTIVE {
                    if let Some(f) = self.in_buf[in_flat].front() {
                        trace!(kind, g.in_port, g.vc, f);
                    }
                }
            }
        }
        if let Some(t) = sa_timer {
            let reqs = (self.scratch.bid.count_ones() + self.scratch.spec_bid.count_ones()) as u64;
            prof.record(Phase::SwAlloc, t.elapsed().as_nanos() as u64, reqs);
        }

        // ---- Matching-quality sample (opt-in telemetry) -----------------
        // Runs after stage 1b so `st_stage` holds exactly this cycle's
        // grants. Kept outside the `sa_timer` scope so the profiler's
        // switch-allocation phase is not polluted by the exact-matching
        // search.
        if let Some(ms) = &mut self.match_sampler {
            if any_req && now.is_multiple_of(ms.period) {
                ms.req.clear();
                for in_flat in 0..n {
                    let (p, vc) = (in_flat / v, in_flat % v);
                    if let Some(o) = self.scratch.nonspec.get(p, vc) {
                        ms.req.set(p, o, true);
                    }
                    if let Some(o) = self.scratch.spec.get(p, vc) {
                        ms.req.set(p, o, true);
                    }
                }
                ms.granted += self.st_stage.len() as u64;
                ms.max += noc_core::max_matching(&ms.req) as u64;
            }
        }

        // ---- Stall-cause attribution ------------------------------------
        // Each input VC lands in exactly one bucket per cycle. A VC that
        // pushed a flit into the switch, or just won the switch for next
        // cycle, is "active"; otherwise the blocker is whichever stage
        // refused it this cycle.
        for in_flat in 0..n {
            let s = &mut self.obs.vc[in_flat];
            if self.scratch.moved.get(in_flat) || self.scratch.granted.get(in_flat) {
                s.active += 1;
            } else if self.in_buf[in_flat].is_empty() {
                s.empty += 1;
            } else if self.scratch.credit_blocked.get(in_flat) {
                s.credit_stall += 1;
            } else if self.scratch.bid.get(in_flat)
                || (self.scratch.spec_bid.get(in_flat) && self.scratch.va_winner.get(in_flat))
            {
                // Bid for the switch with all resources in hand, lost
                // arbitration (or, for a fresh VA winner, lost / was masked
                // on the speculative path).
                s.sa_stall += 1;
            } else {
                // Still waiting for an output VC.
                s.vca_stall += 1;
            }
        }

        // ---- Packet-ledger stamping (opt-in anatomy) --------------------
        // Mirrors the attribution above, but charges the cycle to the hop
        // accumulator of the head flit at the VC front. Every scratch flag
        // describes the *post-traversal* front (ST ran first), so `moved`
        // is deliberately not consulted: a departing head was charged its
        // final cycle at emission time, and whichever head now fronts the
        // VC earns this cycle's verdict instead.
        if let Some(an) = &mut self.anatomy {
            for in_flat in 0..n {
                let Some(f) = self.in_buf[in_flat].front() else {
                    continue;
                };
                if !f.head {
                    continue;
                }
                let a = &mut an.acc[in_flat];
                if self.scratch.granted.get(in_flat) {
                    a.active += 1;
                } else if self.scratch.credit_blocked.get(in_flat) {
                    a.credit += 1;
                } else if self.scratch.bid.get(in_flat)
                    || (self.scratch.spec_bid.get(in_flat) && self.scratch.va_winner.get(in_flat))
                {
                    a.sa += 1;
                } else {
                    a.vca += 1;
                }
            }
        }
    }

    /// Records that the active-set engine skipped this router for a cycle.
    /// A skippable router is fully idle, so the only observable effect of
    /// the skipped step — one `empty` stall count per input VC — is owed to
    /// `obs` and settled lazily by [`Router::flush_skipped`].
    pub fn note_skipped(&mut self) {
        debug_assert!(self.is_idle(), "active-set engine skipped a busy router");
        self.skipped_cycles += 1;
    }

    /// Settles stall-attribution debt from skipped cycles. Called at the
    /// start of every real step and before any observability read-out.
    pub fn flush_skipped(&mut self) {
        if self.skipped_cycles > 0 {
            for s in self.obs.vc.iter_mut() {
                s.empty += self.skipped_cycles;
            }
            self.skipped_cycles = 0;
        }
    }

    /// Cumulative telemetry counters for the flight recorder. Reads only —
    /// pending skipped-cycle debt is folded in arithmetically rather than
    /// flushed, so sampling never perturbs engine-equivalence state and the
    /// active-set engine reports byte-identical telemetry to the others.
    pub fn telemetry_counters(&self) -> RouterCounters {
        let mut active = 0u64;
        let mut credit_stall = 0u64;
        let mut vca_stall = 0u64;
        let mut sa_stall = 0u64;
        let mut empty = 0u64;
        for s in &self.obs.vc {
            active += s.active;
            credit_stall += s.credit_stall;
            vca_stall += s.vca_stall;
            sa_stall += s.sa_stall;
            empty += s.empty;
        }
        // Skipped cycles are owed one `empty` count per input VC.
        empty += self.skipped_cycles * self.obs.vc.len() as u64;
        let (match_granted, match_max) = match &self.match_sampler {
            Some(ms) => (ms.granted, ms.max),
            None => (0, 0),
        };
        RouterCounters {
            out_flits: self.obs.total_out_flits(),
            occupancy: self.buffered_flits() as u32,
            busy_vcs: self.busy_vcs() as u32,
            active,
            credit_stall,
            vca_stall,
            sa_stall,
            empty,
            match_granted,
            match_max,
        }
    }

    /// Runs the router-local runtime invariants against the post-step
    /// state: switch-grant matching legality (at most one grant per input
    /// VC and per output port, each backed by an output VC, a downstream
    /// credit and a buffered flit), the input-VC/output-VC ownership
    /// bijection, buffer/credit bounds, and the no-flit-without-VC rule.
    /// With a `!ACTIVE` checker this compiles to nothing.
    pub fn check_invariants<K: InvariantChecker>(&self, chk: &mut K) {
        if !K::ACTIVE {
            return;
        }
        let v = self.vcs;
        let n = self.ports * v;
        let depth = self.cfg.buf_depth;
        let mut checks = 0u64;

        // Matching legality over the grants traversing next cycle. `Bits`
        // rather than `Vec<bool>`: this runs per cycle whenever the checker
        // is active (including debug-assertion builds) and must not
        // allocate in steady state.
        let mut in_used = noc_arbiter::Bits::new(n);
        let mut out_used = noc_arbiter::Bits::new(self.ports);
        for &(in_flat, out_port) in &self.st_stage {
            checks += 5;
            if in_used.get(in_flat) {
                chk.violation(format!(
                    "router {}: two switch grants for input VC ({}, {})",
                    self.id,
                    in_flat / v,
                    in_flat % v
                ));
            }
            in_used.set(in_flat, true);
            if out_used.get(out_port) {
                chk.violation(format!(
                    "router {}: two switch grants for output port {out_port}",
                    self.id
                ));
            }
            out_used.set(out_port, true);
            match self.in_out_vc[in_flat] {
                None => chk.violation(format!(
                    "router {}: switch grant without an output VC at input ({}, {})",
                    self.id,
                    in_flat / v,
                    in_flat % v
                )),
                Some(of) => {
                    if of / v != out_port {
                        chk.violation(format!(
                            "router {}: switch grant to port {out_port} but input ({}, {}) \
                             holds output VC ({}, {})",
                            self.id,
                            in_flat / v,
                            in_flat % v,
                            of / v,
                            of % v
                        ));
                    }
                    if self.out_credits[of] == 0 {
                        chk.violation(format!(
                            "router {}: switch grant for input ({}, {}) with zero \
                             downstream credits",
                            self.id,
                            in_flat / v,
                            in_flat % v
                        ));
                    }
                    if self.out_owner[of] != Some(in_flat as u32) {
                        chk.violation(format!(
                            "router {}: granted input ({}, {}) does not own its output VC",
                            self.id,
                            in_flat / v,
                            in_flat % v
                        ));
                    }
                }
            }
            if self.in_buf[in_flat].is_empty() {
                chk.violation(format!(
                    "router {}: switch grant with empty buffer at input ({}, {})",
                    self.id,
                    in_flat / v,
                    in_flat % v
                ));
            }
        }

        // Ownership bijection, buffer bounds, no-flit-without-VC.
        for in_flat in 0..n {
            checks += 2;
            match self.in_out_vc[in_flat] {
                Some(of) => {
                    if self.out_owner[of] != Some(in_flat as u32) {
                        chk.violation(format!(
                            "router {}: input ({}, {}) holds output VC ({}, {}) it \
                             does not own",
                            self.id,
                            in_flat / v,
                            in_flat % v,
                            of / v,
                            of % v
                        ));
                    }
                }
                None => {
                    if self.in_buf[in_flat].front().is_some_and(|f| !f.head) {
                        chk.violation(format!(
                            "router {}: body flit at head of input ({}, {}) without \
                             an output VC",
                            self.id,
                            in_flat / v,
                            in_flat % v
                        ));
                    }
                }
            }
            if self.in_buf[in_flat].len() > depth {
                chk.violation(format!(
                    "router {}: input ({}, {}) holds {} flits, buffer depth {}",
                    self.id,
                    in_flat / v,
                    in_flat % v,
                    self.in_buf[in_flat].len(),
                    depth
                ));
            }
        }
        for out_flat in 0..n {
            checks += 3;
            if self.out_credits[out_flat] as usize > depth {
                chk.violation(format!(
                    "router {}: output VC ({}, {}) has {} credits, buffer depth {}",
                    self.id,
                    out_flat / v,
                    out_flat % v,
                    self.out_credits[out_flat],
                    depth
                ));
            }
            if let Some(owner) = self.out_owner[out_flat] {
                if self.in_out_vc.get(owner as usize).copied().flatten() != Some(out_flat) {
                    chk.violation(format!(
                        "router {}: output VC ({}, {}) owned by input {} which does \
                         not hold it",
                        self.id,
                        out_flat / v,
                        out_flat % v,
                        owner
                    ));
                }
            }
            // The incrementally maintained free map must track ownership
            // exactly — it is what the VC-allocation kernels consume.
            if self.free_out.get(out_flat / v, out_flat % v) != self.out_owner[out_flat].is_none() {
                chk.violation(format!(
                    "router {}: free map out of sync at output VC ({}, {})",
                    self.id,
                    out_flat / v,
                    out_flat % v
                ));
            }
        }
        chk.add_checks(checks);
    }

    /// Flits currently buffered across all input VCs.
    pub fn buffered_flits(&self) -> usize {
        self.in_buf.iter().map(VecDeque::len).sum()
    }

    /// Input VCs currently holding at least one flit.
    pub fn busy_vcs(&self) -> usize {
        self.in_buf.iter().filter(|b| !b.is_empty()).count()
    }

    /// True if the router holds no flits and no in-flight grants (used by
    /// drain checks in tests).
    pub fn is_idle(&self) -> bool {
        self.st_stage.is_empty() && self.in_buf.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Lookahead, PacketKind, RouteState};
    use crate::topology::TopologyKind;

    fn mesh_router(spec_mode: SpecMode) -> (Router, Topology) {
        let topo = TopologyKind::Mesh8x8.build();
        let spec = VcAllocSpec::mesh(1);
        let cfg = RouterConfig {
            spec_mode,
            ..RouterConfig::paper_default(spec, RoutingKind::DimensionOrder)
        };
        // Router 27 — interior router with all links present.
        (Router::new(27, cfg), topo)
    }

    fn head_flit(dest: usize, out_port: usize) -> Flit {
        Flit {
            packet_id: 1,
            flit_index: 0,
            head: true,
            tail: true,
            kind: PacketKind::ReadRequest,
            src: 0,
            dest,
            birth: 0,
            injected: 0,
            lookahead: Lookahead {
                out_port,
                resource_class: 0,
            },
            route_state: RouteState::default(),
        }
    }

    #[test]
    fn speculative_single_flit_cuts_through_in_two_cycles() {
        let (mut r, topo) = mesh_router(SpecMode::Pessimistic);
        // Single-flit packet heading out port 1.
        r.accept_flit(0, 0, head_flit(63, 1), 0);
        let out = r.step(&topo, 0);
        assert!(out.flits.is_empty(), "flit cannot leave in its VA cycle");
        assert_eq!(r.stats.spec_grants, 1, "speculation should have won");
        let out = r.step(&topo, 1);
        assert_eq!(out.flits.len(), 1, "ST in the second cycle");
        assert_eq!(out.flits[0].port, 1);
        assert_eq!(out.credits, vec![(0, 0)]);
        assert!(r.is_idle());
    }

    #[test]
    fn nonspeculative_head_takes_three_cycles() {
        let (mut r, topo) = mesh_router(SpecMode::NonSpeculative);
        r.accept_flit(0, 0, head_flit(63, 1), 0);
        let out = r.step(&topo, 0); // VA
        assert!(out.flits.is_empty());
        let out = r.step(&topo, 1); // SA
        assert!(out.flits.is_empty());
        let out = r.step(&topo, 2); // ST
        assert_eq!(out.flits.len(), 1);
    }

    #[test]
    fn lookahead_updated_on_departure() {
        let (mut r, topo) = mesh_router(SpecMode::Pessimistic);
        // Dest terminal 31 = router 31 (x=7,y=3); router 27 is (3,3): DOR
        // goes +x (port 1); at router 28 the lookahead should again be +x.
        r.accept_flit(0, 0, head_flit(31, 1), 0);
        r.step(&topo, 0);
        let out = r.step(&topo, 1);
        let f = &out.flits[0].flit;
        assert_eq!(f.lookahead.out_port, 1);
    }

    #[test]
    fn credits_bound_inflight_flits() {
        let (mut r, topo) = mesh_router(SpecMode::Pessimistic);
        // 12 single-flit packets on the same input VC, all to out port 1,
        // with no credits ever returned: only buf_depth(8) flits may leave.
        for i in 0..8 {
            let mut f = head_flit(63, 1);
            f.packet_id = i;
            r.accept_flit(0, 0, f, 0);
        }
        let mut sent = 0;
        for t in 0..40 {
            sent += r.step(&topo, t).flits.len();
        }
        assert_eq!(sent, 8, "exactly buf_depth flits without credit return");
        // Returning one credit frees one more slot... but the buffer is
        // empty now; push more flits and watch them flow after credits.
        for i in 0..2 {
            let mut f = head_flit(63, 1);
            f.packet_id = 100 + i;
            r.accept_flit(0, 0, f, 40);
        }
        for t in 40..50 {
            sent += r.step(&topo, t).flits.len();
        }
        assert_eq!(sent, 8, "still blocked with zero credits");
        r.accept_credit(1, 0);
        r.accept_credit(1, 0);
        for t in 50..60 {
            sent += r.step(&topo, t).flits.len();
        }
        assert_eq!(sent, 10);
    }

    #[test]
    fn multi_flit_packet_holds_vc_until_tail() {
        let (mut r, topo) = mesh_router(SpecMode::Pessimistic);
        // 5-flit write request.
        for i in 0..5 {
            let mut f = head_flit(63, 1);
            f.kind = PacketKind::WriteRequest;
            f.flit_index = i;
            f.head = i == 0;
            f.tail = i == 4;
            r.accept_flit(0, 0, f, 0);
        }
        let mut sent = 0;
        let mut vc_freed_before_tail = false;
        for t in 0..12 {
            let out = r.step(&topo, t);
            sent += out.flits.len();
            if sent > 0 && sent < 5 && r.out_owner[r.vcs].is_none() {
                vc_freed_before_tail = true;
            }
        }
        assert_eq!(sent, 5);
        assert!(!vc_freed_before_tail, "output VC released early");
        assert!(r.out_owner[r.vcs].is_none(), "VC not released after tail");
    }

    #[test]
    fn two_inputs_same_output_serialize() {
        let (mut r, topo) = mesh_router(SpecMode::Pessimistic);
        let mut f0 = head_flit(63, 1);
        f0.packet_id = 1;
        let mut f1 = head_flit(63, 1);
        f1.packet_id = 2;
        // Different input ports, same output port; mesh(1) has V=2 VCs
        // (one per message class), both packets are requests -> they
        // compete for the single request-class output VC.
        r.accept_flit(2, 0, f0, 0);
        r.accept_flit(3, 0, f1, 0);
        let mut sent = Vec::new();
        for t in 0..8 {
            for of in r.step(&topo, t).flits {
                sent.push((t, of.flit.packet_id, of.vc));
            }
        }
        assert_eq!(sent.len(), 2);
        // Same output VC -> strictly serialized.
        assert_eq!(sent[0].2, sent[1].2);
        assert!(sent[1].0 > sent[0].0);
    }

    #[test]
    fn speculation_accounting_identity_for_lone_request() {
        // A lone speculative request wins its arbitration, so it must land
        // in exactly one outcome bucket and the accounting identity
        // `spec_grants + spec_masked + spec_invalid == spec_requests`
        // holds with equality — in both speculation schemes.
        for mode in [SpecMode::Pessimistic, SpecMode::Conventional] {
            let (mut r, topo) = mesh_router(mode);
            r.accept_flit(0, 0, head_flit(63, 1), 0);
            r.step(&topo, 0);
            let s = r.stats;
            assert_eq!(s.spec_requests, 1, "{mode:?}");
            assert_eq!(s.spec_grants, 1, "{mode:?}: lone spec request must win");
            assert_eq!(s.spec_masked, 0, "{mode:?}");
            assert_eq!(s.spec_invalid, 0, "{mode:?}");
            assert_eq!(
                s.spec_grants + s.spec_masked + s.spec_invalid,
                s.spec_requests,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn speculation_masking_is_counted_exactly() {
        // An established packet's non-speculative request masks a fresh
        // head's speculative grant for the same output port. Every spec
        // request in this scenario wins its own arbitration, so the
        // accounting identity holds with equality and the masked grant is
        // classified as masked, not invalid.
        for mode in [SpecMode::Pessimistic, SpecMode::Conventional] {
            let (mut r, topo) = mesh_router(mode);
            // 2-flit packet on port 2 establishes a stream to out port 1.
            for i in 0..2 {
                let mut f = head_flit(63, 1);
                f.kind = PacketKind::WriteRequest;
                f.flit_index = i;
                f.head = i == 0;
                f.tail = i == 1;
                r.accept_flit(2, 0, f, 0);
            }
            r.step(&topo, 0); // head wins VA + speculative SA
            assert_eq!(r.stats.spec_requests, 1, "{mode:?}");
            assert_eq!(r.stats.spec_grants, 1, "{mode:?}");
            // Fresh head on port 3 contends with the body flit's
            // non-speculative request for out port 1 next cycle.
            let mut g = head_flit(63, 1);
            g.packet_id = 7;
            r.accept_flit(3, 0, g, 1);
            r.step(&topo, 1);
            let s = r.stats;
            assert_eq!(s.spec_requests, 2, "{mode:?}");
            assert_eq!(s.nonspec_grants, 1, "{mode:?}: body wins non-speculatively");
            assert_eq!(s.spec_masked, 1, "{mode:?}: contending spec grant masked");
            assert_eq!(s.spec_invalid, 0, "{mode:?}");
            assert_eq!(
                s.spec_grants + s.spec_masked + s.spec_invalid,
                s.spec_requests,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn speculation_outcomes_never_exceed_requests_under_contention() {
        // Two heads racing for the same output VC: one spec request loses
        // switch arbitration outright (no outcome bucket), so the sum of
        // outcomes stays strictly below the request count while the run
        // still delivers both flits.
        for mode in [SpecMode::Pessimistic, SpecMode::Conventional] {
            let (mut r, topo) = mesh_router(mode);
            let mut f0 = head_flit(63, 1);
            f0.packet_id = 1;
            let mut f1 = head_flit(63, 1);
            f1.packet_id = 2;
            r.accept_flit(2, 0, f0, 0);
            r.accept_flit(3, 0, f1, 0);
            let mut sent = 0;
            for t in 0..10 {
                sent += r.step(&topo, t).flits.len();
            }
            assert_eq!(sent, 2, "{mode:?}");
            let s = r.stats;
            assert!(s.spec_requests >= 2, "{mode:?}: {s:?}");
            assert!(
                s.spec_grants + s.spec_masked + s.spec_invalid <= s.spec_requests,
                "{mode:?}: outcome buckets exceed requests: {s:?}"
            );
            assert!(s.spec_grants >= 1, "{mode:?}: someone must cut through");
        }
    }

    #[test]
    fn nonspeculative_mode_issues_no_spec_requests() {
        let (mut r, topo) = mesh_router(SpecMode::NonSpeculative);
        r.accept_flit(0, 0, head_flit(63, 1), 0);
        for t in 0..6 {
            r.step(&topo, t);
        }
        let s = r.stats;
        assert_eq!(s.spec_requests, 0);
        assert_eq!(s.spec_grants + s.spec_masked + s.spec_invalid, 0);
        assert!(s.nonspec_grants >= 1);
    }

    #[test]
    fn stall_attribution_partitions_cycles() {
        let (mut r, topo) = mesh_router(SpecMode::Pessimistic);
        r.accept_flit(0, 0, head_flit(63, 1), 0);
        let total = 6u64;
        for t in 0..total {
            r.step(&topo, t);
        }
        for (idx, s) in r.obs.vc.iter().enumerate() {
            assert_eq!(s.cycles(), total, "vc slot {idx}");
        }
        // The lone flit's VC: VA+spec-SA cycle and ST cycle are active,
        // the remaining cycles empty.
        let s = &r.obs.vc[0];
        assert_eq!(s.active, 2, "{s:?}");
        assert_eq!(s.empty, total - 2, "{s:?}");
    }

    #[test]
    fn misspeculation_counted_when_vc_allocation_fails() {
        let (mut r, topo) = mesh_router(SpecMode::Pessimistic);
        // Block the request-class output VC at port 1 by a fake owner
        // (keeping the free map in sync, as every real ownership change
        // does).
        r.out_owner[r.vcs] = Some(99);
        r.free_out.set(1, 0, false);
        r.accept_flit(0, 0, head_flit(63, 1), 0);
        r.step(&topo, 0);
        assert_eq!(r.stats.vca_grants, 0);
        // The speculative request may have won the switch but must have
        // been discarded as invalid.
        assert_eq!(r.stats.spec_grants, 0);
        assert!(r.stats.spec_invalid + r.stats.spec_masked >= 1);
    }

    #[test]
    fn anatomy_hop_record_for_speculative_cutthrough() {
        // A lone head that wins VA and speculative SA in the same cycle
        // spends exactly two active cycles in the router: the grant cycle
        // and the traversal (pop) cycle.
        let (mut r, topo) = mesh_router(SpecMode::Pessimistic);
        r.enable_anatomy();
        r.accept_flit(0, 0, head_flit(63, 1), 0);
        assert!(r.step(&topo, 0).hops.is_empty());
        let out = r.step(&topo, 1);
        assert_eq!(out.hops.len(), 1);
        let h = out.hops[0];
        assert_eq!((h.arrive, h.depart), (0, 1));
        assert_eq!((h.vca, h.sa, h.credit, h.active), (0, 0, 0, 2));
        assert!(h.reconciles());
    }

    #[test]
    fn anatomy_charges_vca_wait_without_speculation() {
        // Without speculation the head burns one cycle in VC allocation
        // before it may even bid for the switch.
        let (mut r, topo) = mesh_router(SpecMode::NonSpeculative);
        r.enable_anatomy();
        r.accept_flit(0, 0, head_flit(63, 1), 0);
        let mut hops = Vec::new();
        for t in 0..4 {
            hops.extend(r.step(&topo, t).hops);
        }
        assert_eq!(hops.len(), 1);
        let h = hops[0];
        assert_eq!((h.vca, h.sa, h.credit, h.active), (1, 0, 0, 2));
        assert_eq!(h.span(), 3);
        assert!(h.reconciles());
    }

    #[test]
    fn anatomy_folds_head_of_line_wait_into_vca() {
        // Two single-flit packets queued on the same input VC: the second
        // head waits behind the first without ever being at the front, and
        // that residual must land in its vca bucket while the per-hop
        // identity still holds exactly.
        let (mut r, topo) = mesh_router(SpecMode::Pessimistic);
        r.enable_anatomy();
        for i in 0..2 {
            let mut f = head_flit(63, 1);
            f.packet_id = i;
            r.accept_flit(0, 0, f, 0);
        }
        let mut hops = Vec::new();
        for t in 0..6 {
            hops.extend(r.step(&topo, t).hops);
        }
        assert_eq!(hops.len(), 2);
        for h in &hops {
            assert!(h.reconciles(), "{h:?}");
        }
        assert_eq!(hops[0].packet_id, 0);
        assert!(
            hops[1].vca >= 1,
            "head-of-line wait must charge vca: {:?}",
            hops[1]
        );
    }
}
