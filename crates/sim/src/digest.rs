//! Content-addressed digests of simulation configurations.
//!
//! A sweep cache keys each simulated point by a digest of the fully
//! resolved [`SimConfig`] plus the run window, so results are reused
//! across sweeps (and across differently-ordered spec files) exactly when
//! the simulated work is identical. The digest is computed over the
//! canonical *field list* — `(key, value)` string pairs sorted by key —
//! rather than any in-memory layout, which makes it stable under struct
//! field reordering and under spec files that list the same point in a
//! different order.
//!
//! The simulation [`Engine`](crate::Engine) is deliberately **not** part
//! of a point's identity: all engines are proven cycle-identical, so a
//! result computed on one engine is valid for every other.

use crate::config::SimConfig;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Digests `(key, value)` pairs into a 32-hex-character content hash.
///
/// Pairs are sorted by key first, so callers may supply fields in any
/// order. Keys and values are framed with separator bytes that cannot
/// appear in the labels used here, so `("ab", "c")` and `("a", "bc")`
/// hash differently. Two FNV-1a passes with distinct initial states give
/// 128 bits — not cryptographic, but far beyond accidental-collision
/// range for the few thousand points a sweep holds.
pub fn digest_pairs(pairs: &[(String, String)]) -> String {
    let mut sorted: Vec<&(String, String)> = pairs.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut lo = FNV_OFFSET;
    let mut hi = fnv1a(FNV_OFFSET, b"noc-digest-hi");
    for (k, v) in sorted {
        for state in [&mut lo, &mut hi] {
            *state = fnv1a(*state, k.as_bytes());
            *state = fnv1a(*state, b"\x1f");
            *state = fnv1a(*state, v.as_bytes());
            *state = fnv1a(*state, b"\x1e");
        }
    }
    format!("{hi:016x}{lo:016x}")
}

impl SimConfig {
    /// The canonical field list identifying this configuration: every
    /// field that affects simulation output, as `(key, value)` strings.
    /// Values use the same labels the CLI and JSON reports use; floats
    /// use Rust's shortest-roundtrip formatting, so distinct rates never
    /// alias.
    pub fn canonical_fields(&self) -> Vec<(String, String)> {
        let own = |s: &str| s.to_string();
        let mut fields = vec![
            (own("topology"), own(self.topology.label())),
            (own("vcs_per_class"), self.vcs_per_class.to_string()),
            (own("buf_depth"), self.buf_depth.to_string()),
            (own("vca_kind"), own(self.vca_kind.label())),
            (own("vca_sparse"), self.vca_sparse.to_string()),
            (own("sa_kind"), self.sa_kind.label().to_string()),
            (own("spec_mode"), own(self.spec_mode.label())),
            (own("injection_rate"), format!("{}", self.injection_rate)),
            (own("burst"), self.burst.to_string()),
            (own("payload_flits"), self.payload_flits.to_string()),
            (own("pattern"), own(self.pattern.label())),
            (own("seed"), self.seed.to_string()),
        ];
        // Only an explicit override joins the identity: the derived
        // algorithm is a function of `topology`, already digested, and
        // appending it unconditionally would invalidate every existing
        // cached result for no semantic change.
        if let Some(kind) = self.routing_override {
            fields.push((own("routing"), own(kind.label())));
        }
        fields
    }

    /// Content digest of this configuration plus the run window and a
    /// schema-version tag. Bumping the schema string invalidates every
    /// cached result at once (used when the result format or simulator
    /// semantics change).
    pub fn digest(&self, warmup: u64, measure: u64, schema: &str) -> String {
        let mut fields = self.canonical_fields();
        fields.push(("warmup".to_string(), warmup.to_string()));
        fields.push(("measure".to_string(), measure.to_string()));
        fields.push(("schema".to_string(), schema.to_string()));
        digest_pairs(&fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    fn base() -> SimConfig {
        SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
    }

    #[test]
    fn digest_is_stable_under_field_reordering() {
        let mut fields = base().canonical_fields();
        let forward = digest_pairs(&fields);
        fields.reverse();
        assert_eq!(digest_pairs(&fields), forward);
        fields.swap(0, 3);
        assert_eq!(digest_pairs(&fields), forward);
    }

    #[test]
    fn digest_separates_every_field() {
        let d0 = base().digest(3_000, 6_000, "v1");
        let variants = [
            SimConfig {
                injection_rate: 0.11,
                ..base()
            },
            SimConfig { seed: 1, ..base() },
            SimConfig {
                buf_depth: 9,
                ..base()
            },
            SimConfig {
                payload_flits: 8,
                ..base()
            },
            SimConfig {
                topology: TopologyKind::Torus8x8,
                ..base()
            },
            SimConfig {
                pattern: crate::traffic::TrafficPattern::Tornado,
                ..base()
            },
        ];
        for v in variants {
            assert_ne!(v.digest(3_000, 6_000, "v1"), d0, "{v:?}");
        }
        assert_ne!(base().digest(3_001, 6_000, "v1"), d0);
        assert_ne!(base().digest(3_000, 6_001, "v1"), d0);
    }

    #[test]
    fn routing_override_separates_digests() {
        let torus = SimConfig {
            topology: TopologyKind::Torus8x8,
            ..base()
        };
        let fixture = SimConfig {
            routing_override: Some(crate::routing::RoutingKind::TorusNoDateline),
            ..torus.clone()
        };
        assert_ne!(
            fixture.digest(3_000, 6_000, "v1"),
            torus.digest(3_000, 6_000, "v1")
        );
        // No override leaves the canonical field list (and so every
        // previously cached digest) unchanged.
        assert_eq!(torus.canonical_fields().len(), 12);
        assert_eq!(fixture.canonical_fields().len(), 13);
    }

    #[test]
    fn schema_bump_invalidates_all_digests() {
        assert_ne!(
            base().digest(3_000, 6_000, "noc-sweep/v1"),
            base().digest(3_000, 6_000, "noc-sweep/v2")
        );
    }

    #[test]
    fn key_value_framing_prevents_concatenation_aliasing() {
        let a = vec![("ab".to_string(), "c".to_string())];
        let b = vec![("a".to_string(), "bc".to_string())];
        assert_ne!(digest_pairs(&a), digest_pairs(&b));
    }

    #[test]
    fn digest_is_pinned() {
        // A golden digest: any unintentional change to the canonical form
        // (field renames, float formatting, separator bytes) shows up as
        // a silent full-cache invalidation; this pin makes it loud.
        let d = base().digest(3_000, 6_000, "noc-sweep/v1");
        assert_eq!(d.len(), 32);
        assert!(d.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
