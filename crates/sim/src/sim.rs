//! Simulation drivers: single runs, latency-vs-injection-rate curves
//! (Figures 13/14) and saturation-rate extraction.

use crate::config::SimConfig;
use crate::network::Network;
use crate::router::RouterStats;
use crate::steady;
use noc_obs::{
    percentile_table_json, AnatomyCollector, FlightRecorder, HdrHistogram, JsonValue,
    MetricsRegistry, Profiler, RouterBreakdown, RouterObs, TelemetrySummary, TraceSink,
    WindowSnapshot, DEFAULT_QUANTILES,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Average latency beyond which a run is declared saturated.
pub const LATENCY_CAP: f64 = 400.0;

/// Result of one simulation run at a fixed injection rate.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Offered load, flits/cycle/terminal.
    pub offered: f64,
    /// Average packet latency over the measurement window (cycles); `NaN`
    /// if nothing was delivered.
    pub avg_latency: f64,
    /// Average request-packet latency.
    pub request_latency: f64,
    /// Average reply-packet latency.
    pub reply_latency: f64,
    /// Sample standard deviation of packet latency (cycles).
    pub latency_std_dev: f64,
    /// 99th-percentile packet latency, interpolated from the log-linear
    /// histogram (≤ ~3% relative error).
    pub latency_p99: f64,
    /// Accepted throughput, flits/cycle/terminal.
    pub throughput: f64,
    /// True if the network kept up with the offered load (latency under
    /// [`LATENCY_CAP`] and no unbounded source backlog).
    pub stable: bool,
    /// Half-width of the 95% confidence interval on `avg_latency` — from
    /// replicate means ([`run_sim_replicated`]) or batch means over the
    /// latency timeline ([`run_sim_auto`]); NaN for plain single runs,
    /// which carry no interval estimate.
    pub ci95: f64,
    /// Independent seeds aggregated into this result (1 for single runs).
    pub seeds: usize,
    /// Warmup cycle count chosen by MSER steady-state detection, when a
    /// driver detected it ([`run_sim_auto`] / [`run_sim_replicated`]);
    /// `None` when the warmup was fixed by the caller.
    pub warmup_detected: Option<u64>,
    /// Whole-run telemetry summary (per-window matching efficiency, flit
    /// motion and in-flight series), when the run had the flight recorder
    /// enabled; `None` otherwise.
    pub telemetry: Option<TelemetrySummary>,
    /// Full latency histogram over the measurement window (merged across
    /// replicates for replicated runs).
    pub hist: HdrHistogram,
    /// Aggregated router counters.
    pub router_stats: RouterStats,
    /// Per-router digests (throughput and worst-stalled port), in
    /// router-id order.
    pub routers: Vec<RouterBreakdown>,
}

impl SimResult {
    /// Highest per-router link throughput (flits/cycle); NaN without
    /// breakdown data.
    pub fn max_router_throughput(&self) -> f64 {
        self.routers
            .iter()
            .map(|r| r.throughput)
            .fold(f64::NAN, f64::max)
    }

    /// Lowest per-router link throughput (flits/cycle); NaN without
    /// breakdown data.
    pub fn min_router_throughput(&self) -> f64 {
        self.routers
            .iter()
            .map(|r| r.throughput)
            .fold(f64::NAN, f64::min)
    }

    /// The router with the worst-stalled input port, as
    /// `(router, port, stall fraction)`.
    pub fn worst_stall(&self) -> Option<(usize, usize, f64)> {
        self.routers
            .iter()
            .max_by(|a, b| a.worst_port_stall.total_cmp(&b.worst_port_stall))
            .map(|r| (r.router, r.worst_port, r.worst_port_stall))
    }

    /// Serializes the result (including the per-router breakdown) as one
    /// JSON object.
    pub fn to_json(&self) -> String {
        // JSON has no NaN/inf literals; map them to null.
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let s = &self.router_stats;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"offered\":{},\"avg_latency\":{},\"request_latency\":{},\"reply_latency\":{},\
             \"latency_std_dev\":{},\"latency_p99\":{},\"throughput\":{},\"stable\":{}",
            num(self.offered),
            num(self.avg_latency),
            num(self.request_latency),
            num(self.reply_latency),
            num(self.latency_std_dev),
            num(self.latency_p99),
            num(self.throughput),
            self.stable
        );
        let _ = write!(
            out,
            ",\"ci95\":{},\"seeds\":{},\"warmup_detected\":{}",
            num(self.ci95),
            self.seeds,
            self.warmup_detected
                .map_or_else(|| "null".to_string(), |w| w.to_string())
        );
        if let Some(t) = &self.telemetry {
            let _ = write!(out, ",\"telemetry\":{}", t.to_json());
        }
        let _ = write!(
            out,
            ",\"percentiles\":{}",
            percentile_table_json(&self.hist.percentile_table(&DEFAULT_QUANTILES))
        );
        let _ = write!(
            out,
            ",\"router_stats\":{{\"nonspec_grants\":{},\"spec_requests\":{},\"spec_grants\":{},\
             \"spec_masked\":{},\"spec_invalid\":{},\"vca_requests\":{},\"vca_grants\":{}}}",
            s.nonspec_grants,
            s.spec_requests,
            s.spec_grants,
            s.spec_masked,
            s.spec_invalid,
            s.vca_requests,
            s.vca_grants
        );
        if !self.routers.is_empty() {
            let _ = write!(
                out,
                ",\"max_router_throughput\":{},\"min_router_throughput\":{}",
                num(self.max_router_throughput()),
                num(self.min_router_throughput())
            );
            out.push_str(",\"routers\":[");
            for (i, r) in self.routers.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"router\":{},\"throughput\":{},\"worst_port\":{},\"worst_port_stall\":{}}}",
                    r.router,
                    num(r.throughput),
                    r.worst_port,
                    num(r.worst_port_stall)
                );
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// As [`SimResult::to_json`], extended with the raw histogram state so
    /// the result round-trips losslessly through [`SimResult::from_json`]
    /// (the cache-file format of the sweep orchestrator). The derived
    /// members of [`SimResult::to_json`] (`percentiles`, router throughput
    /// extremes) stay in place, so a full record is also a superset of the
    /// plain report.
    pub fn to_json_full(&self) -> String {
        let mut out = self.to_json();
        out.pop();
        let _ = write!(
            out,
            ",\"hist\":{{\"min\":{},\"max\":{},\"buckets\":[",
            self.hist
                .min()
                .map_or_else(|| "null".to_string(), |v| v.to_string()),
            self.hist
                .max()
                .map_or_else(|| "null".to_string(), |v| v.to_string()),
        );
        for (i, (lower, _, count)) in self.hist.iter_buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lower},{count}]");
        }
        out.push_str("]}}");
        out
    }

    /// Reconstructs a result from [`SimResult::to_json_full`] output.
    ///
    /// The round-trip is bit-exact: floats are serialized with Rust's
    /// shortest-roundtrip formatting and NaN maps through `null`, so
    /// `from_json(r.to_json_full())` re-serializes to the identical
    /// string (asserted by `full_json_round_trip_is_bit_exact`).
    pub fn from_json(s: &str) -> Result<SimResult, String> {
        let v = JsonValue::parse(s)?;
        let u64_of = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let stats = v
            .get("router_stats")
            .ok_or_else(|| "missing router_stats".to_string())?;
        let stat_of = |key: &str| -> Result<u64, String> {
            stats
                .get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing router_stats field {key:?}"))
        };
        let hist_v = v.get("hist").ok_or_else(|| "missing hist".to_string())?;
        let buckets: Vec<(u64, u64)> = hist_v
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "missing hist.buckets".to_string())?
            .iter()
            .map(|pair| {
                let p = pair.as_array().filter(|p| p.len() == 2);
                p.and_then(|p| Some((p[0].as_f64()? as u64, p[1].as_f64()? as u64)))
                    .ok_or_else(|| "malformed hist bucket".to_string())
            })
            .collect::<Result<_, _>>()?;
        let hist = HdrHistogram::from_parts(
            &buckets,
            hist_v.num_or_nan("min") as u64,
            hist_v.num_or_nan("max") as u64,
        );
        let routers = match v.get("routers").and_then(JsonValue::as_array) {
            None => Vec::new(),
            Some(rows) => rows
                .iter()
                .map(|r| {
                    Ok(RouterBreakdown {
                        router: r
                            .get("router")
                            .and_then(JsonValue::as_f64)
                            .ok_or_else(|| "malformed router row".to_string())?
                            as usize,
                        throughput: r.num_or_nan("throughput"),
                        worst_port: r
                            .get("worst_port")
                            .and_then(JsonValue::as_f64)
                            .ok_or_else(|| "malformed router row".to_string())?
                            as usize,
                        worst_port_stall: r.num_or_nan("worst_port_stall"),
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        Ok(SimResult {
            offered: v.num_or_nan("offered"),
            avg_latency: v.num_or_nan("avg_latency"),
            request_latency: v.num_or_nan("request_latency"),
            reply_latency: v.num_or_nan("reply_latency"),
            latency_std_dev: v.num_or_nan("latency_std_dev"),
            latency_p99: v.num_or_nan("latency_p99"),
            throughput: v.num_or_nan("throughput"),
            stable: v
                .get("stable")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| "missing stable".to_string())?,
            ci95: v.num_or_nan("ci95"),
            seeds: u64_of("seeds")? as usize,
            warmup_detected: match v.get("warmup_detected") {
                Some(JsonValue::Num(n)) => Some(*n as u64),
                _ => None,
            },
            telemetry: match v.get("telemetry") {
                Some(t @ JsonValue::Obj(_)) => Some(TelemetrySummary::from_value(t)?),
                _ => None,
            },
            hist,
            router_stats: RouterStats {
                nonspec_grants: stat_of("nonspec_grants")?,
                spec_requests: stat_of("spec_requests")?,
                spec_grants: stat_of("spec_grants")?,
                spec_masked: stat_of("spec_masked")?,
                spec_invalid: stat_of("spec_invalid")?,
                vca_requests: stat_of("vca_requests")?,
                vca_grants: stat_of("vca_grants")?,
            },
            routers,
        })
    }
}

/// Simulation engine: how [`run_sim_engine`] drives the network's cycle
/// loop. All engines are cycle-identical — same flit movements, same
/// statistics, same trace digests (proven by `tests/engine_equivalence.rs`)
/// — and differ only in wall-clock speed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Classic in-order step loop.
    Sequential,
    /// Two-phase compute/commit with a persistent worker pool of the given
    /// size; `Parallel(0)` sizes the pool to the available cores.
    Parallel(usize),
    /// Sequential two-phase step that skips idle routers (fastest at low
    /// load, where most routers are empty most cycles).
    ActiveSet,
}

impl Engine {
    /// Parses a CLI engine name: `seq`, `par`, `active`, or `auto` (which
    /// resolves to `par` on multi-core hosts and `seq` otherwise).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "seq" | "sequential" => Some(Engine::Sequential),
            "par" | "parallel" => Some(Engine::Parallel(0)),
            "active" | "active-set" => Some(Engine::ActiveSet),
            "auto" => Some(Engine::auto()),
            _ => None,
        }
    }

    /// The engine `auto` picks for this host.
    pub fn auto() -> Engine {
        match std::thread::available_parallelism() {
            Ok(p) if p.get() >= 2 => Engine::Parallel(0),
            _ => Engine::Sequential,
        }
    }

    /// Worker-pool size the parallel engine will use (1 for the others).
    pub fn threads(self) -> usize {
        match self {
            Engine::Parallel(0) => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            Engine::Parallel(t) => t,
            _ => 1,
        }
    }

    /// Short name for reports and bench records.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Sequential => "seq",
            Engine::Parallel(_) => "par",
            Engine::ActiveSet => "active",
        }
    }

    /// Drives `net` for `cycles` cycles on this engine.
    pub fn run<S: TraceSink>(self, net: &mut Network<S>, cycles: u64) {
        match self {
            Engine::Sequential => net.run(cycles),
            Engine::Parallel(_) => net.run_parallel(cycles, self.threads()),
            Engine::ActiveSet => net.run_active(cycles),
        }
    }
}

/// As [`run_sim`], but driving the cycle loop with the chosen [`Engine`].
/// The result is bit-identical across engines.
pub fn run_sim_engine(cfg: &SimConfig, warmup: u64, measure: u64, engine: Engine) -> SimResult {
    let mut net = Network::new(cfg.clone());
    net.stats.set_window(warmup, warmup + measure);
    engine.run(&mut net, warmup + measure);
    summarize(&net)
}

/// As [`run_sim_engine`], with the per-packet latency ledger on: every
/// router stamps its waiting heads each cycle and ejections fold into the
/// returned [`AnatomyCollector`] (`capacity` per-packet rows retained,
/// `top_k` slowest waterfalls kept). The ledger is a pure observer — the
/// [`SimResult`] is bit-identical to the plain run's — and the fold order
/// is engine-invariant, so collector dumps are byte-identical across
/// engines.
pub fn run_sim_anatomy(
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
    engine: Engine,
    capacity: usize,
    top_k: usize,
) -> (SimResult, AnatomyCollector) {
    let mut net = Network::new(cfg.clone());
    net.enable_anatomy(capacity, top_k);
    net.stats.set_window(warmup, warmup + measure);
    engine.run(&mut net, warmup + measure);
    let result = summarize(&net);
    let collector = net
        .anatomy
        .take()
        .unwrap_or_else(|| AnatomyCollector::new(capacity, top_k));
    (result, collector)
}

/// Everything produced by an observed run: the summary, the sink with its
/// recorded events, the sampled time series, and each router's counters.
pub struct ObservedRun<S: TraceSink> {
    /// Standard run summary.
    pub result: SimResult,
    /// The trace sink, with whatever it recorded.
    pub sink: S,
    /// Sampled time series, if sampling was enabled.
    pub metrics: Option<MetricsRegistry>,
    /// Per-router observability counters.
    pub router_obs: Vec<RouterObs>,
}

/// Runs one simulation: `warmup` cycles to reach steady state, then a
/// `measure`-cycle window.
pub fn run_sim(cfg: &SimConfig, warmup: u64, measure: u64) -> SimResult {
    let mut net = Network::new(cfg.clone());
    net.stats.set_window(warmup, warmup + measure);
    net.run(warmup + measure);
    summarize(&net)
}

/// As [`run_sim`], but reporting flit events to `sink` and, when
/// `sample_interval` is set, collecting the occupancy/utilization time
/// series.
pub fn run_sim_observed<S: TraceSink>(
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
    sink: S,
    sample_interval: Option<u64>,
) -> ObservedRun<S> {
    let mut net = Network::with_sink(cfg.clone(), sink);
    if let Some(interval) = sample_interval {
        net.enable_metrics(interval);
    }
    net.stats.set_window(warmup, warmup + measure);
    net.run(warmup + measure);
    let result = summarize(&net);
    ObservedRun {
        result,
        router_obs: net.router_obs(),
        metrics: net.metrics,
        sink: net.sink,
    }
}

/// Builds a [`SimResult`] from a network that has finished running.
pub fn summarize<S: TraceSink>(net: &Network<S>) -> SimResult {
    let cfg = net.config();
    let terminals = net.topo.num_terminals();
    let avg = net.stats.avg_latency();
    let throughput = net.stats.throughput(terminals);
    // Stability: the measured backlog per terminal must stay small and the
    // latency bounded.
    let backlog = net.total_backlog() as f64 / terminals as f64;
    let stable = avg.is_finite() && avg < LATENCY_CAP && backlog < 12.0;
    // With a latency timeline enabled, a batch-means confidence interval
    // comes for free; plain runs report NaN (no interval estimate).
    let ci95 = if net.stats.timeline_window() > 0 {
        let finite: Vec<f64> = net
            .stats
            .timeline_means()
            .into_iter()
            .filter(|m| m.is_finite())
            .collect();
        if finite.len() >= 2 * MIN_BATCHES {
            steady::ci95_half_width(&steady::batch_means(&finite, MIN_BATCHES))
        } else {
            f64::NAN
        }
    } else {
        f64::NAN
    };
    SimResult {
        offered: cfg.injection_rate,
        avg_latency: avg,
        request_latency: net.stats.class_avg_latency(0),
        reply_latency: net.stats.class_avg_latency(1),
        latency_std_dev: net.stats.latency_std_dev(),
        latency_p99: net.stats.latency_percentile(0.99),
        throughput,
        stable,
        ci95,
        seeds: 1,
        warmup_detected: None,
        telemetry: net.telemetry.as_ref().map(FlightRecorder::summary),
        hist: net.stats.histogram().clone(),
        router_stats: net.router_stats(),
        routers: net.router_breakdowns(),
    }
}

/// Flight-recorder configuration for a recorded run
/// ([`run_sim_recorded`]).
#[derive(Clone, Copy, Debug)]
pub struct TelemetryOptions {
    /// Telemetry window length in cycles.
    pub window: u64,
    /// Matching-quality sample cadence in *windows*: every
    /// `match_every`-th window contributes one sampled cycle (an exact
    /// maximum matching per router). 0 disables matching sampling.
    pub match_every: u64,
    /// Flight-recorder ring capacity, in windows.
    pub capacity: usize,
    /// Stall-watchdog threshold in consecutive motionless windows (zero
    /// flit motion with flits in flight); `None` disables the watchdog.
    pub watchdog: Option<u64>,
}

impl TelemetryOptions {
    /// Full recording defaults: 100-cycle windows, a matching sample every
    /// window, a 256-window post-mortem ring, watchdog at 100 motionless
    /// windows (10k cycles).
    pub fn recording() -> TelemetryOptions {
        TelemetryOptions {
            window: 100,
            match_every: 1,
            capacity: 256,
            watchdog: Some(100),
        }
    }

    /// Watchdog-only defaults: coarse windows, no matching sampling, a
    /// small ring for the post-mortem dump; trips after roughly
    /// `threshold_cycles` cycles without flit motion.
    pub fn watchdog_only(threshold_cycles: u64) -> TelemetryOptions {
        let window = 500;
        TelemetryOptions {
            window,
            match_every: 0,
            capacity: 64,
            watchdog: Some(threshold_cycles.div_ceil(window).max(1)),
        }
    }

    /// Matching sample period in cycles (0 when sampling is off).
    fn matching_period(&self) -> u64 {
        self.match_every.saturating_mul(self.window)
    }
}

/// A stall-watchdog termination: the network went `stalled_windows`
/// consecutive windows with zero flit motion while `in_flight` flits were
/// stuck in the network — the dynamic signature of a deadlock or total
/// livelock. Carries the flight recorder for the post-mortem dump.
#[derive(Debug)]
pub struct WatchdogTrip {
    /// Cycle count when the watchdog fired.
    pub cycle: u64,
    /// Consecutive motionless windows observed.
    pub stalled_windows: u64,
    /// Telemetry window length in cycles.
    pub window: u64,
    /// Flits in flight when motion stopped.
    pub in_flight: u64,
    /// The recorder, ring intact, for the post-mortem dump.
    pub recorder: FlightRecorder,
}

impl WatchdogTrip {
    /// One-line diagnosis for error messages.
    pub fn describe(&self) -> String {
        format!(
            "no flit motion for {} windows ({} cycles) with {} flits in flight at cycle {} \
             — possible deadlock/livelock",
            self.stalled_windows,
            self.stalled_windows * self.window,
            self.in_flight,
            self.cycle
        )
    }
}

/// As [`run_sim_engine`], with the flight recorder on: drives the engine
/// in window-sized chunks (chunking is cycle-exact on every engine),
/// invokes `on_window` with each snapshot as its window closes (the live
/// `noc top` / `--record` streaming hook), and checks the stall watchdog
/// between chunks. Returns the summary (with its `telemetry` block) plus
/// the recorder, or the [`WatchdogTrip`] if the network stopped moving.
pub fn run_sim_recorded_with(
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
    engine: Engine,
    opts: TelemetryOptions,
    mut on_window: impl FnMut(&WindowSnapshot),
) -> Result<(SimResult, FlightRecorder), Box<WatchdogTrip>> {
    let mut net = Network::new(cfg.clone());
    net.enable_telemetry(opts.window, opts.capacity, opts.matching_period());
    net.stats.set_window(warmup, warmup + measure);
    let total = warmup + measure;
    let mut done = 0u64;
    while done < total {
        let chunk = opts.window.min(total - done);
        engine.run(&mut net, chunk);
        done += chunk;
        // The recorder was installed by enable_telemetry above; an `if let`
        // keeps the hot path free of unwrap machinery.
        let Some(rec) = net.telemetry.as_ref() else {
            break;
        };
        if let Some(snap) = rec.latest() {
            if snap.cycle == done {
                on_window(snap);
            }
        }
        if let Some(threshold) = opts.watchdog {
            let stalled = rec.stalled_windows();
            if stalled >= threshold {
                let in_flight = rec.latest().map_or(0, |s| s.in_flight);
                let recorder = net
                    .telemetry
                    .take()
                    .unwrap_or_else(|| FlightRecorder::new(opts.window, opts.capacity));
                return Err(Box::new(WatchdogTrip {
                    cycle: net.now,
                    stalled_windows: stalled,
                    window: opts.window,
                    in_flight,
                    recorder,
                }));
            }
        }
    }
    let result = summarize(&net);
    let recorder = net
        .telemetry
        .take()
        .unwrap_or_else(|| FlightRecorder::new(opts.window, opts.capacity));
    Ok((result, recorder))
}

/// [`run_sim_recorded_with`] without a per-window callback.
pub fn run_sim_recorded(
    cfg: &SimConfig,
    warmup: u64,
    measure: u64,
    engine: Engine,
    opts: TelemetryOptions,
) -> Result<(SimResult, FlightRecorder), Box<WatchdogTrip>> {
    run_sim_recorded_with(cfg, warmup, measure, engine, opts, |_| {})
}

/// Default warmup/measurement lengths used by the figure benches.
pub const DEFAULT_WARMUP: u64 = 5_000;
/// Default measurement window.
pub const DEFAULT_MEASURE: u64 = 10_000;

/// Batches used for batch-means confidence intervals.
const MIN_BATCHES: usize = 20;

/// Timeline window length (cycles) for a run of `total` cycles: ~1% of
/// the run, clamped so short tests still get several windows and long
/// runs keep per-window counts meaningful.
fn timeline_window_for(total: u64) -> u64 {
    (total / 100).clamp(50, 1_000)
}

/// Runs `jobs` independent closures on a bounded worker pool (at most
/// [`std::thread::available_parallelism`] OS threads) and collects their
/// results in index order. Shared by [`latency_curve`] and
/// [`run_sim_replicated`]; previously every job spawned its own thread,
/// which oversubscribed small CI machines on wide sweeps.
///
/// A panicking job aborts the pool and re-raises the panic on the calling
/// thread with the originating job index and the original payload, instead
/// of surfacing later as an inexplicable missing result.
pub fn run_many<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(jobs);
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<T>> = (0..jobs).map(|_| OnceLock::new()).collect();
    type Failure = Option<(usize, Box<dyn std::any::Any + Send>)>;
    let failure: Mutex<Failure> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // RELAXED: pure work-stealing ticket; each slot is written
                // once through its own OnceLock, which carries the ordering.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                // Catch instead of letting the scope propagate: the scope
                // would surface "a scoped thread panicked" with no hint of
                // which job died.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                    Ok(v) => {
                        if slots[i].set(v).is_err() {
                            unreachable!("job {i} claimed twice");
                        }
                    }
                    Err(payload) => {
                        let mut fail = failure.lock().unwrap_or_else(|e| e.into_inner());
                        fail.get_or_insert((i, payload));
                        break;
                    }
                }
            });
        }
    });
    if let Some((i, payload)) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        panic!("run_many job {i} panicked: {msg}");
    }
    slots
        .into_iter()
        .map(|s| {
            // Workers either fill their slot or record a failure, and a
            // failure re-raised above, so every slot is filled here.
            s.into_inner()
                .unwrap_or_else(|| unreachable!("scoped workers fill every slot before join"))
        })
        .collect()
}

/// Runs one simulation per injection rate, in parallel on a bounded
/// worker pool (each run is independent and deterministic).
pub fn latency_curve(base: &SimConfig, rates: &[f64], warmup: u64, measure: u64) -> Vec<SimResult> {
    latency_curve_with(base, rates, warmup, measure, &|c, w, m| run_sim(c, w, m))
}

/// As [`latency_curve`], but every point is produced by `run` instead of
/// [`run_sim`] directly. A cache-backed runner (the sweep orchestrator's)
/// plugs in here to make curve computation resumable; passing a plain
/// `run_sim` closure reproduces [`latency_curve`] exactly.
pub fn latency_curve_with<F>(
    base: &SimConfig,
    rates: &[f64],
    warmup: u64,
    measure: u64,
    run: &F,
) -> Vec<SimResult>
where
    F: Fn(&SimConfig, u64, u64) -> SimResult + Sync + ?Sized,
{
    run_many(rates.len(), |i| {
        let cfg = SimConfig {
            injection_rate: rates[i],
            ..base.clone()
        };
        run(&cfg, warmup, measure)
    })
}

/// Detects the warmup transient of `cfg` with a pilot run of `total`
/// cycles: the run records a latency timeline, and MSER truncation picks
/// the first window of the steady state. Returns the warmup in cycles
/// (a multiple of the timeline window).
fn detect_warmup(cfg: &SimConfig, total: u64) -> u64 {
    let window = timeline_window_for(total);
    let mut pilot = Network::new(cfg.clone());
    pilot.stats.set_window(0, total);
    pilot.stats.enable_timeline(window);
    pilot.run(total);
    steady::mser_truncation(&pilot.stats.timeline_means()) as u64 * window
}

/// Runs one simulation of `total` cycles with automatic steady-state
/// detection: a pilot run finds the initialization transient (MSER over
/// windowed latency means), then a second run measures only
/// `[warmup, total)`. The result carries the detected warmup and a
/// batch-means 95% confidence interval on the mean latency.
pub fn run_sim_auto(cfg: &SimConfig, total: u64) -> SimResult {
    let warmup = detect_warmup(cfg, total);
    let mut net = Network::new(cfg.clone());
    net.stats.set_window(warmup, total);
    net.stats.enable_timeline(timeline_window_for(total));
    net.run(total);
    let mut res = summarize(&net);
    res.warmup_detected = Some(warmup);
    res
}

/// Runs `n_seeds` independent replications of `cfg` (seeds
/// `cfg.seed, cfg.seed+1, ...`, so an `n`-seed run nests inside an
/// `m`-seed run for `n < m`), each measuring `[warmup, total)` with the
/// warmup detected once by a pilot run. Latency-style metrics are
/// averaged across replicates (mean of means) with a Student-t 95%
/// confidence interval; histograms are merged, so percentiles reflect
/// the pooled latency distribution; router counters are summed; the run
/// is stable only if every replicate was.
pub fn run_sim_replicated(cfg: &SimConfig, total: u64, n_seeds: usize) -> SimResult {
    let n = n_seeds.max(1);
    let warmup = detect_warmup(cfg, total);
    let runs = run_many(n, |i| {
        let cfg_i = SimConfig {
            seed: cfg.seed.wrapping_add(i as u64),
            ..cfg.clone()
        };
        let mut net = Network::new(cfg_i);
        net.stats.set_window(warmup, total);
        net.run(total);
        summarize(&net)
    });
    let mean_of = |get: fn(&SimResult) -> f64| {
        let xs: Vec<f64> = runs.iter().map(get).filter(|x| x.is_finite()).collect();
        if xs.is_empty() {
            f64::NAN
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let rep_means: Vec<f64> = runs.iter().map(|r| r.avg_latency).collect();
    let mut hist = HdrHistogram::new();
    let mut router_stats = RouterStats::default();
    for r in &runs {
        hist.merge(&r.hist);
        router_stats.nonspec_grants += r.router_stats.nonspec_grants;
        router_stats.spec_grants += r.router_stats.spec_grants;
        router_stats.spec_masked += r.router_stats.spec_masked;
        router_stats.spec_invalid += r.router_stats.spec_invalid;
        router_stats.spec_requests += r.router_stats.spec_requests;
        router_stats.vca_grants += r.router_stats.vca_grants;
        router_stats.vca_requests += r.router_stats.vca_requests;
    }
    SimResult {
        offered: cfg.injection_rate,
        avg_latency: mean_of(|r| r.avg_latency),
        request_latency: mean_of(|r| r.request_latency),
        reply_latency: mean_of(|r| r.reply_latency),
        latency_std_dev: mean_of(|r| r.latency_std_dev),
        latency_p99: hist.percentile(0.99),
        throughput: mean_of(|r| r.throughput),
        stable: runs.iter().all(|r| r.stable),
        ci95: steady::ci95_half_width(&rep_means),
        seeds: n,
        warmup_detected: Some(warmup),
        telemetry: None,
        hist,
        router_stats,
        routers: runs
            .into_iter()
            .next()
            .map(|r| r.routers)
            .unwrap_or_default(),
    }
}

/// Runs one simulation with phase profiling on: the returned [`Profiler`]
/// attributes wall time and event counts to the router pipeline phases
/// and is stamped with the run's totals, so shares and cycles/sec are
/// ready to read. The [`SimResult`] is identical to [`run_sim`]'s (the
/// profiled path executes the same cycle-level logic).
pub fn run_sim_profiled(cfg: &SimConfig, warmup: u64, measure: u64) -> (SimResult, Profiler) {
    let mut net = Network::new(cfg.clone());
    net.stats.set_window(warmup, warmup + measure);
    let mut prof = Profiler::default();
    let start = Instant::now();
    for _ in 0..warmup + measure {
        net.step_profiled(&mut prof);
    }
    prof.wall_nanos = start.elapsed().as_nanos() as u64;
    prof.cycles = warmup + measure;
    (summarize(&net), prof)
}

/// Measures the zero-load latency: the average packet latency at a very
/// light load (1% of capacity).
pub fn zero_load_latency(base: &SimConfig) -> f64 {
    let cfg = SimConfig {
        injection_rate: 0.01,
        ..base.clone()
    };
    run_sim(&cfg, 2_000, 12_000).avg_latency
}

/// Finds the saturation rate by bisection: the highest offered load the
/// network sustains with bounded latency and backlog.
pub fn saturation_rate(base: &SimConfig, warmup: u64, measure: u64) -> f64 {
    saturation_rate_with(base, warmup, measure, &|c, w, m| run_sim(c, w, m))
}

/// As [`saturation_rate`], with every probe run produced by `run` — the
/// probe sequence is deterministic, so a content-addressed cache makes
/// even this adaptive search fully resumable.
pub fn saturation_rate_with<F>(base: &SimConfig, warmup: u64, measure: u64, run: &F) -> f64
where
    F: Fn(&SimConfig, u64, u64) -> SimResult + Sync + ?Sized,
{
    let stable_at = |rate: f64| {
        let cfg = SimConfig {
            injection_rate: rate,
            ..base.clone()
        };
        run(&cfg, warmup, measure).stable
    };
    // Exponential probe upward from a safe floor.
    let mut lo = 0.02f64;
    if !stable_at(lo) {
        return 0.0;
    }
    let mut hi = 0.04f64;
    while hi < 1.0 && stable_at(hi) {
        lo = hi;
        hi *= 1.5;
    }
    let mut hi = hi.min(1.0);
    // Bisect to ~1% resolution.
    for _ in 0..7 {
        let mid = 0.5 * (lo + hi);
        if stable_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    #[test]
    fn low_load_runs_are_stable() {
        let cfg = SimConfig {
            injection_rate: 0.05,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
        };
        let r = run_sim(&cfg, 1_000, 3_000);
        assert!(r.stable);
        assert!(r.avg_latency.is_finite());
        assert!(r.throughput > 0.03, "throughput {}", r.throughput);
    }

    #[test]
    fn overload_is_detected_as_unstable() {
        let cfg = SimConfig {
            injection_rate: 0.95,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
        };
        let r = run_sim(&cfg, 1_000, 3_000);
        assert!(!r.stable, "0.95 flits/cycle cannot be stable on a mesh");
    }

    #[test]
    fn latency_grows_with_load() {
        let base = SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2);
        let curve = latency_curve(&base, &[0.05, 0.25], 1_500, 4_000);
        assert!(curve[1].avg_latency > curve[0].avg_latency);
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let base = SimConfig {
            injection_rate: 0.2,
            ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2)
        };
        let r = run_sim(&base, 2_000, 6_000);
        assert!(r.stable);
        assert!(
            (r.throughput - 0.2).abs() < 0.02,
            "accepted {} vs offered 0.2",
            r.throughput
        );
    }

    #[test]
    fn run_many_propagates_worker_panics_with_job_index() {
        let result = std::panic::catch_unwind(|| {
            run_many(8, |i| {
                if i == 5 {
                    panic!("boom at job {i}");
                }
                i
            })
        });
        let payload = result.expect_err("worker panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("job 5"), "message should name the job: {msg}");
        assert!(
            msg.contains("boom at job 5"),
            "message should carry the original payload: {msg}"
        );
    }

    #[test]
    fn engine_parse_covers_cli_names() {
        assert_eq!(Engine::parse("seq"), Some(Engine::Sequential));
        assert_eq!(Engine::parse("par"), Some(Engine::Parallel(0)));
        assert_eq!(Engine::parse("active"), Some(Engine::ActiveSet));
        assert!(Engine::parse("auto").is_some());
        assert_eq!(Engine::parse("warp"), None);
        assert!(Engine::Parallel(0).threads() >= 1);
        assert_eq!(Engine::Parallel(3).threads(), 3);
        assert_eq!(Engine::Sequential.label(), "seq");
    }

    #[test]
    fn engines_agree_on_a_short_run() {
        let cfg = SimConfig {
            injection_rate: 0.1,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        };
        let seq = run_sim_engine(&cfg, 500, 1_500, Engine::Sequential);
        let par = run_sim_engine(&cfg, 500, 1_500, Engine::Parallel(4));
        let act = run_sim_engine(&cfg, 500, 1_500, Engine::ActiveSet);
        assert_eq!(seq.to_json(), par.to_json());
        assert_eq!(seq.to_json(), act.to_json());
    }

    #[test]
    fn full_json_round_trip_is_bit_exact() {
        let cfg = SimConfig {
            injection_rate: 0.12,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        };
        let r = run_sim(&cfg, 500, 1_500);
        let full = r.to_json_full();
        let back = SimResult::from_json(&full).expect("round-trip parse");
        // Bit-exact re-serialization: every float (shortest-roundtrip
        // formatted), the histogram (so derived percentiles too), router
        // rows and counters survive the cache file format unchanged.
        assert_eq!(back.to_json_full(), full);
        assert_eq!(back.to_json(), r.to_json());
        assert_eq!(back.hist, r.hist);
        assert_eq!(back.hist.percentile(0.999), r.hist.percentile(0.999));
    }

    #[test]
    fn from_json_rejects_malformed_records() {
        assert!(SimResult::from_json("{}").is_err());
        assert!(SimResult::from_json("not json").is_err());
        // A plain (non-full) record has no histogram and must be refused
        // rather than silently reconstructed with an empty one.
        let r = run_sim(
            &SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1),
            200,
            500,
        );
        assert!(SimResult::from_json(&r.to_json()).is_err());
    }

    #[test]
    fn recorded_run_matches_plain_run_and_attaches_telemetry() {
        let cfg = SimConfig {
            injection_rate: 0.1,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        };
        let plain = run_sim_engine(&cfg, 500, 1_500, Engine::Sequential);
        let mut windows_seen = 0u64;
        let (rec_res, rec) = run_sim_recorded_with(
            &cfg,
            500,
            1_500,
            Engine::Sequential,
            TelemetryOptions::recording(),
            |_| windows_seen += 1,
        )
        .expect("healthy run must not trip the watchdog");
        // Telemetry must be a pure observer: every simulation metric is
        // identical to the unrecorded run.
        assert_eq!(rec_res.avg_latency.to_bits(), plain.avg_latency.to_bits());
        assert_eq!(rec_res.throughput.to_bits(), plain.throughput.to_bits());
        assert_eq!(rec_res.hist, plain.hist);
        assert_eq!(rec.windows(), 20); // 2000 cycles / 100-cycle windows
        assert_eq!(windows_seen, 20);
        let summary = rec_res.telemetry.as_ref().expect("telemetry attached");
        assert_eq!(summary.windows, 20);
        // Uniform traffic at 0.1 keeps flits moving: mean matching
        // efficiency is a real number in (0, 1].
        let eff = summary.mean_efficiency();
        assert!(eff > 0.0 && eff <= 1.0, "mean efficiency {eff}");
        // The telemetry block survives the JSON round trip bit-exactly.
        let back = SimResult::from_json(&rec_res.to_json_full()).expect("parse");
        assert_eq!(back.to_json(), rec_res.to_json());
        assert_eq!(back.telemetry.unwrap().to_json(), summary.to_json());
    }

    #[test]
    fn recorded_runs_are_engine_identical() {
        let cfg = SimConfig {
            injection_rate: 0.15,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        };
        let opts = TelemetryOptions::recording();
        let run = |engine| {
            let (res, rec) = run_sim_recorded(&cfg, 500, 1_500, engine, opts).expect("no trip");
            (res.to_json(), rec.summary().to_json())
        };
        let seq = run(Engine::Sequential);
        assert_eq!(seq, run(Engine::Parallel(4)));
        assert_eq!(seq, run(Engine::ActiveSet));
    }

    #[test]
    fn anatomy_run_is_a_pure_observer() {
        let cfg = SimConfig {
            injection_rate: 0.1,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        };
        let plain = run_sim_engine(&cfg, 500, 1_500, Engine::Sequential);
        let (res, col) = run_sim_anatomy(&cfg, 500, 1_500, Engine::Sequential, 1 << 16, 4);
        // Every simulation metric must be bit-identical to the plain run.
        assert_eq!(res.avg_latency.to_bits(), plain.avg_latency.to_bits());
        assert_eq!(res.throughput.to_bits(), plain.throughput.to_bits());
        assert_eq!(res.hist, plain.hist);
        assert_eq!(res.to_json(), plain.to_json());
        assert!(col.totals.packets > 0);
    }

    #[test]
    fn anatomy_reconciles_exactly_with_measured_latency() {
        let cfg = SimConfig {
            injection_rate: 0.2,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        };
        let (res, col) = run_sim_anatomy(&cfg, 500, 1_500, Engine::Sequential, 1 << 16, 8);
        assert!(col.totals.packets > 100, "window too thin to be meaningful");
        assert_eq!(col.totals.dropped, 0);
        assert_eq!(col.records.len() as u64, col.totals.packets);
        // The tentpole invariant, packet by packet: the seven stages
        // partition eject - birth with no cycle lost or double-counted.
        for p in &col.records {
            assert!(p.reconciles(), "{p:?}");
        }
        for w in col.slowest() {
            assert!(w.packet.reconciles(), "{:?}", w.packet);
            for h in &w.hops {
                assert!(h.reconciles(), "{h:?}");
            }
        }
        // And in aggregate: the stage sums rebuild the measured average
        // latency bit for bit (same population, same dividend).
        let mean = col.totals.total_sum() as f64 / col.totals.packets as f64;
        assert_eq!(
            mean.to_bits(),
            res.avg_latency.to_bits(),
            "anatomy mean {mean} != measured {}",
            res.avg_latency
        );
    }

    #[test]
    fn anatomy_dumps_are_engine_identical() {
        let cfg = SimConfig {
            injection_rate: 0.15,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        };
        let header = noc_obs::AnatomyHeader {
            digest: cfg.digest(500, 1_500, "noc-anatomy/v1"),
            label: cfg.label(),
            routers: 64,
            warmup: 500,
            measure: 1_500,
            capacity: 1 << 16,
            top_k: 4,
        };
        let run = |engine| {
            let (res, col) = run_sim_anatomy(&cfg, 500, 1_500, engine, 1 << 16, 4);
            (res.to_json(), col.to_jsonl(&header))
        };
        let seq = run(Engine::Sequential);
        assert_eq!(seq, run(Engine::Parallel(4)));
        assert_eq!(seq, run(Engine::ActiveSet));
    }

    #[test]
    fn watchdog_trips_on_torus_without_dateline() {
        // The no-dateline torus fixture deadlocks under load: packets wrap
        // around the rings and form cyclic credit dependencies. The
        // watchdog must terminate the run with a usable post-mortem.
        let cfg = SimConfig {
            topology: TopologyKind::Torus8x8,
            injection_rate: 0.35,
            routing_override: Some(crate::routing::RoutingKind::TorusNoDateline),
            ..SimConfig::paper_baseline(TopologyKind::Torus8x8, 1)
        };
        let opts = TelemetryOptions {
            watchdog: Some(10),
            ..TelemetryOptions::recording()
        };
        let trip = run_sim_recorded(&cfg, 5_000, 45_000, Engine::Sequential, opts)
            .expect_err("no-dateline torus must deadlock");
        assert_eq!(trip.stalled_windows, 10);
        assert!(trip.in_flight > 0, "a stall needs stuck flits");
        assert!(
            trip.recorder.latest().is_some(),
            "post-mortem ring must hold the stalled windows"
        );
        assert!(trip.describe().contains("possible deadlock"));
    }

    #[test]
    fn watchdog_stays_quiet_on_dateline_torus() {
        // Same load on the correct dateline routing: no trip.
        let cfg = SimConfig {
            topology: TopologyKind::Torus8x8,
            injection_rate: 0.35,
            ..SimConfig::paper_baseline(TopologyKind::Torus8x8, 1)
        };
        let opts = TelemetryOptions {
            watchdog: Some(10),
            ..TelemetryOptions::recording()
        };
        let (res, rec) =
            run_sim_recorded(&cfg, 2_000, 8_000, Engine::Sequential, opts).expect("no trip");
        assert!(res.throughput > 0.0);
        assert_eq!(rec.max_stalled_windows(), 0);
    }

    #[test]
    fn saturation_rate_is_in_plausible_band() {
        // Mesh 2x1x1 under uniform request/reply traffic saturates well
        // below the 0.5 bisection bound and above 0.15 (Figure 13(a) shows
        // ~0.3 for the paper's setup).
        let base = SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1);
        let sat = saturation_rate(&base, 1_500, 3_000);
        assert!((0.15..0.5).contains(&sat), "mesh 2x1x1 saturation {sat}");
    }
}
