//! The two 64-node topologies of the paper's evaluation (§3).

/// A directed router-to-router link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// Destination router.
    pub to_router: usize,
    /// Input port at the destination router.
    pub to_port: usize,
    /// Latency in cycles.
    pub latency: u64,
}

/// The topology kinds evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// 8×8 mesh, one terminal per router (P = 5).
    Mesh8x8,
    /// 4×4 two-dimensional flattened butterfly, concentration 4 (P = 10).
    FlattenedButterfly4x4,
    /// 8×8 torus, one terminal per router (P = 5) — the dateline-routing
    /// extension (§4.2 names torus datelines as the other resource-class
    /// example; the paper itself evaluates mesh and fbfly only).
    Torus8x8,
}

impl TopologyKind {
    /// Builds the topology.
    pub fn build(self) -> Topology {
        match self {
            TopologyKind::Mesh8x8 => Topology::mesh(8, 8),
            TopologyKind::FlattenedButterfly4x4 => Topology::flattened_butterfly(4, 4, 4),
            TopologyKind::Torus8x8 => Topology::torus(8, 8),
        }
    }

    /// Name used in figure captions.
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Mesh8x8 => "mesh",
            TopologyKind::FlattenedButterfly4x4 => "fbfly",
            TopologyKind::Torus8x8 => "torus",
        }
    }
}

/// Concrete topology description: router grid, terminal attachment and the
/// link table.
#[derive(Clone, Debug)]
pub struct Topology {
    kind_label: &'static str,
    /// Grid width (routers).
    pub width: usize,
    /// Grid height (routers).
    pub height: usize,
    /// Terminals per router.
    pub concentration: usize,
    /// Ports per router (terminal ports first, then network ports).
    pub ports: usize,
    /// `links[router][port]`: `None` for terminal ports.
    links: Vec<Vec<Option<Link>>>,
}

impl Topology {
    /// `w × h` mesh with one terminal per router; ports: 0 = terminal,
    /// 1 = +x, 2 = −x, 3 = +y, 4 = −y; all links are single-cycle (§3.2).
    pub fn mesh(w: usize, h: usize) -> Topology {
        let n = w * h;
        let mut links = vec![vec![None; 5]; n];
        for y in 0..h {
            for x in 0..w {
                let r = y * w + x;
                if x + 1 < w {
                    links[r][1] = Some(Link {
                        to_router: r + 1,
                        to_port: 2,
                        latency: 1,
                    });
                }
                if x > 0 {
                    links[r][2] = Some(Link {
                        to_router: r - 1,
                        to_port: 1,
                        latency: 1,
                    });
                }
                if y + 1 < h {
                    links[r][3] = Some(Link {
                        to_router: r + w,
                        to_port: 4,
                        latency: 1,
                    });
                }
                if y > 0 {
                    links[r][4] = Some(Link {
                        to_router: r - w,
                        to_port: 3,
                        latency: 1,
                    });
                }
            }
        }
        Topology {
            kind_label: "mesh",
            width: w,
            height: h,
            concentration: 1,
            ports: 5,
            links,
        }
    }

    /// `w × h` torus: the mesh with single-cycle wraparound links in both
    /// dimensions. Same port numbering as the mesh (0 = terminal, 1 = +x,
    /// 2 = −x, 3 = +y, 4 = −y); every port is connected.
    pub fn torus(w: usize, h: usize) -> Topology {
        assert!(w >= 3 && h >= 3, "degenerate rings alias ports");
        let n = w * h;
        let mut links = vec![vec![None; 5]; n];
        for y in 0..h {
            for x in 0..w {
                let r = y * w + x;
                let xp = y * w + (x + 1) % w;
                let xm = y * w + (x + w - 1) % w;
                let yp = ((y + 1) % h) * w + x;
                let ym = ((y + h - 1) % h) * w + x;
                links[r][1] = Some(Link {
                    to_router: xp,
                    to_port: 2,
                    latency: 1,
                });
                links[r][2] = Some(Link {
                    to_router: xm,
                    to_port: 1,
                    latency: 1,
                });
                links[r][3] = Some(Link {
                    to_router: yp,
                    to_port: 4,
                    latency: 1,
                });
                links[r][4] = Some(Link {
                    to_router: ym,
                    to_port: 3,
                    latency: 1,
                });
            }
        }
        Topology {
            kind_label: "torus",
            width: w,
            height: h,
            concentration: 1,
            ports: 5,
            links,
        }
    }

    /// `w × h` two-dimensional flattened butterfly with concentration `c`:
    /// every router connects to all others in its row and column. Ports:
    /// `0..c` terminals, then `w-1` row links, then `h-1` column links.
    /// Link latency equals grid distance, giving the paper's one-to-three
    /// cycle channel latencies (§3.2).
    pub fn flattened_butterfly(w: usize, h: usize, c: usize) -> Topology {
        let n = w * h;
        let ports = c + (w - 1) + (h - 1);
        let mut links = vec![vec![None; ports]; n];
        // Row port numbering: port c + k at router x connects to the k-th
        // other router in the row (in increasing x skipping self).
        for y in 0..h {
            for x in 0..w {
                let r = y * w + x;
                for (k, ox) in (0..w).filter(|&ox| ox != x).enumerate() {
                    let to = y * w + ox;
                    // Reverse port index at the destination: position of x
                    // in 0..w with ox skipped.
                    let back = if x < ox { x } else { x - 1 };
                    links[r][c + k] = Some(Link {
                        to_router: to,
                        to_port: c + back,
                        latency: x.abs_diff(ox) as u64,
                    });
                }
                for (k, oy) in (0..h).filter(|&oy| oy != y).enumerate() {
                    let to = oy * w + x;
                    let back = if y < oy { y } else { y - 1 };
                    links[r][c + (w - 1) + k] = Some(Link {
                        to_router: to,
                        to_port: c + (w - 1) + back,
                        latency: y.abs_diff(oy) as u64,
                    });
                }
            }
        }
        Topology {
            kind_label: "fbfly",
            width: w,
            height: h,
            concentration: c,
            ports,
            links,
        }
    }

    /// Short name (`mesh` / `fbfly`).
    pub fn label(&self) -> &'static str {
        self.kind_label
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.width * self.height
    }

    /// The terminal-space shape traffic patterns operate on.
    pub fn geometry(&self) -> crate::traffic::TrafficGeometry {
        crate::traffic::TrafficGeometry {
            width: self.width,
            height: self.height,
            concentration: self.concentration,
        }
    }

    /// Number of network terminals.
    pub fn num_terminals(&self) -> usize {
        self.num_routers() * self.concentration
    }

    /// Router and input port a terminal attaches to.
    pub fn terminal_attach(&self, t: usize) -> (usize, usize) {
        assert!(t < self.num_terminals());
        (t / self.concentration, t % self.concentration)
    }

    /// The terminal reached through ejection port `port` of `router`, if
    /// `port` is a terminal port.
    pub fn port_terminal(&self, router: usize, port: usize) -> Option<usize> {
        (port < self.concentration).then(|| router * self.concentration + port)
    }

    /// The link leaving `router` through `port` (`None` for terminal ports).
    pub fn link(&self, router: usize, port: usize) -> Option<Link> {
        self.links[router][port]
    }

    /// The network port at `from` that reaches `to` directly, if any.
    pub fn port_towards(&self, from: usize, to: usize) -> Option<usize> {
        (0..self.ports).find(|&p| self.links[from][p].is_some_and(|l| l.to_router == to))
    }

    /// Grid coordinates of a router.
    pub fn coords(&self, router: usize) -> (usize, usize) {
        (router % self.width, router / self.width)
    }

    /// Minimal router-to-router hop count.
    pub fn min_hops(&self, from: usize, to: usize) -> usize {
        let (x0, y0) = self.coords(from);
        let (x1, y1) = self.coords(to);
        match self.kind_label {
            "mesh" => x0.abs_diff(x1) + y0.abs_diff(y1),
            "torus" => {
                let dx = x0.abs_diff(x1);
                let dy = y0.abs_diff(y1);
                dx.min(self.width - dx) + dy.min(self.height - dy)
            }
            _ => (x0 != x1) as usize + (y0 != y1) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_structure() {
        let t = TopologyKind::Mesh8x8.build();
        assert_eq!(t.num_routers(), 64);
        assert_eq!(t.num_terminals(), 64);
        assert_eq!(t.ports, 5);
        // Corner router 0: only +x and +y links.
        assert!(t.link(0, 1).is_some() && t.link(0, 3).is_some());
        assert!(t.link(0, 2).is_none() && t.link(0, 4).is_none());
        // All mesh links are 1 cycle and symmetric.
        for r in 0..64 {
            for p in 1..5 {
                if let Some(l) = t.link(r, p) {
                    assert_eq!(l.latency, 1);
                    let back = t.link(l.to_router, l.to_port).unwrap();
                    assert_eq!(back.to_router, r);
                    assert_eq!(back.to_port, p);
                }
            }
        }
    }

    #[test]
    fn fbfly_structure() {
        let t = TopologyKind::FlattenedButterfly4x4.build();
        assert_eq!(t.num_routers(), 16);
        assert_eq!(t.num_terminals(), 64);
        assert_eq!(t.ports, 10);
        // Every router reaches 3 row + 3 column peers.
        for r in 0..16 {
            let peers: Vec<usize> = (4..10).map(|p| t.link(r, p).unwrap().to_router).collect();
            assert_eq!(peers.len(), 6);
            // Links are symmetric and 1-3 cycles.
            for p in 4..10 {
                let l = t.link(r, p).unwrap();
                assert!((1..=3).contains(&l.latency), "latency {}", l.latency);
                let back = t.link(l.to_router, l.to_port).unwrap();
                assert_eq!((back.to_router, back.to_port), (r, p));
            }
        }
        // Distance-based latency: router 0 to router 3 (same row, dx=3).
        let p = t.port_towards(0, 3).unwrap();
        assert_eq!(t.link(0, p).unwrap().latency, 3);
    }

    #[test]
    fn terminal_attachment_roundtrip() {
        let t = TopologyKind::FlattenedButterfly4x4.build();
        for term in 0..64 {
            let (r, p) = t.terminal_attach(term);
            assert_eq!(t.port_terminal(r, p), Some(term));
        }
        assert_eq!(t.port_terminal(0, 4), None);
    }

    #[test]
    fn min_hops() {
        let mesh = TopologyKind::Mesh8x8.build();
        assert_eq!(mesh.min_hops(0, 63), 14);
        assert_eq!(mesh.min_hops(0, 0), 0);
        let fb = TopologyKind::FlattenedButterfly4x4.build();
        assert_eq!(fb.min_hops(0, 15), 2);
        assert_eq!(fb.min_hops(0, 3), 1);
        assert_eq!(fb.min_hops(5, 5), 0);
    }

    #[test]
    fn fbfly_all_pairs_reachable_within_two_hops() {
        let t = TopologyKind::FlattenedButterfly4x4.build();
        for a in 0..16 {
            for b in 0..16 {
                if a == b {
                    continue;
                }
                let h = t.min_hops(a, b);
                assert!(h <= 2);
                if h == 1 {
                    assert!(t.port_towards(a, b).is_some());
                }
            }
        }
    }
}
