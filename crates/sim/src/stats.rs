//! Measurement-window statistics.

use noc_obs::HdrHistogram;

/// Latency and throughput accumulators over a measurement window.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    window_start: u64,
    window_end: u64,
    /// Sum of packet latencies (tail ejection − creation) in the window.
    pub latency_sum: u64,
    /// Packets whose tail ejected within the window.
    pub packets: u64,
    /// Worst packet latency observed in the window.
    pub latency_max: u64,
    /// Per-message-class latency sums and counts `[request, reply]`.
    pub class_latency_sum: [u64; 2],
    /// Per-class packet counts.
    pub class_packets: [u64; 2],
    /// Flits ejected in the window.
    pub flits_ejected: u64,
    /// Flits ejected since construction, window-independent — the
    /// telemetry layer differences this per recording window.
    pub total_flits_ejected: u64,
    /// Flits injected in the window (all terminals).
    pub flits_injected: u64,
    /// Sum of squared latencies, for the variance estimate.
    latency_sq_sum: u128,
    /// Log-linear latency histogram (bounded ~3% relative error, exact
    /// below 32 cycles) for percentile estimates.
    hist: HdrHistogram,
    /// Per-source latency sums/counts (initialized by
    /// [`NetStats::init_sources`]), for network-level fairness analysis.
    src_latency_sum: Vec<u64>,
    src_packets: Vec<u64>,
    /// Timeline window length in cycles; 0 disables the timeline.
    timeline_window: u64,
    /// Per-timeline-window latency sums and packet counts, indexed by
    /// `eject_cycle / timeline_window` (only for in-window packets).
    timeline_sum: Vec<u64>,
    timeline_count: Vec<u64>,
}

impl NetStats {
    /// Sets the measurement window `[start, end)`.
    pub fn set_window(&mut self, start: u64, end: u64) {
        self.window_start = start;
        self.window_end = end;
    }

    /// Enables per-source latency tracking for `n` terminals.
    pub fn init_sources(&mut self, n: usize) {
        self.src_latency_sum = vec![0; n];
        self.src_packets = vec![0; n];
    }

    /// Enables the latency timeline: packets are additionally binned into
    /// consecutive `window`-cycle intervals, feeding steady-state
    /// detection and batch-means confidence intervals.
    pub fn enable_timeline(&mut self, window: u64) {
        self.timeline_window = window.max(1);
    }

    /// Timeline window length in cycles (0 when disabled).
    pub fn timeline_window(&self) -> u64 {
        self.timeline_window
    }

    /// Mean latency per timeline window (NaN for windows that delivered
    /// nothing); empty unless [`NetStats::enable_timeline`] was called.
    pub fn timeline_means(&self) -> Vec<f64> {
        self.timeline_sum
            .iter()
            .zip(&self.timeline_count)
            .map(|(&s, &c)| {
                if c == 0 {
                    f64::NAN
                } else {
                    s as f64 / c as f64
                }
            })
            .collect()
    }

    /// Whether `now` falls inside the measurement window. Public so other
    /// measurement-windowed consumers (the latency-anatomy collector)
    /// share exactly this boundary convention: start inclusive, end
    /// exclusive, judged at ejection time.
    #[inline]
    pub fn in_window(&self, now: u64) -> bool {
        now >= self.window_start && now < self.window_end
    }

    /// Records a packet whose tail flit ejected at `now`.
    pub fn record_packet_from(&mut self, now: u64, birth: u64, msg_class: usize, src: usize) {
        self.record_packet(now, birth, msg_class);
        if self.in_window(now) && src < self.src_packets.len() {
            self.src_latency_sum[src] += now - birth;
            self.src_packets[src] += 1;
        }
    }

    /// Records a packet whose tail flit ejected at `now`.
    pub fn record_packet(&mut self, now: u64, birth: u64, msg_class: usize) {
        if self.in_window(now) {
            let lat = now - birth;
            self.latency_sum += lat;
            self.packets += 1;
            self.latency_max = self.latency_max.max(lat);
            self.class_latency_sum[msg_class] += lat;
            self.class_packets[msg_class] += 1;
            self.latency_sq_sum += (lat as u128) * (lat as u128);
            self.hist.record(lat);
            if let Some(win) = now.checked_div(self.timeline_window) {
                let idx = win as usize;
                if idx >= self.timeline_sum.len() {
                    self.timeline_sum.resize(idx + 1, 0);
                    self.timeline_count.resize(idx + 1, 0);
                }
                self.timeline_sum[idx] += lat;
                self.timeline_count[idx] += 1;
            }
        }
    }

    /// Records one ejected flit.
    pub fn record_flit_ejected(&mut self, now: u64) {
        self.total_flits_ejected += 1;
        if self.in_window(now) {
            self.flits_ejected += 1;
        }
    }

    /// Records one injected flit.
    pub fn record_flit_injected(&mut self, now: u64) {
        if self.in_window(now) {
            self.flits_injected += 1;
        }
    }

    /// Average packet latency over the window.
    pub fn avg_latency(&self) -> f64 {
        if self.packets == 0 {
            f64::NAN
        } else {
            self.latency_sum as f64 / self.packets as f64
        }
    }

    /// Average latency of one message class.
    pub fn class_avg_latency(&self, class: usize) -> f64 {
        if self.class_packets[class] == 0 {
            f64::NAN
        } else {
            self.class_latency_sum[class] as f64 / self.class_packets[class] as f64
        }
    }

    /// Sample standard deviation of packet latency over the window.
    pub fn latency_std_dev(&self) -> f64 {
        if self.packets < 2 {
            return f64::NAN;
        }
        let n = self.packets as f64;
        let mean = self.latency_sum as f64 / n;
        let var = (self.latency_sq_sum as f64 / n - mean * mean).max(0.0) * n / (n - 1.0);
        var.sqrt()
    }

    /// Latency percentile from the log-linear histogram, with
    /// within-bucket linear interpolation. `q` must be in `(0, 1]`
    /// (`q = 0` has no defined order statistic and panics); the estimate
    /// deviates from the exact order statistic by at most
    /// [`HdrHistogram::REL_ERROR`] relative (exact below 32 cycles).
    /// Returns NaN when no packets were delivered.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        self.hist.percentile(q)
    }

    /// Read access to the latency histogram.
    pub fn histogram(&self) -> &HdrHistogram {
        &self.hist
    }

    /// Per-source average latencies (NaN for sources with no packets);
    /// empty unless [`NetStats::init_sources`] was called.
    pub fn per_source_latency(&self) -> Vec<f64> {
        self.src_latency_sum
            .iter()
            .zip(&self.src_packets)
            .map(|(&s, &c)| {
                if c == 0 {
                    f64::NAN
                } else {
                    s as f64 / c as f64
                }
            })
            .collect()
    }

    /// Fairness indicator: max/min per-source average latency over sources
    /// that delivered packets. NaN without per-source data, and NaN when
    /// the minimum average latency is zero (a same-cycle delivery would
    /// otherwise make the ratio infinite and poison downstream
    /// aggregation).
    pub fn source_latency_spread(&self) -> f64 {
        let lats: Vec<f64> = self
            .per_source_latency()
            .into_iter()
            .filter(|l| l.is_finite())
            .collect();
        if lats.is_empty() {
            return f64::NAN;
        }
        let max = lats.iter().cloned().fold(0.0f64, f64::max);
        let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
        if min <= 0.0 {
            return f64::NAN;
        }
        max / min
    }

    /// Accepted throughput in flits/cycle/terminal.
    pub fn throughput(&self, terminals: usize) -> f64 {
        let cycles = self.window_end.saturating_sub(self.window_start);
        if cycles == 0 {
            0.0
        } else {
            self.flits_ejected as f64 / (cycles as f64 * terminals as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_filtering() {
        let mut s = NetStats::default();
        s.set_window(100, 200);
        s.record_packet(50, 40, 0); // before window
        s.record_packet(150, 100, 0); // inside
        s.record_packet(250, 200, 1); // after
        assert_eq!(s.packets, 1);
        assert_eq!(s.latency_sum, 50);
        assert!((s.avg_latency() - 50.0).abs() < 1e-12);
        assert_eq!(s.class_packets, [1, 0]);
    }

    #[test]
    fn window_boundaries_are_start_inclusive_end_exclusive() {
        // The convention every windowed consumer shares (latency stats,
        // anatomy ledger): eject at window_start counts, at window_end
        // does not, judged purely at ejection time.
        let mut s = NetStats::default();
        s.set_window(100, 200);
        assert!(s.in_window(100));
        assert!(s.in_window(199));
        assert!(!s.in_window(99));
        assert!(!s.in_window(200));
        s.record_packet(100, 60, 0); // on the start boundary: counts
        s.record_packet(199, 150, 1); // last in-window cycle: counts
        s.record_packet(200, 150, 0); // on the end boundary: excluded
        assert_eq!(s.packets, 2);
        assert_eq!(s.latency_sum, 40 + 49);
        assert_eq!(s.latency_max, 49);
        s.record_flit_ejected(200);
        s.record_flit_injected(200);
        assert_eq!(s.flits_ejected, 0);
        assert_eq!(s.flits_injected, 0);
        assert_eq!(s.total_flits_ejected, 1, "all-time counter still moves");
    }

    #[test]
    fn packet_born_in_warmup_counts_full_latency_when_ejected_in_window() {
        // Window membership is judged at ejection: a packet born during
        // warmup that ejects inside the window contributes its complete
        // birth-to-eject latency, not just the in-window share.
        let mut s = NetStats::default();
        s.set_window(100, 200);
        s.record_packet(150, 20, 0); // born at 20, well before the window
        assert_eq!(s.packets, 1);
        assert_eq!(s.latency_sum, 130);
        assert!((s.avg_latency() - 130.0).abs() < 1e-12);
    }

    #[test]
    fn class_accounting_splits_requests_and_replies() {
        let mut s = NetStats::default();
        s.set_window(0, 1000);
        s.record_packet(100, 90, 0); // request, 10 cycles
        s.record_packet(200, 170, 0); // request, 30 cycles
        s.record_packet(300, 250, 1); // reply, 50 cycles
        assert_eq!(s.class_packets, [2, 1]);
        assert_eq!(s.class_latency_sum, [40, 50]);
        assert!((s.class_avg_latency(0) - 20.0).abs() < 1e-12);
        assert!((s.class_avg_latency(1) - 50.0).abs() < 1e-12);
        // Class splits re-aggregate to the totals exactly.
        assert_eq!(s.class_packets[0] + s.class_packets[1], s.packets);
        assert_eq!(
            s.class_latency_sum[0] + s.class_latency_sum[1],
            s.latency_sum
        );
    }

    #[test]
    fn throughput_normalization() {
        let mut s = NetStats::default();
        s.set_window(0, 1000);
        for t in 0..500 {
            s.record_flit_ejected(t);
        }
        assert!((s.throughput(10) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_window_yields_nan() {
        let s = NetStats::default();
        assert!(s.avg_latency().is_nan());
        assert!(s.class_avg_latency(0).is_nan());
        assert!(s.latency_std_dev().is_nan());
        assert!(s.latency_percentile(0.99).is_nan());
    }

    #[test]
    #[should_panic(expected = "percentile q must be in (0, 1]")]
    fn percentile_rejects_zero() {
        // The old contract silently accepted q = 0 and returned the first
        // non-empty bucket's upper bound; it must panic now.
        let mut s = NetStats::default();
        s.set_window(0, 1000);
        s.record_packet(100, 90, 0);
        s.latency_percentile(0.0);
    }

    #[test]
    fn source_latency_spread_guards_zero_latency() {
        // Regression: a source whose only packet had zero latency used to
        // drive max/min to +inf; it must yield NaN instead.
        let mut s = NetStats::default();
        s.set_window(0, 1000);
        s.init_sources(2);
        s.record_packet_from(100, 100, 0, 0); // zero-latency delivery
        s.record_packet_from(200, 150, 0, 1); // 50-cycle delivery
        assert!(
            s.source_latency_spread().is_nan(),
            "spread {} should be NaN, not inf",
            s.source_latency_spread()
        );
        // The normal case still works.
        let mut s = NetStats::default();
        s.set_window(0, 1000);
        s.init_sources(2);
        s.record_packet_from(100, 90, 0, 0); // 10 cycles
        s.record_packet_from(200, 170, 0, 1); // 30 cycles
        assert!((s.source_latency_spread() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_of_constant_samples_is_zero() {
        let mut s = NetStats::default();
        s.set_window(0, 1000);
        for t in [100u64, 200, 300] {
            s.record_packet(t, t - 20, 0);
        }
        assert!(s.latency_std_dev().abs() < 1e-9);
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        let mut s = NetStats::default();
        s.set_window(0, 1000);
        // Latencies 10, 20, 30: mean 20, sample variance 100.
        s.record_packet(100, 90, 0);
        s.record_packet(100, 80, 0);
        s.record_packet(100, 70, 0);
        assert!((s.latency_std_dev() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_exact_for_small_latencies() {
        // The power-of-two histogram this replaces reported p99 = 128 for
        // a 100-cycle tail; the log-linear one is exact below 32 cycles
        // and within ~3% above.
        let mut s = NetStats::default();
        s.set_window(0, 1000);
        for lat in [5u64, 6, 7, 8, 100] {
            s.record_packet(500, 500 - lat, 0);
        }
        assert_eq!(s.latency_percentile(0.2), 5.0);
        assert_eq!(s.latency_percentile(0.4), 6.0);
        assert_eq!(s.latency_percentile(0.8), 8.0);
        let p100 = s.latency_percentile(1.0);
        assert_eq!(p100, 100.0, "tail must be exact, not a pow2 bound");
    }

    #[test]
    fn timeline_bins_latency_by_eject_cycle() {
        let mut s = NetStats::default();
        s.set_window(0, 1000);
        s.enable_timeline(100);
        s.record_packet(50, 40, 0); // window 0, lat 10
        s.record_packet(60, 40, 0); // window 0, lat 20
        s.record_packet(250, 200, 0); // window 2, lat 50
        let means = s.timeline_means();
        assert_eq!(means.len(), 3);
        assert!((means[0] - 15.0).abs() < 1e-12);
        assert!(means[1].is_nan());
        assert!((means[2] - 50.0).abs() < 1e-12);
    }
}
