//! Steady-state detection and confidence intervals.
//!
//! Implements the statistical-simulation methodology of Dally & Towles
//! (*Principles and Practices of Interconnection Networks*, ch. 24-25) as
//! used by BookSim-class simulators: instead of trusting a fixed warmup,
//! the initialization transient is truncated automatically with an
//! MSER-style rule over windowed latency means, and every reported mean
//! carries a 95% confidence interval from batch means (within one run) or
//! replicate means (across seeds).

/// Minimum number of finite windows before MSER truncation is attempted;
/// below this the series is too short to distinguish transient from noise
/// and the truncation point is 0.
pub const MIN_MSER_WINDOWS: usize = 8;

/// MSER truncation point over a series of windowed means.
///
/// Returns the index of the first window to *keep*: the truncation `d`
/// minimizing `MSER(d) = Σ_{i≥d}(x_i − x̄_d)² / (n−d)²`, searched over the
/// first half of the series (truncating more than half the run is taken
/// as "no steady state found" and clamped). NaN entries (windows that
/// delivered no packets) are ignored for the statistic but keep their
/// place in the index space, so the returned index can be converted to a
/// cycle count by multiplying with the window length.
pub fn mser_truncation(means: &[f64]) -> usize {
    let finite: Vec<(usize, f64)> = means
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, m)| m.is_finite())
        .collect();
    let n = finite.len();
    if n < MIN_MSER_WINDOWS {
        return 0;
    }
    // Suffix sums for O(1) tail mean/variance at every candidate d.
    let mut suf_sum = vec![0.0f64; n + 1];
    let mut suf_sq = vec![0.0f64; n + 1];
    for i in (0..n).rev() {
        suf_sum[i] = suf_sum[i + 1] + finite[i].1;
        suf_sq[i] = suf_sq[i + 1] + finite[i].1 * finite[i].1;
    }
    let mut best = (f64::INFINITY, 0usize);
    for d in 0..=n / 2 {
        let m = (n - d) as f64;
        let mean = suf_sum[d] / m;
        let sse = (suf_sq[d] - m * mean * mean).max(0.0);
        let stat = sse / (m * m);
        if stat < best.0 {
            best = (stat, d);
        }
    }
    // Map the filtered position back to the original series index.
    finite[best.1].0
}

/// Two-sided 97.5% Student-t critical value for `df` degrees of freedom
/// (the multiplier for a 95% confidence interval). Exact to three
/// decimals up to df = 30; the normal limit 1.96 beyond.
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::NAN,
        d if d <= 30 => TABLE[d - 1],
        _ => 1.96,
    }
}

/// Half-width of the 95% confidence interval on the mean of `samples`
/// (batch means or replicate means), `t_{n−1} · s / √n`. NaN entries are
/// skipped; fewer than two finite samples give NaN.
pub fn ci95_half_width(samples: &[f64]) -> f64 {
    let xs: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    t_critical_95(n - 1) * (var / n as f64).sqrt()
}

/// Groups a series into `num_batches` contiguous batches and returns each
/// batch's mean (NaN entries skipped; batches with no finite entries are
/// dropped). Classic batch-means preprocessing: with batches much longer
/// than the autocorrelation time, the batch means are approximately
/// independent and feed [`ci95_half_width`].
pub fn batch_means(series: &[f64], num_batches: usize) -> Vec<f64> {
    let num_batches = num_batches.max(1);
    if series.is_empty() {
        return Vec::new();
    }
    let batch_len = series.len().div_ceil(num_batches);
    series
        .chunks(batch_len)
        .filter_map(|chunk| {
            let xs: Vec<f64> = chunk.iter().copied().filter(|x| x.is_finite()).collect();
            if xs.is_empty() {
                None
            } else {
                Some(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncates_a_step_transient() {
        // 20 windows of low-latency fill-up transient, then steady state
        // around 50 with small noise: MSER must cut near the step.
        let mut series = Vec::new();
        for i in 0..20 {
            series.push(5.0 + i as f64); // ramp 5..25
        }
        for i in 0..80 {
            series.push(50.0 + ((i * 7) % 5) as f64 - 2.0); // 48..52
        }
        let d = mser_truncation(&series);
        assert!((15..=30).contains(&d), "truncation at {d}");
    }

    #[test]
    fn stationary_series_needs_no_truncation() {
        let series: Vec<f64> = (0..100).map(|i| 40.0 + ((i * 13) % 7) as f64).collect();
        let d = mser_truncation(&series);
        assert!(d <= 10, "stationary series truncated at {d}");
    }

    #[test]
    fn short_series_is_left_alone() {
        assert_eq!(mser_truncation(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(mser_truncation(&[]), 0);
    }

    #[test]
    fn nan_windows_are_transparent() {
        // NaN (empty) windows interleaved with a step series: the returned
        // index must refer to the original positions.
        let mut series = vec![f64::NAN; 4];
        series.extend(std::iter::repeat_n(5.0, 10));
        series.extend(std::iter::repeat_n(50.0, 40));
        let d = mser_truncation(&series);
        assert!((10..=20).contains(&d), "truncation at {d}");
    }

    #[test]
    fn ci_matches_hand_computation() {
        // Samples 10, 20, 30: mean 20, s = 10, n = 3, t_2 = 4.303.
        let hw = ci95_half_width(&[10.0, 20.0, 30.0]);
        assert!((hw - 4.303 * 10.0 / 3.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn ci_shrinks_with_sqrt_n() {
        // Same spread, 4x the samples: the half-width must shrink by
        // roughly 2 (t-value differences make it slightly more).
        let small: Vec<f64> = (0..8).map(|i| (i % 4) as f64).collect();
        let large: Vec<f64> = (0..32).map(|i| (i % 4) as f64).collect();
        let ratio = ci95_half_width(&small) / ci95_half_width(&large);
        assert!((1.7..2.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ci_degenerate_cases_are_nan() {
        assert!(ci95_half_width(&[]).is_nan());
        assert!(ci95_half_width(&[1.0]).is_nan());
        assert!(ci95_half_width(&[1.0, f64::NAN]).is_nan());
    }

    #[test]
    fn batch_means_partition_and_average() {
        let series = [1.0, 3.0, f64::NAN, 5.0, 7.0, 9.0];
        let b = batch_means(&series, 3);
        assert_eq!(b, vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn t_table_is_monotone_to_the_normal_limit() {
        let mut prev = f64::INFINITY;
        for df in 1..=40 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t({df}) = {t} not decreasing");
            assert!(t >= 1.96);
            prev = t;
        }
    }
}
