//! Zero-cost runtime invariant checking.
//!
//! The same const-`ACTIVE` pattern as `TraceSink` / `PhaseProfiler`: the
//! network's step loop is generic over an [`InvariantChecker`], and with the
//! default [`NopChecker`] every check (including the per-channel credit
//! audit) compiles away entirely. `noc sim --verify` runs with
//! [`StrictChecker`] instead and reports:
//!
//! * **matching legality** — every cycle, at most one switch grant per
//!   input port and per output port, each grant backed by an output VC,
//!   a credit and a buffered flit;
//! * **credit conservation** — for every channel (router→router link,
//!   terminal injection, terminal ejection), upstream credits plus in-flight
//!   flits plus downstream occupancy plus in-flight return credits equals
//!   the buffer depth, every cycle;
//! * **no flit without a VC** — a body flit can never sit at the head of an
//!   input VC that holds no output VC.
//!
//! Debug builds additionally run the router-local checks inside
//! `debug_assert`-gated code on the ordinary step path, so the whole test
//! suite exercises them for free.

use crate::config::SimConfig;
use crate::network::Network;
use crate::sim::{summarize, SimResult};
use noc_obs::NopProfiler;

/// Per-cycle invariant sink. `ACTIVE = false` implementations compile all
/// checking away.
pub trait InvariantChecker {
    /// Whether checks run at all. The step loop gates every check on this
    /// associated constant, so a `false` impl costs nothing.
    const ACTIVE: bool;

    /// Records that `n` invariant checks were evaluated.
    fn add_checks(&mut self, n: u64);

    /// Records one invariant violation.
    fn violation(&mut self, msg: String);
}

/// The no-op checker: all methods compile away.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopChecker;

impl InvariantChecker for NopChecker {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn add_checks(&mut self, _n: u64) {}

    #[inline(always)]
    fn violation(&mut self, _msg: String) {}
}

/// Cap on stored violation messages (the counter keeps counting).
const MAX_STORED: usize = 64;

/// Collects violations with bounded memory.
#[derive(Clone, Debug, Default)]
pub struct StrictChecker {
    /// Invariant checks evaluated.
    pub checks: u64,
    /// Violations found (all of them, including those not stored).
    pub total_violations: u64,
    /// First [`MAX_STORED`] violation messages.
    pub violations: Vec<String>,
}

impl InvariantChecker for StrictChecker {
    const ACTIVE: bool = true;

    fn add_checks(&mut self, n: u64) {
        self.checks += n;
    }

    fn violation(&mut self, msg: String) {
        self.total_violations += 1;
        if self.violations.len() < MAX_STORED {
            self.violations.push(msg);
        }
    }
}

impl StrictChecker {
    /// Finalizes into a report.
    pub fn into_report(self) -> VerifyReport {
        VerifyReport {
            checks: self.checks,
            total_violations: self.total_violations,
            violations: self.violations,
        }
    }
}

/// Outcome of a verified run.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Invariant checks evaluated across the run.
    pub checks: u64,
    /// Total violations found.
    pub total_violations: u64,
    /// First stored violation messages.
    pub violations: Vec<String>,
}

impl VerifyReport {
    /// True if the run was violation-free.
    pub fn passed(&self) -> bool {
        self.total_violations == 0
    }
}

/// As `run_sim`, but with the runtime invariant checker enabled on every
/// cycle. Returns the ordinary result plus the verification report.
pub fn run_sim_verified(cfg: &SimConfig, warmup: u64, measure: u64) -> (SimResult, VerifyReport) {
    let mut net = Network::new(cfg.clone());
    net.stats.set_window(warmup, warmup + measure);
    let mut chk = StrictChecker::default();
    for _ in 0..warmup + measure {
        net.step_checked(&mut NopProfiler, &mut chk);
    }
    (summarize(&net), chk.into_report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    #[test]
    fn nop_checker_is_inert() {
        let mut n = NopChecker;
        n.add_checks(10);
        n.violation("x".into());
        const { assert!(!NopChecker::ACTIVE) };
    }

    #[test]
    fn strict_checker_caps_stored_messages() {
        let mut s = StrictChecker::default();
        for i in 0..100 {
            s.violation(format!("v{i}"));
        }
        s.add_checks(7);
        let rep = s.into_report();
        assert_eq!(rep.total_violations, 100);
        assert_eq!(rep.violations.len(), MAX_STORED);
        assert_eq!(rep.checks, 7);
        assert!(!rep.passed());
    }

    #[test]
    fn verified_mesh_run_is_clean() {
        let cfg = SimConfig {
            injection_rate: 0.2,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        };
        let (res, rep) = run_sim_verified(&cfg, 300, 800);
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        assert!(rep.checks > 0);
        assert!(res.throughput > 0.0);
    }

    #[test]
    fn verified_run_matches_unverified_run() {
        // The checker is read-only: enabling it must not change behaviour.
        let cfg = SimConfig {
            injection_rate: 0.15,
            ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2)
        };
        let (v, rep) = run_sim_verified(&cfg, 300, 700);
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        let p = crate::sim::run_sim(&cfg, 300, 700);
        assert_eq!(v.avg_latency.to_bits(), p.avg_latency.to_bits());
        assert_eq!(v.throughput.to_bits(), p.throughput.to_bits());
    }
}
