// The only crate in the workspace allowed to contain `unsafe`: the
// parallel engine's epoch/done/stop shard protocol in `network.rs`,
// machine-checked by `crates/mc` and audited by `noc audit` (every block
// must carry a `// SAFETY:` comment; every other crate is
// `#![forbid(unsafe_code)]`).
#![deny(unsafe_op_in_unsafe_fn)]
//! Cycle-accurate network-on-chip simulator (§3.2 of the paper).
//!
//! Models input-queued VC routers with the paper's two-stage pipeline
//! (VA + speculative SA, then ST), credit-based flow control, statically
//! partitioned 8-flit VC buffers and lookahead routing, on the two
//! evaluated 64-node topologies: an 8×8 mesh with dimension-order routing
//! and a 4×4 concentration-4 flattened butterfly with UGAL routing.
//! Traffic follows the request/reply read/write transaction model.
//!
//! The allocators plugged into [`router::Router`] are the behavioural
//! models from `noc-core`, so Figures 13/14 exercise exactly the
//! architectures whose cost Figures 5/6/10/11 measure.

pub mod config;
pub mod digest;
pub mod network;
pub mod packet;
pub mod router;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod steady;
pub mod terminal;
pub mod topology;
pub mod traffic;
pub mod verify;

pub use config::SimConfig;
pub use digest::digest_pairs;
pub use network::Network;
pub use packet::{Flit, PacketKind};
pub use routing::RoutingKind;
pub use sim::{
    latency_curve, latency_curve_with, run_many, run_sim, run_sim_anatomy, run_sim_auto,
    run_sim_engine, run_sim_observed, run_sim_profiled, run_sim_recorded, run_sim_recorded_with,
    run_sim_replicated, saturation_rate, saturation_rate_with, summarize, zero_load_latency,
    Engine, ObservedRun, SimResult, TelemetryOptions, WatchdogTrip,
};
pub use topology::{Topology, TopologyKind};
pub use traffic::TrafficPattern;
pub use verify::{run_sim_verified, InvariantChecker, NopChecker, StrictChecker, VerifyReport};
