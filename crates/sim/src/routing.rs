//! Routing functions: dimension-order for the mesh, UGAL for the flattened
//! butterfly, both used in lookahead form (§3.2).

use crate::packet::{Lookahead, RouteState};
use crate::topology::Topology;

/// Routing algorithm selection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RoutingKind {
    /// Deterministic dimension-order (XY) routing — the paper's mesh
    /// configuration.
    DimensionOrder,
    /// UGAL: per-packet choice between the minimal route and a Valiant
    /// route through a random intermediate, based on local queue occupancy
    /// at the source router, with the given decision threshold.
    Ugal {
        /// Bias toward the minimal route (flits of queue-length product).
        threshold: i64,
    },
    /// Shortest-direction dimension-order routing on a torus with
    /// per-dimension dateline VC classes (Dally–Seitz): packets use the
    /// pre-dateline class (0) until their path crosses the wraparound edge
    /// of the current dimension, the post-dateline class (1) afterwards,
    /// and return to class 0 when they switch dimensions.
    TorusDateline,
    /// Torus routing with the dateline discipline deliberately removed:
    /// every hop stays in resource class 0, so the channel-dependency
    /// graph has the ring cycles the dateline exists to break. This is a
    /// **negative fixture** — the dynamic twin of `noc check`'s
    /// `no-dateline` static fixture — used to exercise the stall watchdog
    /// on a genuine buffer-cycle deadlock. Never a shipped configuration.
    TorusNoDateline,
}

impl RoutingKind {
    /// The paper's configuration for a topology label.
    pub fn for_topology(label: &str) -> RoutingKind {
        match label {
            "mesh" => RoutingKind::DimensionOrder,
            "torus" => RoutingKind::TorusDateline,
            _ => RoutingKind::Ugal { threshold: 3 },
        }
    }

    /// Short name, as used in config digests and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            RoutingKind::DimensionOrder => "dor",
            RoutingKind::Ugal { .. } => "ugal",
            RoutingKind::TorusDateline => "torus_dateline",
            RoutingKind::TorusNoDateline => "torus_nodateline",
        }
    }
}

/// Resource-class indices used on the flattened butterfly: phase-1
/// (non-minimal) traffic uses class 0, phase-2/minimal traffic class 1.
/// This matches `VcAllocSpec::fbfly`, whose transition relation allows
/// 0→0, 0→1 and 1→1. The mesh has a single class 0.
pub const RC_NONMIN: usize = 0;
/// Minimal-phase resource class (fbfly); also the ejection class.
pub const RC_MIN: usize = 1;

/// Computes the routing decision *at* `router` for a packet heading to
/// terminal `dest`: the output port, the resource class of the VCs to
/// acquire at that output, and the updated adaptive-routing state.
///
/// This is the function the upstream router (or source NI) evaluates as
/// lookahead routing while the flit is one hop away.
pub fn route_at(
    topo: &Topology,
    kind: RoutingKind,
    router: usize,
    dest: usize,
    mut state: RouteState,
) -> (Lookahead, RouteState) {
    let (dest_router, _) = topo.terminal_attach(dest);
    match kind {
        RoutingKind::DimensionOrder => {
            let rc = 0;
            if router == dest_router {
                let (_, tp) = topo.terminal_attach(dest);
                return (
                    Lookahead {
                        out_port: tp,
                        resource_class: rc,
                    },
                    state,
                );
            }
            let (x, y) = topo.coords(router);
            let (dx, dy) = topo.coords(dest_router);
            // Ports: 1 = +x, 2 = -x, 3 = +y, 4 = -y (mesh construction).
            let out_port = if x < dx {
                1
            } else if x > dx {
                2
            } else if y < dy {
                3
            } else {
                4
            };
            (
                Lookahead {
                    out_port,
                    resource_class: rc,
                },
                state,
            )
        }
        RoutingKind::Ugal { .. } => {
            // Phase transition: reaching the intermediate ends phase 1.
            if state.intermediate == Some(router) {
                state.intermediate = None;
            }
            if router == dest_router && state.intermediate.is_none() {
                let (_, tp) = topo.terminal_attach(dest);
                return (
                    Lookahead {
                        out_port: tp,
                        resource_class: RC_MIN,
                    },
                    state,
                );
            }
            let target = state.intermediate.unwrap_or(dest_router);
            let rc = if state.intermediate.is_some() {
                RC_NONMIN
            } else {
                RC_MIN
            };
            // Minimal fbfly routing toward `target`: fix x, then y; each
            // correction is a single express hop.
            let (x, y) = topo.coords(router);
            let (tx, ty) = topo.coords(target);
            let next = if x != tx {
                ty_row(topo, y, tx)
            } else {
                debug_assert_ne!(y, ty, "route_at called at target router");
                tx_col(topo, x, ty)
            };
            let Some(out_port) = topo.port_towards(router, next) else {
                unreachable!("fbfly routers are fully connected per dimension")
            };
            (
                Lookahead {
                    out_port,
                    resource_class: rc,
                },
                state,
            )
        }
        RoutingKind::TorusDateline => torus_route(topo, router, dest, state, true),
        RoutingKind::TorusNoDateline => torus_route(topo, router, dest, state, false),
    }
}

/// Torus DOR with per-dimension datelines. Direction choice is
/// shortest-path with ties broken toward +; the dateline of each ring sits
/// on its wraparound edge. With `dateline` off, every hop stays in class 0
/// (the deliberately deadlock-prone watchdog fixture).
fn torus_route(
    topo: &Topology,
    router: usize,
    dest: usize,
    mut state: RouteState,
    dateline: bool,
) -> (Lookahead, RouteState) {
    let (dest_router, _) = topo.terminal_attach(dest);
    if router == dest_router {
        let (_, tp) = topo.terminal_attach(dest);
        // Ejection may come from either class; use the post class.
        return (
            Lookahead {
                out_port: tp,
                resource_class: if dateline { 1 } else { 0 },
            },
            state,
        );
    }
    let (w, h) = (topo.width, topo.height);
    let (x, y) = topo.coords(router);
    let (tx, ty) = topo.coords(dest_router);
    let (out_port, wraps, in_y) = if x != tx {
        let fwd = (tx + w - x) % w;
        let go_plus = fwd <= w - fwd; // ties toward +
        if go_plus {
            (1, x == w - 1, false)
        } else {
            (2, x == 0, false)
        }
    } else {
        let fwd = (ty + h - y) % h;
        let go_plus = fwd <= h - fwd;
        if go_plus {
            (3, y == h - 1, true)
        } else {
            (4, y == 0, true)
        }
    };
    // Dimension change resets the dateline flag.
    if in_y != state.dateline_in_y {
        state.crossed_dateline = false;
        state.dateline_in_y = in_y;
    }
    if wraps {
        state.crossed_dateline = true;
    }
    let rc = if dateline && state.crossed_dateline {
        1
    } else {
        0
    };
    (
        Lookahead {
            out_port,
            resource_class: rc,
        },
        state,
    )
}

fn ty_row(topo: &Topology, y: usize, tx: usize) -> usize {
    y * topo.width + tx
}

fn tx_col(topo: &Topology, x: usize, ty: usize) -> usize {
    ty * topo.width + x
}

/// Queue-occupancy view UGAL consults at injection time (§4.2, Singh '05):
/// an estimate of the downstream buffer occupancy of an output port,
/// restricted to one resource class.
pub trait CongestionProbe {
    /// Occupied downstream slots at `out_port` for VCs of `(msg_class, rc)`.
    fn occupancy(&self, out_port: usize, msg_class: usize, rc: usize) -> usize;
}

/// UGAL-L source decision: compare the minimal route against one candidate
/// Valiant route through `intermediate` using locally observable queue
/// occupancy, weighted by hop count.
pub fn ugal_choose(
    topo: &Topology,
    threshold: i64,
    src_router: usize,
    dest: usize,
    msg_class: usize,
    intermediate: usize,
    probe: &dyn CongestionProbe,
) -> RouteState {
    let (dest_router, _) = topo.terminal_attach(dest);
    if dest_router == src_router || intermediate == src_router || intermediate == dest_router {
        return RouteState {
            intermediate: None,
            ..RouteState::default()
        };
    }
    let h_min = topo.min_hops(src_router, dest_router) as i64;
    let h_non =
        (topo.min_hops(src_router, intermediate) + topo.min_hops(intermediate, dest_router)) as i64;
    // First hops of each candidate.
    let min_la = route_at(
        topo,
        RoutingKind::Ugal { threshold },
        src_router,
        dest,
        RouteState {
            intermediate: None,
            ..RouteState::default()
        },
    )
    .0;
    let non_la = route_at(
        topo,
        RoutingKind::Ugal { threshold },
        src_router,
        dest,
        RouteState {
            intermediate: Some(intermediate),
            ..RouteState::default()
        },
    )
    .0;
    let q_min = probe.occupancy(min_la.out_port, msg_class, RC_MIN) as i64;
    let q_non = probe.occupancy(non_la.out_port, msg_class, RC_NONMIN) as i64;
    if q_min * h_min <= q_non * h_non + threshold {
        RouteState {
            intermediate: None,
            ..RouteState::default()
        }
    } else {
        RouteState {
            intermediate: Some(intermediate),
            ..RouteState::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    struct FlatProbe(usize);
    impl CongestionProbe for FlatProbe {
        fn occupancy(&self, _: usize, _: usize, _: usize) -> usize {
            self.0
        }
    }

    fn walk_mesh(src_t: usize, dest_t: usize) -> Vec<usize> {
        let topo = TopologyKind::Mesh8x8.build();
        let (mut r, _) = topo.terminal_attach(src_t);
        let mut state = RouteState::default();
        let mut path = vec![r];
        for _ in 0..32 {
            let (la, s) = route_at(&topo, RoutingKind::DimensionOrder, r, dest_t, state);
            state = s;
            if let Some(t) = topo.port_terminal(r, la.out_port) {
                assert_eq!(t, dest_t);
                return path;
            }
            r = topo.link(r, la.out_port).unwrap().to_router;
            path.push(r);
        }
        panic!("routing loop");
    }

    #[test]
    fn dor_reaches_destination_in_min_hops() {
        let topo = TopologyKind::Mesh8x8.build();
        for (s, d) in [(0, 63), (63, 0), (7, 56), (12, 12), (5, 6)] {
            let path = walk_mesh(s, d);
            let (sr, _) = topo.terminal_attach(s);
            let (dr, _) = topo.terminal_attach(d);
            assert_eq!(path.len() - 1, topo.min_hops(sr, dr), "{s}->{d}");
        }
    }

    #[test]
    fn dor_is_x_first() {
        // From router 0 to router 9 (x=1, y=1): first hop must be +x.
        let topo = TopologyKind::Mesh8x8.build();
        let (la, _) = route_at(
            &topo,
            RoutingKind::DimensionOrder,
            0,
            9,
            RouteState::default(),
        );
        assert_eq!(la.out_port, 1);
    }

    fn walk_fbfly(src_t: usize, dest_t: usize, state0: RouteState) -> (Vec<usize>, Vec<usize>) {
        let topo = TopologyKind::FlattenedButterfly4x4.build();
        let (mut r, _) = topo.terminal_attach(src_t);
        let mut state = state0;
        let mut path = vec![r];
        let mut classes = Vec::new();
        for _ in 0..16 {
            let (la, s) = route_at(&topo, RoutingKind::Ugal { threshold: 3 }, r, dest_t, state);
            state = s;
            classes.push(la.resource_class);
            if let Some(t) = topo.port_terminal(r, la.out_port) {
                assert_eq!(t, dest_t);
                return (path, classes);
            }
            r = topo.link(r, la.out_port).unwrap().to_router;
            path.push(r);
        }
        panic!("routing loop");
    }

    #[test]
    fn fbfly_minimal_within_two_hops() {
        for (s, d) in [(0, 63), (0, 12), (5, 9), (17, 18)] {
            let (path, classes) = walk_fbfly(s, d, RouteState::default());
            assert!(path.len() <= 3, "{s}->{d}: {path:?}");
            // Minimal route: all hops in the minimal class.
            assert!(classes.iter().all(|&c| c == RC_MIN), "{classes:?}");
        }
    }

    #[test]
    fn fbfly_valiant_goes_through_intermediate_with_class_transition() {
        let topo = TopologyKind::FlattenedButterfly4x4.build();
        // src terminal 0 (router 0), dest terminal 63 (router 15),
        // intermediate router 6.
        let (path, classes) = walk_fbfly(
            0,
            63,
            RouteState {
                intermediate: Some(6),
                ..RouteState::default()
            },
        );
        assert!(path.contains(&6), "{path:?}");
        let _ = topo;
        // Classes: non-minimal until the intermediate, minimal afterwards,
        // and the transition is monotonic (never back to non-minimal).
        let first_min = classes.iter().position(|&c| c == RC_MIN).unwrap();
        assert!(classes[..first_min].iter().all(|&c| c == RC_NONMIN));
        assert!(classes[first_min..].iter().all(|&c| c == RC_MIN));
        assert!(first_min >= 1, "phase 1 should cover at least one hop");
    }

    #[test]
    fn ugal_prefers_minimal_at_zero_load() {
        let topo = TopologyKind::FlattenedButterfly4x4.build();
        let s = ugal_choose(&topo, 3, 0, 63, 0, 6, &FlatProbe(0));
        assert_eq!(s.intermediate, None);
    }

    #[test]
    fn ugal_diverts_under_congestion_bias() {
        // Make the minimal path look very congested relative to the
        // non-minimal one by probing classes differently.
        struct Biased;
        impl CongestionProbe for Biased {
            fn occupancy(&self, _p: usize, _m: usize, rc: usize) -> usize {
                if rc == RC_MIN {
                    40
                } else {
                    0
                }
            }
        }
        let topo = TopologyKind::FlattenedButterfly4x4.build();
        let s = ugal_choose(&topo, 3, 0, 63, 0, 6, &Biased);
        assert_eq!(s.intermediate, Some(6));
    }

    #[test]
    fn degenerate_intermediates_collapse_to_minimal() {
        let topo = TopologyKind::FlattenedButterfly4x4.build();
        for i in [0usize, 15] {
            let s = ugal_choose(&topo, 3, 0, 63, 0, i, &FlatProbe(100));
            assert_eq!(s.intermediate, None, "intermediate {i}");
        }
    }
}
