//! Synthetic traffic patterns and the request/reply transaction model
//! (§3.2).

use rand::Rng;

/// The terminal-space shape a traffic pattern operates on: the router grid
/// plus the terminals-per-router concentration. Patterns that permute
/// coordinates (tornado) need the grid; the bit-permutation patterns only
/// use the total terminal count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TrafficGeometry {
    /// Router grid width.
    pub width: usize,
    /// Router grid height.
    pub height: usize,
    /// Terminals per router.
    pub concentration: usize,
}

impl TrafficGeometry {
    /// Total number of terminals.
    pub fn terminals(&self) -> usize {
        self.width * self.height * self.concentration
    }
}

/// Spatial traffic patterns. The paper presents uniform random results and
/// notes its conclusions are "largely invariant to traffic pattern
/// selection"; the additional patterns support that ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficPattern {
    /// Uniformly random destination (excluding self).
    UniformRandom,
    /// Destination is the bit complement of the source.
    BitComplement,
    /// 8×8 matrix transpose of the terminal index.
    Transpose,
    /// Per-dimension half-ring offset: ⌈k/2⌉−1 hops along each dimension
    /// of the router grid (Dally & Towles §3.2), the adversarial pattern
    /// for rings and tori.
    Tornado,
    /// One-bit rotate left of the terminal index.
    Shuffle,
}

impl TrafficPattern {
    /// Chooses the destination terminal for a packet from `src` on a
    /// network of shape `geom` (`geom.terminals()` must be a power of two
    /// for the bit-permutation patterns).
    pub fn dest(self, src: usize, geom: TrafficGeometry, rng: &mut impl Rng) -> usize {
        let n = geom.terminals();

        match self {
            TrafficPattern::UniformRandom => {
                // Uniform over the n-1 other terminals.
                let mut d = rng.gen_range(0..n - 1);
                if d >= src {
                    d += 1;
                }
                d
            }
            TrafficPattern::BitComplement => {
                debug_assert!(n.is_power_of_two());
                !src & (n - 1)
            }
            TrafficPattern::Transpose => {
                debug_assert!(n.is_power_of_two());
                let bits = n.trailing_zeros() as usize;
                let half = bits / 2;
                let lo = src & ((1 << half) - 1);
                let hi = src >> half;
                (lo << half) | hi
            }
            TrafficPattern::Tornado => {
                // Offset ⌈k/2⌉−1 within each dimension of the router grid;
                // terminals keep their slot at the destination router. The
                // old flat form `(src + n/2 - 1) % n` wrapped a half-ring
                // through *terminal* space, which is not the literature's
                // tornado on a k-ary 2-dimensional network.
                let (w, h, c) = (geom.width, geom.height, geom.concentration);
                let router = src / c;
                let slot = src % c;
                let (x, y) = (router % w, router / w);
                let nx = (x + w.div_ceil(2) - 1) % w;
                let ny = (y + h.div_ceil(2) - 1) % h;
                (ny * w + nx) * c + slot
            }
            TrafficPattern::Shuffle => {
                debug_assert!(n.is_power_of_two());
                let bits = n.trailing_zeros() as usize;
                ((src << 1) | (src >> (bits - 1))) & (n - 1)
            }
        }
    }

    /// Label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::BitComplement => "bitcomp",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Shuffle => "shuffle",
        }
    }

    /// Parses a CLI/spec pattern name (the [`TrafficPattern::label`]
    /// strings).
    pub fn parse(s: &str) -> Option<TrafficPattern> {
        match s {
            "uniform" => Some(TrafficPattern::UniformRandom),
            "bitcomp" => Some(TrafficPattern::BitComplement),
            "transpose" => Some(TrafficPattern::Transpose),
            "tornado" => Some(TrafficPattern::Tornado),
            "shuffle" => Some(TrafficPattern::Shuffle),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// The 8×8 mesh/torus terminal space.
    const MESH: TrafficGeometry = TrafficGeometry {
        width: 8,
        height: 8,
        concentration: 1,
    };

    /// The 4×4 concentration-4 flattened butterfly terminal space.
    const FBFLY: TrafficGeometry = TrafficGeometry {
        width: 4,
        height: 4,
        concentration: 4,
    };

    #[test]
    fn uniform_never_targets_self_and_covers_space() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = TrafficPattern::UniformRandom.dest(17, MESH, &mut rng);
            assert_ne!(d, 17);
            assert!(d < 64);
            seen.insert(d);
        }
        assert_eq!(seen.len(), 63);
    }

    #[test]
    fn permutation_patterns_are_permutations() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for geom in [MESH, FBFLY] {
            for p in [
                TrafficPattern::BitComplement,
                TrafficPattern::Transpose,
                TrafficPattern::Tornado,
                TrafficPattern::Shuffle,
            ] {
                let dests: Vec<usize> = (0..64).map(|s| p.dest(s, geom, &mut rng)).collect();
                let unique: std::collections::HashSet<_> = dests.iter().collect();
                assert_eq!(unique.len(), 64, "{p:?} not a permutation on {geom:?}");
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        // terminal 8*a + b -> 8*b + a
        assert_eq!(
            TrafficPattern::Transpose.dest(8 * 2 + 5, MESH, &mut rng),
            8 * 5 + 2
        );
    }

    #[test]
    fn bit_complement() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(TrafficPattern::BitComplement.dest(0, MESH, &mut rng), 63);
        assert_eq!(
            TrafficPattern::BitComplement.dest(0b101010, MESH, &mut rng),
            0b010101
        );
    }

    /// Regression for the flat terminal-space tornado: on the 8×8 mesh the
    /// destination must be offset ⌈8/2⌉−1 = 3 in *each* dimension, not a
    /// half-ring walk through the linear terminal index (the old code sent
    /// terminal 0 to (0 + 32 − 1) % 64 = 31 instead of router (3, 3) = 27).
    #[test]
    fn tornado_is_per_dimension_on_the_mesh() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        // src (0,0) -> (3,3) = 27; old flat form gave (0+31)%64 = 31.
        assert_eq!(TrafficPattern::Tornado.dest(0, MESH, &mut rng), 27);
        for src in 0..64usize {
            let d = TrafficPattern::Tornado.dest(src, MESH, &mut rng);
            let (sx, sy) = (src % 8, src / 8);
            let (dx, dy) = (d % 8, d / 8);
            assert_eq!(dx, (sx + 3) % 8, "x offset for src {src}");
            assert_eq!(dy, (sy + 3) % 8, "y offset for src {src}");
        }
    }

    /// On the concentrated fbfly the tornado offset is ⌈4/2⌉−1 = 1 per
    /// dimension of the *router* grid, and a terminal keeps its slot at
    /// the destination router.
    #[test]
    fn tornado_respects_concentration() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for src in 0..64usize {
            let d = TrafficPattern::Tornado.dest(src, FBFLY, &mut rng);
            assert_eq!(d % 4, src % 4, "slot preserved for src {src}");
            let (sr, dr) = (src / 4, d / 4);
            assert_eq!(dr % 4, (sr % 4 + 1) % 4, "router x for src {src}");
            assert_eq!(dr / 4, (sr / 4 + 1) % 4, "router y for src {src}");
        }
    }

    #[test]
    fn parse_round_trips_labels() {
        for p in [
            TrafficPattern::UniformRandom,
            TrafficPattern::BitComplement,
            TrafficPattern::Transpose,
            TrafficPattern::Tornado,
            TrafficPattern::Shuffle,
        ] {
            assert_eq!(TrafficPattern::parse(p.label()), Some(p));
        }
        assert_eq!(TrafficPattern::parse("hotspot"), None);
    }
}
