//! Synthetic traffic patterns and the request/reply transaction model
//! (§3.2).

use rand::Rng;

/// Spatial traffic patterns. The paper presents uniform random results and
/// notes its conclusions are "largely invariant to traffic pattern
/// selection"; the additional patterns support that ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficPattern {
    /// Uniformly random destination (excluding self).
    UniformRandom,
    /// Destination is the bit complement of the source.
    BitComplement,
    /// 8×8 matrix transpose of the terminal index.
    Transpose,
    /// Half-ring offset in the terminal space.
    Tornado,
    /// One-bit rotate left of the terminal index.
    Shuffle,
}

impl TrafficPattern {
    /// Chooses the destination terminal for a packet from `src` among `n`
    /// terminals (`n` must be a power of two for the bit-permutations).
    pub fn dest(self, src: usize, n: usize, rng: &mut impl Rng) -> usize {
        debug_assert!(n.is_power_of_two());
        let bits = n.trailing_zeros() as usize;

        match self {
            TrafficPattern::UniformRandom => {
                // Uniform over the n-1 other terminals.
                let mut d = rng.gen_range(0..n - 1);
                if d >= src {
                    d += 1;
                }
                d
            }
            TrafficPattern::BitComplement => !src & (n - 1),
            TrafficPattern::Transpose => {
                let half = bits / 2;
                let lo = src & ((1 << half) - 1);
                let hi = src >> half;
                (lo << half) | hi
            }
            TrafficPattern::Tornado => (src + n / 2 - 1) % n,
            TrafficPattern::Shuffle => ((src << 1) | (src >> (bits - 1))) & (n - 1),
        }
    }

    /// Label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform",
            TrafficPattern::BitComplement => "bitcomp",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Shuffle => "shuffle",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_never_targets_self_and_covers_space() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = TrafficPattern::UniformRandom.dest(17, 64, &mut rng);
            assert_ne!(d, 17);
            assert!(d < 64);
            seen.insert(d);
        }
        assert_eq!(seen.len(), 63);
    }

    #[test]
    fn permutation_patterns_are_permutations() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for p in [
            TrafficPattern::BitComplement,
            TrafficPattern::Transpose,
            TrafficPattern::Tornado,
            TrafficPattern::Shuffle,
        ] {
            let dests: Vec<usize> = (0..64).map(|s| p.dest(s, 64, &mut rng)).collect();
            let unique: std::collections::HashSet<_> = dests.iter().collect();
            assert_eq!(unique.len(), 64, "{p:?} not a permutation");
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        // terminal 8*a + b -> 8*b + a
        assert_eq!(
            TrafficPattern::Transpose.dest(8 * 2 + 5, 64, &mut rng),
            8 * 5 + 2
        );
    }

    #[test]
    fn bit_complement() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(TrafficPattern::BitComplement.dest(0, 64, &mut rng), 63);
        assert_eq!(
            TrafficPattern::BitComplement.dest(0b101010, 64, &mut rng),
            0b010101
        );
    }
}
