//! Network terminals (network interfaces).
//!
//! Each terminal injects request packets according to a geometric process
//! with configurable rate, generates the matching reply one cycle after a
//! request's tail arrives, and gives replies strict priority over the
//! injection of new requests (§3.2). Ejection-side buffering is an ideal
//! sink: credits return to the router as soon as a flit arrives.

use crate::packet::{Flit, PacketKind, RouteState};
use crate::routing::{route_at, ugal_choose, CongestionProbe, RoutingKind, RC_MIN, RC_NONMIN};
use crate::topology::Topology;
use crate::traffic::{TrafficGeometry, TrafficPattern};
use noc_core::VcAllocSpec;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A packet waiting in a terminal queue.
#[derive(Clone, Copy, Debug)]
pub struct PendingPacket {
    /// Packet kind.
    pub kind: PacketKind,
    /// Destination terminal.
    pub dest: usize,
    /// Creation cycle (start of latency measurement).
    pub birth: u64,
}

/// A packet currently streaming its flits into the router.
#[derive(Clone, Debug)]
struct ActivePacket {
    flits: Vec<Flit>,
    next: usize,
    /// Router-input VC it occupies.
    vc: usize,
}

/// One network terminal.
pub struct Terminal {
    /// Terminal id.
    pub id: usize,
    /// Attached router.
    pub router: usize,
    /// Input/output port at that router.
    pub port: usize,
    /// Requests waiting to inject.
    pub src_queue: VecDeque<PendingPacket>,
    /// Replies waiting to inject (strict priority).
    pub reply_queue: VecDeque<PendingPacket>,
    /// In-flight packet per message class (requests and replies stream
    /// independently so reply priority is not blocked behind a stalled
    /// request).
    active: [Option<ActivePacket>; 2],
    /// Recycled flit buffer per message class from the last completed
    /// packet, so steady-state injection never allocates (a packet's flit
    /// count is bounded by the payload size, so one spare per class reaches
    /// a fixed point).
    spare_flits: [Vec<Flit>; 2],
    /// Credits per router-input VC at the terminal port.
    credits: Vec<usize>,
    /// VC busy flags (held by an active packet until its tail is sent).
    vc_busy: Vec<bool>,
    rng: rand::rngs::StdRng,
    spec: VcAllocSpec,
    routing: RoutingKind,
    /// Payload flits per data-bearing packet; sizes the flits this terminal
    /// builds and the offered-load divisor (the old code hardcoded the
    /// divisor 6.0, silently de-calibrating any non-default packet length).
    payload_flits: usize,
    /// Monotonic per-terminal packet sequence number; combined with the
    /// terminal id it yields a collision-free packet id for any run length
    /// (the old `(id << 40) | (now << 8) | class` packing aliased across
    /// terminals once `now` reached 2^32, and within a terminal whenever
    /// more than 256 packets shared a cycle).
    next_seq: u64,
    /// Flits injected (for offered-load accounting).
    pub flits_injected: u64,
    /// Packets fully received at this terminal.
    pub packets_received: u64,
    /// Packets started on a minimal route (UGAL bookkeeping).
    pub minimal_started: u64,
    /// Packets started on a non-minimal (Valiant) route.
    pub nonminimal_started: u64,
    /// Debug-build tracking of partially received packets, to assert
    /// per-packet in-order, gap-free delivery.
    #[cfg(debug_assertions)]
    receiving: std::collections::HashMap<u64, usize>,
}

/// What a terminal did in one cycle.
#[derive(Clone, Debug, Default)]
pub struct TerminalOutputs {
    /// At most one flit entering the injection link: `(vc, flit)`.
    pub flit: Option<(usize, Flit)>,
}

impl Terminal {
    /// Creates an idle terminal.
    pub fn new(
        id: usize,
        topo: &Topology,
        spec: &VcAllocSpec,
        routing: RoutingKind,
        buf_depth: usize,
        payload_flits: usize,
        seed: u64,
    ) -> Self {
        let (router, port) = topo.terminal_attach(id);
        let v = spec.total_vcs();
        Terminal {
            id,
            router,
            port,
            src_queue: VecDeque::new(),
            reply_queue: VecDeque::new(),
            active: [None, None],
            spare_flits: [Vec::new(), Vec::new()],
            credits: vec![buf_depth; v],
            vc_busy: vec![false; v],
            rng: rand::rngs::StdRng::seed_from_u64(
                seed ^ (id as u64).wrapping_mul(0x9e3779b97f4a7c15),
            ),
            spec: spec.clone(),
            routing,
            payload_flits,
            next_seq: 0,
            flits_injected: 0,
            packets_received: 0,
            minimal_started: 0,
            nonminimal_started: 0,
            // At most `v` packets interleave at the ejection port (one per
            // VC), so sizing for several times that keeps the map's load
            // below the in-place-rehash threshold forever: tombstone cleanup
            // never takes the allocating resize path, and the debug tracking
            // stays compatible with the steady-state zero-alloc audit.
            #[cfg(debug_assertions)]
            receiving: std::collections::HashMap::with_capacity(4 * v),
        }
    }

    /// Returns a credit for router-input VC `vc`.
    pub fn accept_credit(&mut self, vc: usize) {
        self.credits[vc] += 1;
    }

    /// Credits currently held for router-input VC `vc` (used by the
    /// runtime credit-conservation audit).
    pub fn credits(&self, vc: usize) -> usize {
        self.credits[vc]
    }

    /// Handles an ejected flit; on a request tail, queues the reply for the
    /// next cycle. Returns the flit for stats processing.
    pub fn receive(&mut self, flit: &Flit, now: u64) {
        #[cfg(debug_assertions)]
        {
            // Flits of one packet must arrive in order without gaps
            // (wormhole VC routing never reorders within a packet).
            let next = self.receiving.entry(flit.packet_id).or_insert(0);
            assert_eq!(
                *next, flit.flit_index,
                "terminal {}: out-of-order flit for packet {}",
                self.id, flit.packet_id
            );
            *next += 1;
            if flit.tail {
                self.receiving.remove(&flit.packet_id);
            }
        }
        if flit.tail {
            self.packets_received += 1;
            if let Some(reply) = flit.kind.reply_kind() {
                // "a corresponding reply packet is generated in the next
                // cycle and sent back to the source terminal" (§3.2).
                self.reply_queue.push_back(PendingPacket {
                    kind: reply,
                    dest: flit.src,
                    birth: now + 1,
                });
            }
        }
    }

    /// Generates new request transactions for this cycle: a geometric
    /// process injecting read/write transactions (50/50) such that the
    /// total offered load (request + reply flits) equals `rate`
    /// flits/cycle/terminal; each transaction carries
    /// `payload_flits + 2` flits total (6 at the paper's default).
    pub fn generate_traffic(
        &mut self,
        rate: f64,
        pattern: TrafficPattern,
        geom: TrafficGeometry,
        now: u64,
    ) {
        self.generate_traffic_burst(rate, pattern, geom, now, 1);
    }

    /// As [`Terminal::generate_traffic`], but each transaction is a burst
    /// of `burst` request packets to one destination (§5.4's DMA-like
    /// throughput-oriented workload). The firing probability is scaled so
    /// the offered load in flits/cycle stays equal to `rate`.
    pub fn generate_traffic_burst(
        &mut self,
        rate: f64,
        pattern: TrafficPattern,
        geom: TrafficGeometry,
        now: u64,
        burst: usize,
    ) {
        let txn_flits = PacketKind::mean_transaction_flits(self.payload_flits);
        let p_txn = rate / (txn_flits * burst as f64);
        if p_txn > 0.0 && self.rng.gen_bool(p_txn.min(1.0)) {
            let dest = pattern.dest(self.id, geom, &mut self.rng);
            for _ in 0..burst {
                let kind = if self.rng.gen_bool(0.5) {
                    PacketKind::ReadRequest
                } else {
                    PacketKind::WriteRequest
                };
                self.src_queue.push_back(PendingPacket {
                    kind,
                    dest,
                    birth: now,
                });
            }
        }
    }

    /// Tries to start queued packets and sends at most one flit into the
    /// injection link. `probe` exposes the attached router's queue
    /// occupancy for the UGAL decision.
    pub fn step(
        &mut self,
        topo: &Topology,
        probe: &dyn CongestionProbe,
        now: u64,
    ) -> TerminalOutputs {
        // Start new packets (one slot per message class); replies first.
        for class in [1usize, 0] {
            if self.active[class].is_some() {
                continue;
            }
            let front = if class == 1 {
                self.reply_queue.front()
            } else {
                self.src_queue.front()
            };
            let Some(&pkt) = front else { continue };
            if pkt.birth > now {
                continue;
            }
            debug_assert_eq!(pkt.kind.msg_class(), class);
            if let Some(active) = self.try_start(topo, probe, pkt, now) {
                if class == 1 {
                    self.reply_queue.pop_front();
                } else {
                    self.src_queue.pop_front();
                }
                self.active[class] = Some(active);
            }
        }
        // Send one flit; replies have priority when both classes could send.
        for class in [1usize, 0] {
            let Some(active) = self.active[class].as_mut() else {
                continue;
            };
            if self.credits[active.vc] == 0 {
                continue;
            }
            let mut flit = active.flits[active.next];
            flit.injected = now;
            active.next += 1;
            self.credits[active.vc] -= 1;
            self.flits_injected += 1;
            let vc = active.vc;
            if active.next == active.flits.len() {
                self.vc_busy[vc] = false;
                if let Some(mut done) = self.active[class].take() {
                    done.flits.clear();
                    self.spare_flits[class] = done.flits;
                }
            }
            return TerminalOutputs {
                flit: Some((vc, flit)),
            };
        }
        TerminalOutputs::default()
    }

    /// Builds the flits of `pkt` and claims an injection VC, if one of the
    /// right class is free with credits.
    fn try_start(
        &mut self,
        topo: &Topology,
        probe: &dyn CongestionProbe,
        pkt: PendingPacket,
        now: u64,
    ) -> Option<ActivePacket> {
        let m = pkt.kind.msg_class();
        // Routing decision (mesh: trivial; fbfly: UGAL at the source).
        let route_state = match self.routing {
            RoutingKind::DimensionOrder
            | RoutingKind::TorusDateline
            | RoutingKind::TorusNoDateline => RouteState::default(),
            RoutingKind::Ugal { threshold } => {
                let intermediate = self.rng.gen_range(0..topo.num_routers());
                ugal_choose(
                    topo,
                    threshold,
                    self.router,
                    pkt.dest,
                    m,
                    intermediate,
                    probe,
                )
            }
        };
        // Injection-link resource class: phase 1 non-minimal, else minimal.
        let inj_rc = match self.routing {
            // Torus packets start pre-dateline (class 0); the no-dateline
            // fixture never leaves it.
            RoutingKind::DimensionOrder
            | RoutingKind::TorusDateline
            | RoutingKind::TorusNoDateline => 0,
            RoutingKind::Ugal { .. } => {
                if route_state.intermediate.is_some() {
                    RC_NONMIN
                } else {
                    RC_MIN
                }
            }
        };
        let base = self.spec.class_base(m, inj_rc);
        let vc = (base..base + self.spec.vcs_per_class())
            .find(|&v| !self.vc_busy[v] && self.credits[v] > 0)?;
        if matches!(self.routing, RoutingKind::Ugal { .. }) {
            if route_state.intermediate.is_some() {
                self.nonminimal_started += 1;
            } else {
                self.minimal_started += 1;
            }
        }
        // Lookahead for the attached router.
        let (lookahead, route_state) =
            route_at(topo, self.routing, self.router, pkt.dest, route_state);
        let len = pkt.kind.len_with(self.payload_flits);
        // 16 bits of terminal id over a 48-bit per-terminal sequence: ids
        // stay unique for 2^48 packets per terminal, independent of the
        // cycle count or how many packets share a cycle.
        debug_assert!(self.id < 1 << 16 && self.next_seq < 1 << 48);
        let packet_id = (self.id as u64) << 48 | self.next_seq;
        self.next_seq += 1;
        let mut flits = std::mem::take(&mut self.spare_flits[m]);
        flits.clear();
        flits.extend((0..len).map(|i| Flit {
            packet_id,
            flit_index: i,
            head: i == 0,
            tail: i == len - 1,
            kind: pkt.kind,
            src: self.id,
            dest: pkt.dest,
            birth: pkt.birth,
            injected: now,
            lookahead,
            route_state,
        }));
        self.vc_busy[vc] = true;
        Some(ActivePacket { flits, next: 0, vc })
    }

    /// Flits queued but not yet injected (backlog indicator for saturation
    /// detection).
    pub fn backlog_packets(&self) -> usize {
        self.src_queue.len() + self.reply_queue.len() + self.active.iter().flatten().count()
    }
}

/// A no-congestion probe for tests and for mesh (where no adaptive decision
/// is made).
pub struct NullProbe;

impl CongestionProbe for NullProbe {
    fn occupancy(&self, _: usize, _: usize, _: usize) -> usize {
        0
    }
}

/// Probe over a real router.
pub struct RouterProbe<'a>(pub &'a crate::router::Router);

impl CongestionProbe for RouterProbe<'_> {
    fn occupancy(&self, out_port: usize, msg_class: usize, rc: usize) -> usize {
        self.0.output_occupancy(out_port, msg_class, rc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    fn mesh_terminal() -> (Terminal, Topology) {
        let topo = TopologyKind::Mesh8x8.build();
        let spec = VcAllocSpec::mesh(1);
        let t = Terminal::new(5, &topo, &spec, RoutingKind::DimensionOrder, 8, 4, 42);
        (t, topo)
    }

    #[test]
    fn injects_one_flit_per_cycle_with_serialization() {
        let (mut t, topo) = mesh_terminal();
        t.src_queue.push_back(PendingPacket {
            kind: PacketKind::WriteRequest,
            dest: 20,
            birth: 0,
        });
        let mut sent = 0;
        for now in 0..5 {
            let o = t.step(&topo, &NullProbe, now);
            assert!(o.flit.is_some(), "cycle {now}");
            sent += 1;
        }
        assert_eq!(sent, 5);
        assert!(t.step(&topo, &NullProbe, 5).flit.is_none());
        // Head and tail flags.
        assert_eq!(t.flits_injected, 5);
    }

    #[test]
    fn credits_stall_injection() {
        let (mut t, topo) = mesh_terminal();
        // Two 5-flit packets = 10 flits against 8 credits on the request VC.
        for dest in [20, 21] {
            t.src_queue.push_back(PendingPacket {
                kind: PacketKind::WriteRequest,
                dest,
                birth: 0,
            });
        }
        let mut total = 0;
        for now in 0..20 {
            if t.step(&topo, &NullProbe, now).flit.is_some() {
                total += 1;
            }
        }
        assert_eq!(total, 8, "8 credits bound injection");
        t.accept_credit(0);
        let mut more = 0;
        for now in 20..25 {
            if t.step(&topo, &NullProbe, now).flit.is_some() {
                more += 1;
            }
        }
        assert_eq!(more, 1);
    }

    #[test]
    fn replies_have_priority_over_requests() {
        let (mut t, topo) = mesh_terminal();
        t.src_queue.push_back(PendingPacket {
            kind: PacketKind::ReadRequest,
            dest: 20,
            birth: 0,
        });
        t.reply_queue.push_back(PendingPacket {
            kind: PacketKind::WriteReply,
            dest: 21,
            birth: 0,
        });
        let o = t.step(&topo, &NullProbe, 0);
        let (_, flit) = o.flit.unwrap();
        assert_eq!(flit.kind, PacketKind::WriteReply);
    }

    #[test]
    fn reply_generated_next_cycle_on_request_tail() {
        let (mut t, _) = mesh_terminal();
        let f = Flit {
            packet_id: 9,
            flit_index: 0,
            head: true,
            tail: true,
            kind: PacketKind::ReadRequest,
            src: 30,
            dest: 5,
            birth: 0,
            injected: 0,
            lookahead: crate::packet::Lookahead {
                out_port: 0,
                resource_class: 0,
            },
            route_state: RouteState::default(),
        };
        t.receive(&f, 100);
        assert_eq!(t.reply_queue.len(), 1);
        let r = t.reply_queue[0];
        assert_eq!(r.kind, PacketKind::ReadReply);
        assert_eq!(r.dest, 30);
        assert_eq!(r.birth, 101);
        // Not started before its birth cycle.
        let topo = TopologyKind::Mesh8x8.build();
        assert!(t.step(&topo, &NullProbe, 100).flit.is_none());
        assert!(t.step(&topo, &NullProbe, 101).flit.is_some());
    }

    #[test]
    fn traffic_generation_rate_is_calibrated() {
        let (mut t, _) = mesh_terminal();
        let cycles = 60_000u64;
        let geom = TopologyKind::Mesh8x8.build().geometry();
        for now in 0..cycles {
            t.generate_traffic(0.3, TrafficPattern::UniformRandom, geom, now);
        }
        // Expected transactions = rate/6 per cycle.
        let expect = 0.3 / 6.0 * cycles as f64;
        let got = t.src_queue.len() as f64;
        assert!(
            (got - expect).abs() < 0.1 * expect,
            "got {got}, expected ~{expect}"
        );
    }

    /// Regression: the old calibration hardcoded the divisor 6.0, so a
    /// non-default payload length silently offered the wrong load — at
    /// 8 payload flits (10-flit transactions) it injected 10/6 times the
    /// requested rate. The divisor must track the configured lengths.
    #[test]
    fn traffic_calibration_tracks_payload_length() {
        let topo = TopologyKind::Mesh8x8.build();
        let spec = VcAllocSpec::mesh(1);
        let mut t = Terminal::new(5, &topo, &spec, RoutingKind::DimensionOrder, 8, 8, 42);
        let cycles = 60_000u64;
        let geom = topo.geometry();
        for now in 0..cycles {
            t.generate_traffic(0.3, TrafficPattern::UniformRandom, geom, now);
        }
        // Transactions are 8 + 2 = 10 flits -> rate/10 firings per cycle.
        let expect = 0.3 / 10.0 * cycles as f64;
        let got = t.src_queue.len() as f64;
        assert!(
            (got - expect).abs() < 0.1 * expect,
            "got {got}, expected ~{expect}"
        );
    }

    /// Data-bearing packets stream `payload_flits + 1` flits when started.
    #[test]
    fn payload_length_sizes_streamed_packets() {
        let topo = TopologyKind::Mesh8x8.build();
        let spec = VcAllocSpec::mesh(1);
        let mut t = Terminal::new(5, &topo, &spec, RoutingKind::DimensionOrder, 16, 8, 42);
        t.src_queue.push_back(PendingPacket {
            kind: PacketKind::WriteRequest,
            dest: 20,
            birth: 0,
        });
        let mut tail_at = None;
        for now in 0..16 {
            if let Some((_, flit)) = t.step(&topo, &NullProbe, now).flit {
                assert_eq!(flit.flit_index, now as usize);
                if flit.tail {
                    tail_at = Some(now);
                    break;
                }
            }
        }
        // Head + 8 payload flits = 9 flits, indices 0..=8.
        assert_eq!(tail_at, Some(8));
    }

    /// Regression: the old `(id << 40) | (now << 8) | class` packing
    /// collided across terminals on long runs — terminal 0 starting a
    /// packet at cycle 2^32 produced the same id as terminal 1 starting
    /// one at cycle 0. Ids must be unique regardless of the cycle.
    #[test]
    fn packet_ids_do_not_collide_on_long_runs() {
        let topo = TopologyKind::Mesh8x8.build();
        let spec = VcAllocSpec::mesh(1);
        let mut ids = std::collections::HashSet::new();
        for (term, now) in [(0usize, 1u64 << 32), (1, 0)] {
            let mut t = Terminal::new(term, &topo, &spec, RoutingKind::DimensionOrder, 8, 4, 42);
            t.src_queue.push_back(PendingPacket {
                kind: PacketKind::WriteRequest,
                dest: 20,
                birth: 0,
            });
            let (_, flit) = t.step(&topo, &NullProbe, now).flit.unwrap();
            assert!(
                ids.insert(flit.packet_id),
                "terminal {term} at cycle {now} reused packet id {:#x}",
                flit.packet_id
            );
        }
    }

    /// Packet ids within one terminal are strictly increasing, even when
    /// several packets start in the same cycle window.
    #[test]
    fn packet_ids_are_monotonic_per_terminal() {
        let (mut t, topo) = mesh_terminal();
        for dest in [20usize, 21, 22] {
            t.src_queue.push_back(PendingPacket {
                kind: PacketKind::ReadRequest,
                dest,
                birth: 0,
            });
        }
        let mut last = None;
        for now in 0..3 {
            let (_, flit) = t.step(&topo, &NullProbe, now).flit.unwrap();
            assert!(last.is_none_or(|p| flit.packet_id > p), "ids not monotonic");
            last = Some(flit.packet_id);
        }
    }

    #[test]
    fn fbfly_injection_vc_class_matches_phase() {
        let topo = TopologyKind::FlattenedButterfly4x4.build();
        let spec = VcAllocSpec::fbfly(1);
        let mut t = Terminal::new(0, &topo, &spec, RoutingKind::Ugal { threshold: 3 }, 8, 4, 7);
        // Zero congestion -> minimal -> injection VC in the minimal class.
        t.src_queue.push_back(PendingPacket {
            kind: PacketKind::ReadRequest,
            dest: 63,
            birth: 0,
        });
        let o = t.step(&topo, &NullProbe, 0);
        let (vc, flit) = o.flit.unwrap();
        assert_eq!(vc, spec.class_base(0, RC_MIN));
        assert_eq!(flit.lookahead.resource_class, RC_MIN);
    }
}
