//! Packets and flits.

/// The four transaction packet types of the paper's traffic model (§3.2).
///
/// "Read requests and write replies consist of a single flit, while read
/// replies and write requests comprise a head flit and four flits containing
/// payload data."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// 1-flit read request.
    ReadRequest,
    /// 5-flit write request (head + 4 payload).
    WriteRequest,
    /// 5-flit read reply.
    ReadReply,
    /// 1-flit write reply.
    WriteReply,
}

/// Payload flits per data-carrying packet in the paper's traffic model
/// ("a head flit and four flits containing payload data", §3.2).
pub const DEFAULT_PAYLOAD_FLITS: usize = 4;

impl PacketKind {
    /// Number of flits in a packet of this kind at the paper's default
    /// payload size (never zero, so there is deliberately no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> usize {
        self.len_with(DEFAULT_PAYLOAD_FLITS)
    }

    /// Number of flits in a packet of this kind when data-carrying packets
    /// hold `payload_flits` payload flits behind the head flit.
    pub fn len_with(self, payload_flits: usize) -> usize {
        match self {
            PacketKind::ReadRequest | PacketKind::WriteReply => 1,
            PacketKind::WriteRequest | PacketKind::ReadReply => 1 + payload_flits,
        }
    }

    /// Mean flits per transaction (request plus its reply) under the
    /// 50/50 read/write mix — the offered-load divisor that converts a
    /// flits/cycle rate into a transaction firing probability. Derived
    /// from the packet lengths so rate calibration survives payload-size
    /// changes (it is **not** the literal constant 6).
    pub fn mean_transaction_flits(payload_flits: usize) -> f64 {
        let read = PacketKind::ReadRequest.len_with(payload_flits)
            + PacketKind::ReadReply.len_with(payload_flits);
        let write = PacketKind::WriteRequest.len_with(payload_flits)
            + PacketKind::WriteReply.len_with(payload_flits);
        (read + write) as f64 / 2.0
    }

    /// Message class (0 = request, 1 = reply) — requests and replies use
    /// disjoint VC sets to break protocol deadlock at the network boundary
    /// (§4.2).
    pub fn msg_class(self) -> usize {
        match self {
            PacketKind::ReadRequest | PacketKind::WriteRequest => 0,
            PacketKind::ReadReply | PacketKind::WriteReply => 1,
        }
    }

    /// The reply kind generated when a request of this kind reaches its
    /// destination terminal.
    pub fn reply_kind(self) -> Option<PacketKind> {
        match self {
            PacketKind::ReadRequest => Some(PacketKind::ReadReply),
            PacketKind::WriteRequest => Some(PacketKind::WriteReply),
            _ => None,
        }
    }

    /// True for request-class packets.
    pub fn is_request(self) -> bool {
        self.msg_class() == 0
    }
}

/// Routing decision state carried by a packet's head flit: for UGAL, the
/// Valiant intermediate router still to be visited in phase 1 (`None` once
/// the packet routes minimally).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteState {
    /// Phase-1 intermediate router for non-minimal (Valiant) routing.
    pub intermediate: Option<usize>,
    /// Torus dateline routing: the packet has crossed the wraparound edge
    /// in the dimension it is currently traversing.
    pub crossed_dateline: bool,
    /// Which dimension the `crossed_dateline` flag refers to (false = x).
    pub dateline_in_y: bool,
}

/// The lookahead routing decision for the *next* router, computed one hop
/// upstream (§3.2: lookahead routing removes the routing logic from the
/// critical path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lookahead {
    /// Output port to request at the next router.
    pub out_port: usize,
    /// Resource class of the VCs to acquire at that output.
    pub resource_class: usize,
}

/// One flit in flight.
#[derive(Clone, Copy, Debug)]
pub struct Flit {
    /// Unique packet id.
    pub packet_id: u64,
    /// Position within the packet (0 = head).
    pub flit_index: usize,
    /// True for the first flit of the packet.
    pub head: bool,
    /// True for the last flit (a 1-flit packet is both).
    pub tail: bool,
    /// Packet kind.
    pub kind: PacketKind,
    /// Source terminal.
    pub src: usize,
    /// Destination terminal.
    pub dest: usize,
    /// Cycle the packet was created (entered the source queue).
    pub birth: u64,
    /// Cycle the head flit left the source queue into the network.
    pub injected: u64,
    /// Lookahead route for the router this flit is heading to (meaningful
    /// on head flits; body flits follow their VC's state).
    pub lookahead: Lookahead,
    /// Adaptive-routing state (head flits).
    pub route_state: RouteState,
}

impl Flit {
    /// Message class of the packet this flit belongs to.
    pub fn msg_class(&self) -> usize {
        self.kind.msg_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_counts_match_paper() {
        assert_eq!(PacketKind::ReadRequest.len(), 1);
        assert_eq!(PacketKind::WriteReply.len(), 1);
        assert_eq!(PacketKind::WriteRequest.len(), 5);
        assert_eq!(PacketKind::ReadReply.len(), 5);
        // A read transaction and a write transaction are both 6 flits total.
        for k in [PacketKind::ReadRequest, PacketKind::WriteRequest] {
            assert_eq!(k.len() + k.reply_kind().unwrap().len(), 6);
        }
    }

    #[test]
    fn transaction_flits_derive_from_payload_size() {
        // The paper's default: 4 payload flits -> 6 flits per transaction.
        assert_eq!(PacketKind::mean_transaction_flits(4), 6.0);
        // Larger payloads grow both transaction kinds symmetrically.
        assert_eq!(PacketKind::mean_transaction_flits(8), 10.0);
        assert_eq!(PacketKind::WriteRequest.len_with(8), 9);
        assert_eq!(PacketKind::ReadReply.len_with(8), 9);
        assert_eq!(PacketKind::ReadRequest.len_with(8), 1);
    }

    #[test]
    fn classes_and_replies() {
        assert_eq!(PacketKind::ReadRequest.msg_class(), 0);
        assert_eq!(PacketKind::ReadReply.msg_class(), 1);
        assert_eq!(
            PacketKind::WriteRequest.reply_kind(),
            Some(PacketKind::WriteReply)
        );
        assert_eq!(PacketKind::ReadReply.reply_kind(), None);
        assert!(PacketKind::WriteRequest.is_request());
        assert!(!PacketKind::WriteReply.is_request());
    }
}
