//! The full network: routers, terminals, and links with credit channels.

use crate::config::SimConfig;
use crate::packet::Flit;
use crate::router::{Router, RouterConfig, RouterOutputs, RouterStats};
use crate::stats::NetStats;
use crate::terminal::{RouterProbe, Terminal};
use crate::topology::Topology;
use crate::verify::{InvariantChecker, NopChecker};
use noc_obs::{
    AnatomyCollector, FlightRecorder, FlitEvent, FlitEventKind, MetricsRegistry, NopProfiler,
    NopSink, Phase, PhaseProfiler, RouterBreakdown, RouterObs, TraceSink,
};
use std::time::Instant;

/// One reverse-link entry: `(upstream router, its output port, latency)`
/// for a network input port, or `None` for terminal-facing ports.
type RevLink = Option<(usize, usize, u64)>;

/// The parallel engine's epoch/done/stop protocol constants, named so the
/// `noc-mc` model checker's encoding can be pinned to them (see
/// `crates/sim/tests/protocol_drift.rs` — if either side changes alone,
/// that test fails and the machine-checked proof in `crates/mc` must be
/// re-run against the new protocol).
///
/// The happens-before argument these orderings carry is §11 of DESIGN.md:
/// main's shard writes are released by [`EPOCH_PUBLISH`] and acquired by
/// each worker's [`EPOCH_WAIT`]; each worker's shard writes are released
/// by [`DONE_SIGNAL`] and acquired by main's [`DONE_WAIT`]. [`DONE_RESET`]
/// may be relaxed *only because* it is program-ordered before the release
/// publication on the same thread.
pub mod par_protocol {
    use std::sync::atomic::Ordering;

    /// Iterations of `spin_loop` before yielding the timeslice.
    pub const SPIN_LIMIT: u32 = 64;

    /// The protocol's phase order within one cycle (epoch), shared
    /// verbatim with `noc_mc::protocol::PHASES`.
    pub const PHASES: [&str; 7] = [
        "deliver_inject",
        "reset_done",
        "publish_epoch",
        "worker_step",
        "signal_done",
        "commit",
        "finish",
    ];

    /// `epoch.fetch_add(1, _)` on the main thread: releases the
    /// deliver-phase shard writes to the workers.
    pub const EPOCH_PUBLISH: Ordering = Ordering::Release;
    /// `done.store(0, _)` on the main thread.
    // RELAXED: sound because the program-order-later `EPOCH_PUBLISH`
    // release fence-orders the reset before any worker can observe the
    // new epoch (mutant `done-reset-after-publish` in crates/mc deadlocks).
    pub const DONE_RESET: Ordering = Ordering::Relaxed;
    /// `done.fetch_add(1, _)` on each worker: releases its shard writes.
    pub const DONE_SIGNAL: Ordering = Ordering::Release;
    /// Main's `done.load(_)` spin: acquires every worker's shard writes.
    pub const DONE_WAIT: Ordering = Ordering::Acquire;
    /// Worker's `epoch.load(_)` spin: acquires main's shard writes.
    pub const EPOCH_WAIT: Ordering = Ordering::Acquire;
    /// `stop.store(true, _)` when the run ends (or unwinds).
    pub const STOP_PUBLISH: Ordering = Ordering::Release;
    /// Worker's `stop.load(_)` check.
    pub const STOP_WAIT: Ordering = Ordering::Acquire;

    /// Worker `k`'s contiguous shard `[lo, hi)` of `n` routers across
    /// `threads` workers. Shards partition `0..n` exactly — the
    /// disjointness the mutual-exclusion argument quantifies over.
    pub fn shard_range(k: usize, n: usize, threads: usize) -> (usize, usize) {
        (k * n / threads, (k + 1) * n / threads)
    }
}

/// An event in flight on a link or credit wire.
#[derive(Clone, Debug)]
enum Event {
    FlitToRouter {
        router: usize,
        port: usize,
        vc: usize,
        flit: Flit,
    },
    CreditToRouter {
        router: usize,
        port: usize,
        vc: usize,
    },
    FlitToTerminal {
        term: usize,
        /// Output VC the flit used at the ejecting router (for the credit).
        vc: usize,
        flit: Flit,
    },
    CreditToTerminal {
        term: usize,
        vc: usize,
    },
}

/// Fixed-latency event delivery (latencies are small: 1–3 cycles).
struct TimingWheel {
    slots: Vec<Vec<Event>>,
    /// Recycled slot buffer: [`TimingWheel::take`] hands out the current
    /// slot and replaces it with this spare; [`TimingWheel::recycle`]
    /// returns the drained buffer. Capacities converge to the high-water
    /// mark, so steady-state scheduling never allocates.
    spare: Vec<Event>,
}

impl TimingWheel {
    /// Pre-sizes every slot (and the recycled spare) to `cap` events. Each
    /// link direction delivers at most one flit and one credit per cycle
    /// and every slot drains once per wheel revolution, so a capacity of
    /// two events per port plus two per terminal makes steady-state
    /// scheduling allocation-free from the first cycle.
    fn with_slot_capacity(cap: usize) -> Self {
        TimingWheel {
            slots: (0..8).map(|_| Vec::with_capacity(cap)).collect(),
            spare: Vec::with_capacity(cap),
        }
    }

    fn schedule(&mut self, now: u64, delay: u64, ev: Event) {
        assert!(delay >= 1 && delay < self.slots.len() as u64);
        let idx = ((now + delay) % self.slots.len() as u64) as usize;
        self.slots[idx].push(ev);
    }

    fn take(&mut self, now: u64) -> Vec<Event> {
        let idx = (now % self.slots.len() as u64) as usize;
        std::mem::replace(&mut self.slots[idx], std::mem::take(&mut self.spare))
    }

    /// Returns a buffer obtained from [`TimingWheel::take`] for reuse.
    fn recycle(&mut self, mut events: Vec<Event>) {
        events.clear();
        self.spare = events;
    }

    fn is_empty(&self) -> bool {
        self.slots.iter().all(Vec::is_empty)
    }
}

/// A complete simulated network, generic over the trace sink. The default
/// [`NopSink`] compiles all flit-event instrumentation away.
pub struct Network<S: TraceSink = NopSink> {
    /// Topology in use.
    pub topo: Topology,
    cfg: SimConfig,
    routers: Vec<Router>,
    terminals: Vec<Terminal>,
    wheel: TimingWheel,
    /// Reverse link table: `rev[router][port]`, see [`RevLink`].
    rev: Vec<Vec<RevLink>>,
    /// Per-router output buffers for the two-phase step: the compute phase
    /// fills `out_buf[r]`, the commit phase drains it into the timing
    /// wheel. Kept across cycles so steady-state stepping does not
    /// allocate.
    out_buf: Vec<RouterOutputs>,
    /// Current cycle.
    pub now: u64,
    /// Measurement statistics.
    pub stats: NetStats,
    /// Flit-event sink.
    pub sink: S,
    /// Opt-in sampled time series (see [`Network::enable_metrics`]).
    pub metrics: Option<MetricsRegistry>,
    /// Opt-in windowed flight recorder (see
    /// [`Network::enable_telemetry`]).
    pub telemetry: Option<FlightRecorder>,
    /// Opt-in per-packet latency ledger (see
    /// [`Network::enable_anatomy`]). Folded on the main thread only: hop
    /// records travel through [`RouterOutputs::hops`] and are ingested at
    /// commit in router-id order, ejections fold during delivery in wheel
    /// order — both engine-invariant, so dumps are byte-identical across
    /// engines.
    pub anatomy: Option<AnatomyCollector>,
}

impl Network<NopSink> {
    /// Builds an untraced network in its reset state.
    pub fn new(cfg: SimConfig) -> Self {
        Network::with_sink(cfg, NopSink)
    }
}

impl<S: TraceSink> Network<S> {
    /// Builds a network in its reset state, reporting flit events to
    /// `sink`.
    pub fn with_sink(cfg: SimConfig, sink: S) -> Self {
        let topo = cfg.topology.build();
        let spec = cfg.vc_spec();
        let routing = cfg.routing();
        let rcfg = RouterConfig {
            spec: spec.clone(),
            buf_depth: cfg.buf_depth,
            vca_kind: cfg.vca_kind,
            vca_sparse: cfg.vca_sparse,
            sa_kind: cfg.sa_kind,
            spec_mode: cfg.spec_mode,
            routing,
        };
        let routers: Vec<Router> = (0..topo.num_routers())
            .map(|r| Router::new(r, rcfg.clone()))
            .collect();
        let terminals: Vec<Terminal> = (0..topo.num_terminals())
            .map(|t| {
                Terminal::new(
                    t,
                    &topo,
                    &spec,
                    routing,
                    cfg.buf_depth,
                    cfg.payload_flits,
                    cfg.seed,
                )
            })
            .collect();
        // Reverse links for credit routing.
        let mut rev = vec![vec![None; topo.ports]; topo.num_routers()];
        for r in 0..topo.num_routers() {
            for p in 0..topo.ports {
                if let Some(l) = topo.link(r, p) {
                    rev[l.to_router][l.to_port] = Some((r, p, l.latency));
                }
            }
        }
        let mut stats = NetStats::default();
        stats.init_sources(topo.num_terminals());
        let out_buf = routers
            .iter()
            .map(|r| RouterOutputs::with_capacity(r.ports()))
            .collect();
        let wheel_cap = 2 * routers.iter().map(Router::ports).sum::<usize>() + 2 * terminals.len();
        Network {
            topo,
            cfg,
            routers,
            terminals,
            wheel: TimingWheel::with_slot_capacity(wheel_cap),
            rev,
            out_buf,
            now: 0,
            stats,
            sink,
            metrics: None,
            telemetry: None,
            anatomy: None,
        }
    }

    /// Turns on occupancy / channel-utilization sampling every
    /// `sample_interval` cycles.
    pub fn enable_metrics(&mut self, sample_interval: u64) {
        self.metrics = Some(MetricsRegistry::new(sample_interval, self.routers.len()));
    }

    /// Turns on the flight recorder: a window snapshot every `window`
    /// cycles, the last `capacity` snapshots retained. A non-zero
    /// `matching_period` additionally enables matching-quality sampling in
    /// every router, every `matching_period` cycles (an exact maximum
    /// matching per router per sample — keep the period well above 1 for
    /// production runs).
    pub fn enable_telemetry(&mut self, window: u64, capacity: usize, matching_period: u64) {
        self.telemetry = Some(FlightRecorder::new(window, capacity));
        if matching_period > 0 {
            for r in &mut self.routers {
                r.enable_match_sampling(matching_period);
            }
        }
    }

    /// Turns on the per-packet latency ledger: every router stamps its
    /// buffered heads each cycle, ejections fold into per-stage histograms
    /// (`capacity` bounds retained per-packet records, `top_k` the slowest
    /// waterfalls kept). Costs one branch per router per cycle when off.
    pub fn enable_anatomy(&mut self, capacity: usize, top_k: usize) {
        self.anatomy = Some(AnatomyCollector::new(capacity, top_k));
        for r in &mut self.routers {
            r.enable_anatomy();
        }
    }

    /// Arms a one-shot injected panic in router `r` at cycle `cycle` (see
    /// [`Router::arm_test_panic`]); panic-safety regression tests only.
    #[doc(hidden)]
    pub fn arm_router_panic(&mut self, r: usize, cycle: u64) {
        self.routers[r].arm_test_panic(cycle);
    }

    /// Number of routers currently held by the network — the panic-safety
    /// tests assert this survives an unwinding engine run.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Mutable access to the configuration — e.g. to stop injection
    /// (`injection_rate = 0`) for drain phases.
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.cfg
    }

    /// Runs one network cycle.
    pub fn step(&mut self) {
        self.step_profiled(&mut NopProfiler)
    }

    /// Runs one network cycle, attributing wall time to pipeline phases.
    /// With [`NopProfiler`] every clock read compiles away and this is the
    /// plain [`Network::step`] fast path.
    pub fn step_profiled<P: PhaseProfiler>(&mut self, prof: &mut P) {
        self.step_checked(prof, &mut NopChecker)
    }

    /// Runs one network cycle with the runtime invariant checker attached.
    /// With [`NopChecker`] (the [`Network::step`] / [`Network::step_profiled`]
    /// path) every check compiles away; an active checker additionally runs
    /// the per-router matching-legality invariants and a whole-network
    /// credit-conservation audit after the cycle.
    pub fn step_checked<P: PhaseProfiler, K: InvariantChecker>(
        &mut self,
        prof: &mut P,
        chk: &mut K,
    ) {
        let now = self.now;
        deliver_and_inject(
            &self.topo,
            &self.cfg,
            &mut self.wheel,
            &mut self.routers,
            &mut self.terminals,
            &mut self.stats,
            &mut self.sink,
            &mut self.anatomy,
            now,
            prof,
        );

        // --- routers: two-phase (compute into out_buf, commit to wheel) ----
        // Compute only touches the router itself; commit only schedules
        // wheel events with delay >= 1, so interleaving compute/commit per
        // router (here) is cycle-identical to computing all routers first
        // (the parallel engine) as long as commits stay in router-id order.
        for r in 0..self.routers.len() {
            {
                let (routers, out_buf, topo, sink) = (
                    &mut self.routers,
                    &mut self.out_buf,
                    &self.topo,
                    &mut self.sink,
                );
                routers[r].step_into(topo, now, &mut out_buf[r], sink, prof);
            }
            commit_outputs(
                &self.topo,
                &self.rev,
                &mut self.wheel,
                r,
                &mut self.out_buf[r],
                &mut self.anatomy,
                now,
            );
        }

        // --- runtime invariants --------------------------------------------
        if K::ACTIVE {
            for r in &self.routers {
                r.check_invariants(chk);
            }
            self.audit_credit_conservation(chk);
        }
        finish_cycle(
            &self.routers,
            &self.terminals,
            &self.stats,
            &mut self.metrics,
            &mut self.telemetry,
            K::ACTIVE,
            now,
        );
        self.now += 1;
    }

    /// Runs one network cycle with the router compute phase sharded across
    /// `threads` scoped threads. Cycle-identical to [`Network::step`]: the
    /// compute phase of each router reads nothing outside the router, and
    /// the commit phase runs on this thread in router-id order, so the
    /// timing-wheel event order matches the sequential engine exactly.
    ///
    /// With an active trace sink the compute phase falls back to a
    /// sequential in-order loop so trace event order stays identical too.
    pub fn step_parallel(&mut self, threads: usize) {
        let threads = threads.clamp(1, self.routers.len().max(1));
        let now = self.now;
        deliver_and_inject(
            &self.topo,
            &self.cfg,
            &mut self.wheel,
            &mut self.routers,
            &mut self.terminals,
            &mut self.stats,
            &mut self.sink,
            &mut self.anatomy,
            now,
            &mut NopProfiler,
        );

        if S::ACTIVE || threads == 1 {
            for r in 0..self.routers.len() {
                let (routers, out_buf, topo, sink) = (
                    &mut self.routers,
                    &mut self.out_buf,
                    &self.topo,
                    &mut self.sink,
                );
                routers[r].step_into(topo, now, &mut out_buf[r], sink, &mut NopProfiler);
            }
        } else {
            let topo = &self.topo;
            let chunk = self.routers.len().div_ceil(threads);
            std::thread::scope(|s| {
                for (rs, os) in self
                    .routers
                    .chunks_mut(chunk)
                    .zip(self.out_buf.chunks_mut(chunk))
                {
                    s.spawn(move || {
                        for (router, out) in rs.iter_mut().zip(os.iter_mut()) {
                            router.step_into(topo, now, out, &mut NopSink, &mut NopProfiler);
                        }
                    });
                }
            });
        }

        for r in 0..self.routers.len() {
            commit_outputs(
                &self.topo,
                &self.rev,
                &mut self.wheel,
                r,
                &mut self.out_buf[r],
                &mut self.anatomy,
                now,
            );
        }
        finish_cycle(
            &self.routers,
            &self.terminals,
            &self.stats,
            &mut self.metrics,
            &mut self.telemetry,
            false,
            now,
        );
        self.now += 1;
    }

    /// Runs one network cycle skipping routers with no buffered flits and
    /// no flit in switch traversal. Cycle-identical to [`Network::step`]:
    /// an idle router's step produces no outputs and touches no allocator
    /// state; its only observable effect — one `empty` stall count per
    /// input VC — is accrued as a debt settled by [`Network::flush_skips`]
    /// (or lazily on the router's next non-idle step).
    pub fn step_active(&mut self) {
        let now = self.now;
        deliver_and_inject(
            &self.topo,
            &self.cfg,
            &mut self.wheel,
            &mut self.routers,
            &mut self.terminals,
            &mut self.stats,
            &mut self.sink,
            &mut self.anatomy,
            now,
            &mut NopProfiler,
        );

        for r in 0..self.routers.len() {
            if self.routers[r].is_idle() {
                self.routers[r].note_skipped();
                continue;
            }
            {
                let (routers, out_buf, topo, sink) = (
                    &mut self.routers,
                    &mut self.out_buf,
                    &self.topo,
                    &mut self.sink,
                );
                routers[r].step_into(topo, now, &mut out_buf[r], sink, &mut NopProfiler);
            }
            commit_outputs(
                &self.topo,
                &self.rev,
                &mut self.wheel,
                r,
                &mut self.out_buf[r],
                &mut self.anatomy,
                now,
            );
        }
        finish_cycle(
            &self.routers,
            &self.terminals,
            &self.stats,
            &mut self.metrics,
            &mut self.telemetry,
            false,
            now,
        );
        self.now += 1;
    }

    /// Settles the active-set engine's skipped-cycle debt so stall-cause
    /// read-outs ([`Network::router_obs`], [`Network::router_breakdowns`])
    /// match the sequential engine exactly. [`Network::run_active`] calls
    /// this; manual [`Network::step_active`] users must call it before
    /// reading per-VC stall counters.
    pub fn flush_skips(&mut self) {
        for r in &mut self.routers {
            r.flush_skipped();
        }
    }

    /// Runs `cycles` cycles on the active-set engine and settles skip
    /// debts.
    pub fn run_active(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step_active();
        }
        self.flush_skips();
    }

    /// Runs `cycles` cycles on the parallel engine with a persistent pool
    /// of `threads` workers, avoiding the per-cycle thread-spawn cost of
    /// [`Network::step_parallel`]. Workers spin between cycles, so this is
    /// a throughput engine for batch runs, not for interactive stepping.
    ///
    /// Cycle-identical to [`Network::run`] for the same reasons as
    /// [`Network::step_parallel`]. With an active trace sink it degrades to
    /// per-cycle sequential-compute steps so trace order is preserved.
    pub fn run_parallel(&mut self, cycles: u64, threads: usize) {
        let threads = threads.clamp(1, self.routers.len().max(1));
        if threads == 1 || S::ACTIVE {
            for _ in 0..cycles {
                self.step_parallel(threads);
            }
            return;
        }
        if cycles == 0 {
            return;
        }

        use par_protocol as pp;
        use std::cell::UnsafeCell;
        use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

        /// Shared view of the router and output-buffer cells.
        ///
        /// Safety protocol (machine-checked as the `run_par` model in
        /// `crates/mc`, see DESIGN.md §11): access alternates in phases.
        /// Between the main thread's epoch publication
        /// ([`par_protocol::EPOCH_PUBLISH`]) and a worker's completion
        /// signal ([`par_protocol::DONE_SIGNAL`]) only that worker touches
        /// its disjoint index range `[lo, hi)`; at every other time
        /// (delivery, commit, finish) only the main thread touches any
        /// cell. The epoch/done atomics carry the Acquire/Release edges
        /// ordering those accesses.
        struct Shards<'a> {
            routers: &'a [UnsafeCell<Router>],
            outs: &'a [UnsafeCell<RouterOutputs>],
        }
        // SAFETY: sharing the raw cells across worker threads is exactly
        // what the epoch/done protocol above makes sound; without this
        // impl the cells could not cross the `thread::scope` boundary.
        unsafe impl Sync for Shards<'_> {}

        /// Moves the drained router and output-buffer cells back into the
        /// network on drop — on the normal path *and* on unwind, so a
        /// panic below (a worker's, or the main thread's in
        /// commit/deliver) cannot leave the `Network` with empty router
        /// state. After an unwind the routers may reflect a partially
        /// computed cycle; the guarantee is structural (every router is
        /// back, memory-safe), not transactional.
        struct Restore<'a> {
            router_cells: Vec<UnsafeCell<Router>>,
            out_cells: Vec<UnsafeCell<RouterOutputs>>,
            routers: &'a mut Vec<Router>,
            out_buf: &'a mut Vec<RouterOutputs>,
        }
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.routers
                    .extend(self.router_cells.drain(..).map(UnsafeCell::into_inner));
                self.out_buf
                    .extend(self.out_cells.drain(..).map(UnsafeCell::into_inner));
            }
        }

        /// Publishes `stop` when dropped, releasing every parked worker.
        /// Lives at the top of the scope closure so both the normal exit
        /// and a main-thread unwind set it *before* `thread::scope` joins
        /// — otherwise a panic in commit would hang the join forever.
        struct StopOnDrop<'a>(&'a AtomicBool);
        impl Drop for StopOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, pp::STOP_PUBLISH);
            }
        }

        /// Worker-side unwind detector: a panicking worker never signals
        /// `done`, so without this flag the main thread would spin on
        /// `done < threads` forever instead of propagating the panic.
        struct PoisonOnPanic<'a>(&'a AtomicBool);
        impl Drop for PoisonOnPanic<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, pp::STOP_PUBLISH);
                }
            }
        }

        let Network {
            topo,
            cfg,
            routers,
            terminals,
            wheel,
            rev,
            out_buf,
            now,
            stats,
            sink: _,
            metrics,
            telemetry,
            anatomy,
        } = self;
        let n = routers.len();
        let guard = Restore {
            router_cells: routers.drain(..).map(UnsafeCell::new).collect(),
            out_cells: out_buf.drain(..).map(UnsafeCell::new).collect(),
            routers,
            out_buf,
        };
        let shards = Shards {
            routers: &guard.router_cells,
            outs: &guard.out_cells,
        };
        let epoch = AtomicU64::new(0);
        let done = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let poisoned = AtomicBool::new(false);
        let base_now = *now;
        let topo_ref: &Topology = topo;

        // Spin briefly, then yield the timeslice: on oversubscribed or
        // single-core hosts a pure spin burns a whole scheduler quantum
        // before the peer thread can make the awaited progress.
        fn spin_or_yield(spins: &mut u32) {
            *spins += 1;
            if *spins < pp::SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }

        std::thread::scope(|s| {
            let stop_guard = StopOnDrop(&stop);
            let mut handles = Vec::with_capacity(threads);
            for k in 0..threads {
                let (lo, hi) = pp::shard_range(k, n, threads);
                let (shards, epoch, done, stop, poisoned) =
                    (&shards, &epoch, &done, &stop, &poisoned);
                handles.push(s.spawn(move || {
                    let _poison_guard = PoisonOnPanic(poisoned);
                    let mut seen = 0u64;
                    loop {
                        let mut spins = 0u32;
                        loop {
                            let e = epoch.load(pp::EPOCH_WAIT);
                            if e > seen {
                                seen = e;
                                break;
                            }
                            if stop.load(pp::STOP_WAIT) {
                                return;
                            }
                            spin_or_yield(&mut spins);
                        }
                        let cycle_now = base_now + (seen - 1);
                        for i in lo..hi {
                            // SAFETY: this worker owns indices [lo, hi) for
                            // the duration of the epoch (see `Shards`);
                            // `par_protocol::shard_range` partitions `0..n`
                            // disjointly across workers.
                            let router = unsafe { &mut *shards.routers[i].get() };
                            // SAFETY: as above — same owner, same window.
                            let out = unsafe { &mut *shards.outs[i].get() };
                            router.step_into(
                                topo_ref,
                                cycle_now,
                                out,
                                &mut NopSink,
                                &mut NopProfiler,
                            );
                        }
                        done.fetch_add(1, pp::DONE_SIGNAL);
                    }
                }));
            }

            for c in 0..cycles {
                let cycle_now = base_now + c;
                {
                    // SAFETY: workers are parked awaiting the next epoch, so
                    // the main thread has exclusive access to every cell;
                    // `UnsafeCell` is `repr(transparent)` over its payload.
                    let routers_mut: &mut [Router] = unsafe {
                        std::slice::from_raw_parts_mut(
                            guard.router_cells.as_ptr() as *mut Router,
                            n,
                        )
                    };
                    deliver_and_inject(
                        topo_ref,
                        cfg,
                        wheel,
                        routers_mut,
                        terminals,
                        stats,
                        &mut NopSink,
                        anatomy,
                        cycle_now,
                        &mut NopProfiler,
                    );
                }
                // RELAXED: ordered before the workers' reads by the
                // program-order-later `EPOCH_PUBLISH` release on this same
                // thread (mutant `done-reset-after-publish` in crates/mc
                // shows why the order, not the ordering, is what matters).
                done.store(0, pp::DONE_RESET);
                epoch.fetch_add(1, pp::EPOCH_PUBLISH);
                let mut spins = 0u32;
                loop {
                    if done.load(pp::DONE_WAIT) >= threads {
                        break;
                    }
                    if poisoned.load(pp::STOP_WAIT) {
                        // A worker is unwinding and will never signal.
                        // Stop touching the cells, release the surviving
                        // workers, and re-raise the worker's own panic
                        // payload (`thread::scope` would otherwise
                        // replace it with a generic "a scoped thread
                        // panicked"); `guard` restores the router state
                        // on the way out.
                        stop.store(true, pp::STOP_PUBLISH);
                        for h in handles.drain(..) {
                            if let Err(payload) = h.join() {
                                std::panic::resume_unwind(payload);
                            }
                        }
                        return;
                    }
                    spin_or_yield(&mut spins);
                }
                // SAFETY: every worker signalled `done` for this epoch, so
                // the main thread again has exclusive access.
                let outs_mut: &mut [RouterOutputs] = unsafe {
                    std::slice::from_raw_parts_mut(
                        guard.out_cells.as_ptr() as *mut RouterOutputs,
                        n,
                    )
                };
                for r in 0..n {
                    commit_outputs(
                        topo_ref,
                        rev,
                        wheel,
                        r,
                        &mut outs_mut[r],
                        anatomy,
                        cycle_now,
                    );
                }
                // SAFETY: same exclusive-access window as the commit above.
                let routers_ref: &[Router] = unsafe {
                    std::slice::from_raw_parts(guard.router_cells.as_ptr() as *const Router, n)
                };
                finish_cycle(
                    routers_ref,
                    terminals,
                    stats,
                    metrics,
                    telemetry,
                    false,
                    cycle_now,
                );
            }
            *now = base_now + cycles;
            drop(stop_guard);
        });
    }

    /// Verifies credit conservation on every channel: upstream credits plus
    /// in-flight flits plus downstream occupancy plus in-flight return
    /// credits must equal the buffer depth, for router→router links,
    /// terminal injection channels and terminal ejection channels alike.
    fn audit_credit_conservation<K: InvariantChecker>(&self, chk: &mut K) {
        use std::collections::HashMap;
        let depth = self.cfg.buf_depth;
        let Some(first) = self.routers.first() else {
            return;
        };
        let vcs = first.vcs();
        // One pass over the timing wheel counts every in-flight event.
        let mut flit_to_router: HashMap<(usize, usize, usize), usize> = HashMap::new();
        let mut credit_to_router: HashMap<(usize, usize, usize), usize> = HashMap::new();
        let mut flit_to_term: HashMap<(usize, usize), usize> = HashMap::new();
        let mut credit_to_term: HashMap<(usize, usize), usize> = HashMap::new();
        for slot in &self.wheel.slots {
            for ev in slot {
                match ev {
                    Event::FlitToRouter {
                        router, port, vc, ..
                    } => *flit_to_router.entry((*router, *port, *vc)).or_default() += 1,
                    Event::CreditToRouter { router, port, vc } => {
                        *credit_to_router.entry((*router, *port, *vc)).or_default() += 1
                    }
                    Event::FlitToTerminal { term, vc, .. } => {
                        *flit_to_term.entry((*term, *vc)).or_default() += 1
                    }
                    Event::CreditToTerminal { term, vc } => {
                        *credit_to_term.entry((*term, *vc)).or_default() += 1
                    }
                }
            }
        }
        let count3 = |m: &HashMap<(usize, usize, usize), usize>, k| m.get(&k).copied().unwrap_or(0);
        let count2 = |m: &HashMap<(usize, usize), usize>, k| m.get(&k).copied().unwrap_or(0);
        let mut checks = 0u64;
        for r in 0..self.routers.len() {
            for p in 0..self.topo.ports {
                if let Some(l) = self.topo.link(r, p) {
                    for vc in 0..vcs {
                        checks += 1;
                        let total = self.routers[r].output_credits(p, vc)
                            + count3(&flit_to_router, (l.to_router, l.to_port, vc))
                            + self.routers[l.to_router].input_occupancy(l.to_port, vc)
                            + count3(&credit_to_router, (r, p, vc));
                        if total != depth {
                            chk.violation(format!(
                                "cycle {}: credit conservation broken on link \
                                 {r}:{p} -> {}:{} vc {vc}: credits + in-flight + \
                                 occupancy = {total}, buffer depth {depth}",
                                self.now, l.to_router, l.to_port
                            ));
                        }
                    }
                } else if let Some(term) = self.topo.port_terminal(r, p) {
                    for vc in 0..vcs {
                        checks += 2;
                        // Ejection channel (ideal sink: no terminal buffer).
                        let eject = self.routers[r].output_credits(p, vc)
                            + count2(&flit_to_term, (term, vc))
                            + count3(&credit_to_router, (r, p, vc));
                        if eject != depth {
                            chk.violation(format!(
                                "cycle {}: credit conservation broken on ejection \
                                 channel {r}:{p} -> terminal {term} vc {vc}: \
                                 credits + in-flight = {eject}, buffer depth {depth}",
                                self.now
                            ));
                        }
                        // Injection channel.
                        let inject = self.terminals[term].credits(vc)
                            + count3(&flit_to_router, (r, p, vc))
                            + self.routers[r].input_occupancy(p, vc)
                            + count2(&credit_to_term, (term, vc));
                        if inject != depth {
                            chk.violation(format!(
                                "cycle {}: credit conservation broken on injection \
                                 channel terminal {term} -> {r}:{p} vc {vc}: \
                                 credits + in-flight + occupancy = {inject}, \
                                 buffer depth {depth}",
                                self.now
                            ));
                        }
                    }
                }
            }
        }
        chk.add_checks(checks);
    }

    /// Runs `cycles` network cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// True when no flit is buffered, in flight, or queued anywhere.
    pub fn is_drained(&self) -> bool {
        self.wheel.is_empty()
            && self.routers.iter().all(Router::is_idle)
            && self.terminals.iter().all(|t| t.backlog_packets() == 0)
    }

    /// Aggregated router statistics (speculation counters etc.).
    pub fn router_stats(&self) -> RouterStats {
        let mut agg = RouterStats::default();
        for r in &self.routers {
            agg.nonspec_grants += r.stats.nonspec_grants;
            agg.spec_grants += r.stats.spec_grants;
            agg.spec_masked += r.stats.spec_masked;
            agg.spec_invalid += r.stats.spec_invalid;
            agg.spec_requests += r.stats.spec_requests;
            agg.vca_grants += r.stats.vca_grants;
            agg.vca_requests += r.stats.vca_requests;
        }
        agg
    }

    /// Snapshot of every router's observability counters, in router-id
    /// order (feeds the `noc-obs` exporters).
    pub fn router_obs(&self) -> Vec<RouterObs> {
        self.routers.iter().map(|r| r.obs.clone()).collect()
    }

    /// Per-router digests: link throughput since reset and the
    /// worst-stalled input port.
    pub fn router_breakdowns(&self) -> Vec<RouterBreakdown> {
        let cycles = self.now.max(1) as f64;
        self.routers
            .iter()
            .map(|r| {
                let (worst_port, worst_port_stall) = r.obs.worst_port_stall();
                RouterBreakdown {
                    router: r.id,
                    throughput: r.obs.total_out_flits() as f64 / cycles,
                    worst_port,
                    worst_port_stall,
                }
            })
            .collect()
    }

    /// Total request-queue backlog across terminals (saturation indicator).
    pub fn total_backlog(&self) -> usize {
        self.terminals.iter().map(Terminal::backlog_packets).sum()
    }

    /// Total flits injected since reset.
    pub fn total_flits_injected(&self) -> u64 {
        self.terminals.iter().map(|t| t.flits_injected).sum()
    }

    /// UGAL route-choice split since reset: `(minimal, non-minimal)`
    /// packets started.
    pub fn ugal_split(&self) -> (u64, u64) {
        (
            self.terminals.iter().map(|t| t.minimal_started).sum(),
            self.terminals.iter().map(|t| t.nonminimal_started).sum(),
        )
    }
}

/// Pre-router phase of a cycle: deliver timing-wheel events landing this
/// cycle, then let every terminal generate and (if possible) inject
/// traffic. Free function (not a method) so the persistent-pool parallel
/// engine can call it on destructured network fields while worker threads
/// hold the topology borrow.
#[allow(clippy::too_many_arguments)]
fn deliver_and_inject<S: TraceSink, P: PhaseProfiler>(
    topo: &Topology,
    cfg: &SimConfig,
    wheel: &mut TimingWheel,
    routers: &mut [Router],
    terminals: &mut [Terminal],
    stats: &mut NetStats,
    sink: &mut S,
    anatomy: &mut Option<AnatomyCollector>,
    now: u64,
    prof: &mut P,
) {
    // --- deliver link/credit events landing this cycle ----------------
    let wheel_timer = P::ACTIVE.then(Instant::now);
    let mut wheel_events = 0u64;
    // Take the slot, drain it, hand the buffer back: nothing schedules
    // into the *current* slot (delays are >= 1 and < the wheel size), so
    // the buffer is free to recycle once the loop ends.
    let mut events = wheel.take(now);
    for ev in events.drain(..) {
        wheel_events += 1;
        match ev {
            Event::FlitToRouter {
                router,
                port,
                vc,
                flit,
            } => {
                routers[router].accept_flit(port, vc, flit, now);
            }
            Event::CreditToRouter { router, port, vc } => {
                routers[router].accept_credit(port, vc);
            }
            Event::FlitToTerminal { term, vc, flit } => {
                stats.record_flit_ejected(now);
                if let Some(col) = anatomy {
                    // Fold in wheel-delivery order: identical on every
                    // engine (delivery always runs on the main thread).
                    if flit.head {
                        col.eject_head(flit.packet_id, flit.birth, flit.injected, now);
                    }
                    if flit.tail {
                        col.eject_tail(
                            flit.packet_id,
                            flit.msg_class() as u8,
                            now,
                            stats.in_window(now),
                        );
                    }
                }
                if flit.tail {
                    stats.record_packet_from(now, flit.birth, flit.msg_class(), flit.src);
                }
                terminals[term].receive(&flit, now);
                // Ideal sink: return the credit immediately.
                let (router, port) = topo.terminal_attach(term);
                if S::ACTIVE {
                    sink.record(FlitEvent {
                        cycle: now,
                        kind: FlitEventKind::Eject,
                        router: router as u32,
                        port: port as u16,
                        vc: vc as u16,
                        packet_id: flit.packet_id,
                        flit_index: flit.flit_index as u32,
                    });
                }
                wheel.schedule(now, 1, Event::CreditToRouter { router, port, vc });
            }
            Event::CreditToTerminal { term, vc } => {
                terminals[term].accept_credit(vc);
            }
        }
    }
    wheel.recycle(events);
    if let Some(t) = wheel_timer {
        prof.record(Phase::Credit, t.elapsed().as_nanos() as u64, wheel_events);
    }

    // --- terminals: traffic generation and injection -------------------
    let n_term = terminals.len();
    let geom = topo.geometry();
    for t in 0..n_term {
        terminals[t].generate_traffic_burst(cfg.injection_rate, cfg.pattern, geom, now, cfg.burst);
        // A terminal with nothing queued and nothing in flight cannot
        // inject and its step consumes no RNG, so skipping it is exact on
        // every engine.
        if terminals[t].backlog_packets() == 0 {
            continue;
        }
        let router = terminals[t].router;
        let port = terminals[t].port;
        let out = terminals[t].step(topo, &RouterProbe(&routers[router]), now);
        if let Some((vc, flit)) = out.flit {
            stats.record_flit_injected(now);
            if S::ACTIVE {
                sink.record(FlitEvent {
                    cycle: now,
                    kind: FlitEventKind::Inject,
                    router: router as u32,
                    port: port as u16,
                    vc: vc as u16,
                    packet_id: flit.packet_id,
                    flit_index: flit.flit_index as u32,
                });
            }
            wheel.schedule(
                now,
                1,
                Event::FlitToRouter {
                    router,
                    port,
                    vc,
                    flit,
                },
            );
        }
    }
}

/// Commit phase for one router: drain its output buffer into the timing
/// wheel. All scheduled events carry delay >= 1, so commits never feed
/// back into the current cycle — the property that makes the two-phase
/// split cycle-identical to the interleaved sequential step.
fn commit_outputs(
    topo: &Topology,
    rev: &[Vec<RevLink>],
    wheel: &mut TimingWheel,
    r: usize,
    out: &mut RouterOutputs,
    anatomy: &mut Option<AnatomyCollector>,
    now: u64,
) {
    // Ingest hop records before the wheel drain: commit runs in router-id
    // order on every engine, so collector state is engine-invariant.
    match anatomy {
        Some(col) => {
            for h in out.hops.drain(..) {
                col.ingest_hop(h);
            }
        }
        None => out.hops.clear(),
    }
    for of in out.flits.drain(..) {
        if let Some(term) = topo.port_terminal(r, of.port) {
            wheel.schedule(
                now,
                1,
                Event::FlitToTerminal {
                    term,
                    vc: of.vc,
                    flit: of.flit,
                },
            );
        } else {
            let Some(link) = topo.link(r, of.port) else {
                unreachable!("flit sent to port {} of router {r} with no link", of.port)
            };
            wheel.schedule(
                now,
                link.latency,
                Event::FlitToRouter {
                    router: link.to_router,
                    port: link.to_port,
                    vc: of.vc,
                    flit: of.flit,
                },
            );
        }
    }
    for (in_port, in_vc) in out.credits.drain(..) {
        if let Some(term) = topo.port_terminal(r, in_port) {
            wheel.schedule(now, 1, Event::CreditToTerminal { term, vc: in_vc });
        } else {
            let Some((ur, up, lat)) = rev[r][in_port] else {
                unreachable!("credit return on port {in_port} of router {r} with no link")
            };
            wheel.schedule(
                now,
                lat,
                Event::CreditToRouter {
                    router: ur,
                    port: up,
                    vc: in_vc,
                },
            );
        }
    }
}

/// Post-commit bookkeeping: debug-build invariant checks, sampled time
/// series, and flight-recorder window snapshots. Does not advance `now` —
/// callers own the clock.
fn finish_cycle(
    routers: &[Router],
    terminals: &[Terminal],
    stats: &NetStats,
    metrics: &mut Option<MetricsRegistry>,
    telemetry: &mut Option<FlightRecorder>,
    checker_active: bool,
    now: u64,
) {
    if cfg!(debug_assertions) && !checker_active {
        // Debug builds run the (cheap) router-local invariants on the
        // ordinary step path too, so the whole test suite exercises
        // them; the credit audit stays opt-in via an active checker.
        let mut strict = crate::verify::StrictChecker::default();
        for r in routers {
            r.check_invariants(&mut strict);
        }
        assert!(
            strict.violations.is_empty(),
            "cycle {now}: router invariant violations: {:?}",
            strict.violations
        );
    }

    // --- sampled time series -------------------------------------------
    if let Some(m) = metrics {
        if m.due(now) {
            m.sample(
                now,
                routers.iter().map(|r| {
                    (
                        r.buffered_flits() as u32,
                        r.busy_vcs() as u32,
                        r.obs.total_out_flits(),
                        r.ports(),
                    )
                }),
            );
        }
    }

    // --- flight recorder ------------------------------------------------
    // Keyed purely on the cycle number, so every engine records identical
    // windows regardless of chunking or skipping.
    if let Some(rec) = telemetry {
        if rec.due(now) {
            let injected: u64 = terminals.iter().map(|t| t.flits_injected).sum();
            rec.record(
                now,
                injected,
                stats.total_flits_ejected,
                routers.iter().map(Router::telemetry_counters),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    fn quick_cfg(topology: TopologyKind, c: usize, rate: f64) -> SimConfig {
        SimConfig {
            injection_rate: rate,
            ..SimConfig::paper_baseline(topology, c)
        }
    }

    #[test]
    fn mesh_delivers_all_traffic_and_drains() {
        let mut net = Network::new(quick_cfg(TopologyKind::Mesh8x8, 1, 0.1));
        net.stats.set_window(0, 3000);
        net.run(3000);
        let injected = net.total_flits_injected();
        assert!(injected > 500, "injected only {injected}");
        // Stop traffic and drain.
        let mut cfg = net.cfg.clone();
        cfg.injection_rate = 0.0;
        net.cfg = cfg;
        for _ in 0..4000 {
            net.step();
            if net.is_drained() {
                break;
            }
        }
        assert!(net.is_drained(), "network failed to drain");
    }

    #[test]
    fn fbfly_delivers_all_traffic_and_drains() {
        for c in [1usize, 2] {
            let mut net = Network::new(quick_cfg(TopologyKind::FlattenedButterfly4x4, c, 0.2));
            net.stats.set_window(0, 2000);
            net.run(2000);
            assert!(net.total_flits_injected() > 1000);
            net.cfg.injection_rate = 0.0;
            for _ in 0..4000 {
                net.step();
                if net.is_drained() {
                    break;
                }
            }
            assert!(net.is_drained(), "fbfly C={c} failed to drain");
        }
    }

    #[test]
    fn conservation_flits_in_equals_flits_out_after_drain() {
        let mut net = Network::new(quick_cfg(TopologyKind::Mesh8x8, 2, 0.15));
        net.stats.set_window(0, u64::MAX);
        net.run(2500);
        net.cfg.injection_rate = 0.0;
        for _ in 0..4000 {
            net.step();
            if net.is_drained() {
                break;
            }
        }
        assert!(net.is_drained());
        assert_eq!(
            net.total_flits_injected(),
            net.stats.flits_ejected,
            "flits lost or duplicated"
        );
    }

    #[test]
    fn zero_load_latency_is_sane_for_mesh() {
        // At near-zero load, the average mesh packet latency should be a
        // couple dozen cycles (pipeline + links + serialization), far from
        // both 0 and saturation values.
        let mut net = Network::new(quick_cfg(TopologyKind::Mesh8x8, 1, 0.01));
        net.stats.set_window(1000, 6000);
        net.run(6000);
        let lat = net.stats.avg_latency();
        assert!(lat > 8.0 && lat < 40.0, "zero-load latency {lat}");
    }

    #[test]
    fn zero_load_latency_fbfly_below_mesh() {
        let mut mesh = Network::new(quick_cfg(TopologyKind::Mesh8x8, 1, 0.01));
        mesh.stats.set_window(1000, 6000);
        mesh.run(6000);
        let mut fb = Network::new(quick_cfg(TopologyKind::FlattenedButterfly4x4, 1, 0.01));
        fb.stats.set_window(1000, 6000);
        fb.run(6000);
        assert!(
            fb.stats.avg_latency() < mesh.stats.avg_latency(),
            "fbfly {} !< mesh {}",
            fb.stats.avg_latency(),
            mesh.stats.avg_latency()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut net = Network::new(quick_cfg(TopologyKind::Mesh8x8, 2, 0.2));
            net.stats.set_window(500, 2500);
            net.run(2500);
            (
                net.stats.latency_sum,
                net.stats.packets,
                net.stats.flits_ejected,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn speculation_reduces_zero_load_latency() {
        // §5.3.3: speculative switch allocation cuts mesh zero-load latency
        // (the paper reports up to 23%).
        let mut spec = Network::new(quick_cfg(TopologyKind::Mesh8x8, 1, 0.02));
        spec.stats.set_window(1000, 8000);
        spec.run(8000);
        let mut nonspec_cfg = quick_cfg(TopologyKind::Mesh8x8, 1, 0.02);
        nonspec_cfg.spec_mode = noc_core::SpecMode::NonSpeculative;
        let mut nons = Network::new(nonspec_cfg);
        nons.stats.set_window(1000, 8000);
        nons.run(8000);
        let (ls, ln) = (spec.stats.avg_latency(), nons.stats.avg_latency());
        assert!(ls < ln, "spec {ls} !< nonspec {ln}");
        let gain = (ln - ls) / ln;
        assert!(gain > 0.10, "speculation gain only {:.1}%", gain * 100.0);
    }
}
