//! Simulation configuration.

use crate::routing::RoutingKind;
use crate::topology::TopologyKind;
use crate::traffic::TrafficPattern;
use noc_core::{AllocatorKind, SpecMode, SwitchAllocatorKind, VcAllocSpec};

/// Full configuration of one network simulation (§3.2's setup plus the
/// allocator design choices under study).
///
/// ```
/// use noc_sim::{run_sim, SimConfig, TopologyKind};
///
/// let cfg = SimConfig {
///     injection_rate: 0.1,
///     ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
/// };
/// let result = run_sim(&cfg, 500, 1_000);
/// assert!(result.stable);
/// assert!(result.avg_latency > 10.0 && result.avg_latency < 40.0);
/// ```
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Topology (fixes P and the routing algorithm).
    pub topology: TopologyKind,
    /// VCs per class, `C` in the `MxRxC` notation (M and R follow from the
    /// topology: mesh 2×1×C, fbfly 2×2×C).
    pub vcs_per_class: usize,
    /// Flits per VC buffer (paper: 8).
    pub buf_depth: usize,
    /// VC allocator architecture (paper's network results use `sep_if`).
    pub vca_kind: AllocatorKind,
    /// Sparse VC allocator organization.
    pub vca_sparse: bool,
    /// Switch allocator architecture.
    pub sa_kind: SwitchAllocatorKind,
    /// Speculation scheme.
    pub spec_mode: SpecMode,
    /// Offered load in flits/cycle/terminal (requests + replies).
    pub injection_rate: f64,
    /// Request packets per transaction burst. 1 reproduces the paper's
    /// traffic; larger values model the DMA-like throughput-oriented
    /// workloads of §5.4 (bursts of write requests to one destination).
    pub burst: usize,
    /// Payload flits carried by data-bearing packets (write requests and
    /// read replies). The paper's traffic model uses 4, giving 5-flit data
    /// packets and 6-flit transactions; the offered-load calibration in the
    /// terminals derives its divisor from this value.
    pub payload_flits: usize,
    /// Spatial traffic pattern.
    pub pattern: TrafficPattern,
    /// RNG seed (simulations are fully deterministic given the seed).
    pub seed: u64,
    /// Routing algorithm override. `None` (the paper's configurations)
    /// derives the algorithm from the topology; `Some` forces one — used
    /// by negative fixtures such as
    /// [`RoutingKind::TorusNoDateline`], the deliberately deadlock-prone
    /// configuration the stall watchdog is tested against.
    pub routing_override: Option<RoutingKind>,
}

impl SimConfig {
    /// The paper's baseline configuration for a topology and VC count:
    /// separable input-first VC and switch allocation with round-robin
    /// arbiters, pessimistic speculation, uniform random traffic.
    pub fn paper_baseline(topology: TopologyKind, vcs_per_class: usize) -> Self {
        SimConfig {
            topology,
            vcs_per_class,
            buf_depth: 8,
            vca_kind: AllocatorKind::SepIfRr,
            vca_sparse: true,
            sa_kind: SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
            spec_mode: SpecMode::Pessimistic,
            injection_rate: 0.1,
            burst: 1,
            payload_flits: crate::packet::DEFAULT_PAYLOAD_FLITS,
            pattern: TrafficPattern::UniformRandom,
            seed: 0x5c09_2009,
            routing_override: None,
        }
    }

    /// The VC class structure implied by topology + C.
    pub fn vc_spec(&self) -> VcAllocSpec {
        match self.topology {
            TopologyKind::Mesh8x8 => VcAllocSpec::mesh(self.vcs_per_class),
            TopologyKind::FlattenedButterfly4x4 => VcAllocSpec::fbfly(self.vcs_per_class),
            TopologyKind::Torus8x8 => VcAllocSpec::torus(self.vcs_per_class),
        }
    }

    /// The routing algorithm: the topology's (§3.2) unless overridden.
    pub fn routing(&self) -> RoutingKind {
        if let Some(kind) = self.routing_override {
            return kind;
        }
        match self.topology {
            TopologyKind::Mesh8x8 => RoutingKind::DimensionOrder,
            TopologyKind::FlattenedButterfly4x4 => RoutingKind::Ugal { threshold: 3 },
            TopologyKind::Torus8x8 => RoutingKind::TorusDateline,
        }
    }

    /// Design-point label (`mesh 2x1x4`, `fbfly 2x2x2`, ...).
    pub fn label(&self) -> String {
        format!("{} {}", self.topology.label(), self.vc_spec().label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let c = SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2);
        assert_eq!(c.buf_depth, 8);
        assert_eq!(c.vc_spec().total_vcs(), 4);
        assert_eq!(c.vc_spec().label(), "2x1x2");
        assert_eq!(c.label(), "mesh 2x1x2");
        let f = SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 4);
        assert_eq!(f.vc_spec().total_vcs(), 16);
        assert_eq!(f.vc_spec().ports(), 10);
    }
}
