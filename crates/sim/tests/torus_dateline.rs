//! Torus dateline-routing extension (§4.2's other resource-class example):
//! topology, routing and full-network behaviour.

// Panicking on setup failure is the right behaviour outside library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc_sim::packet::RouteState;
use noc_sim::routing::{route_at, RoutingKind};
use noc_sim::{run_sim, Network, SimConfig, Topology, TopologyKind};

#[test]
fn torus_links_are_symmetric_and_complete() {
    let t = TopologyKind::Torus8x8.build();
    assert_eq!(t.num_routers(), 64);
    for r in 0..64 {
        for p in 1..5 {
            let l = t.link(r, p).expect("every torus port connected");
            assert_eq!(l.latency, 1);
            let back = t.link(l.to_router, l.to_port).unwrap();
            assert_eq!((back.to_router, back.to_port), (r, p));
        }
    }
    // Wraparound: router 7 (x=7,y=0) +x reaches router 0.
    assert_eq!(t.link(7, 1).unwrap().to_router, 0);
    assert_eq!(t.link(0, 2).unwrap().to_router, 7);
}

#[test]
fn torus_min_hops_uses_wraparound() {
    let t = TopologyKind::Torus8x8.build();
    // Corner to corner: 2 hops via wrap instead of 14.
    assert_eq!(t.min_hops(0, 63), 2);
    assert_eq!(t.min_hops(0, 36), 8); // (4,4): max distance
}

/// Walk a packet through the torus, collecting routers and VC classes.
fn walk(topo: &Topology, src: usize, dest: usize) -> (Vec<usize>, Vec<usize>) {
    let (mut r, _) = topo.terminal_attach(src);
    let mut state = RouteState::default();
    let mut path = vec![r];
    let mut classes = Vec::new();
    for _ in 0..40 {
        let (la, s) = route_at(topo, RoutingKind::TorusDateline, r, dest, state);
        state = s;
        classes.push(la.resource_class);
        if let Some(t) = topo.port_terminal(r, la.out_port) {
            assert_eq!(t, dest);
            return (path, classes);
        }
        r = topo.link(r, la.out_port).unwrap().to_router;
        path.push(r);
    }
    panic!("routing loop from {src} to {dest}");
}

#[test]
fn torus_routing_is_minimal_for_all_pairs() {
    let topo = TopologyKind::Torus8x8.build();
    for src in [0usize, 5, 27, 63] {
        for dest in 0..64 {
            if src == dest {
                continue;
            }
            let (path, _) = walk(&topo, src, dest);
            assert_eq!(
                path.len() - 1,
                topo.min_hops(src, dest),
                "{src}->{dest}: {path:?}"
            );
        }
    }
}

#[test]
fn dateline_class_transitions_follow_the_discipline() {
    let topo = TopologyKind::Torus8x8.build();
    // 6 -> 1 in the same row: +x over the wrap; classes 0 (pre-dateline)
    // then 1 after crossing x=7 -> x=0.
    let (path, classes) = walk(&topo, 6, 1);
    assert_eq!(path, vec![6, 7, 0, 1]);
    // Hops: 6->7 pre (0), 7->0 crossing (1), 0->1 post (1), eject.
    assert_eq!(&classes[..3], &[0, 1, 1]);

    // Cross in x, then route in y without wrap: class resets to 0.
    // src terminal 6 (x=6,y=0) -> dest (x=1, y=2) = router 17.
    let (_, classes) = walk(&topo, 6, 17);
    // x hops: 6->7 (0), 7->0 (1), 0->1 (1); y hops 1->9 (0), 9->17 (0).
    assert_eq!(&classes[..5], &[0, 1, 1, 0, 0]);

    // No wrap at all: all class 0 until ejection.
    let (_, classes) = walk(&topo, 0, 2);
    assert_eq!(&classes[..2], &[0, 0]);
}

#[test]
fn torus_network_delivers_and_drains() {
    for c in [1usize, 2] {
        let mut net = Network::new(SimConfig {
            injection_rate: 0.2,
            ..SimConfig::paper_baseline(TopologyKind::Torus8x8, c)
        });
        net.stats.set_window(0, u64::MAX);
        net.run(2_500);
        assert!(net.total_flits_injected() > 1_000);
        net.config_mut().injection_rate = 0.0;
        let mut drained = false;
        for _ in 0..5_000 {
            net.step();
            if net.is_drained() {
                drained = true;
                break;
            }
        }
        assert!(drained, "torus C={c} failed to drain");
        assert_eq!(net.total_flits_injected(), net.stats.flits_ejected);
    }
}

#[test]
fn torus_beats_mesh_on_latency_and_saturation() {
    // Half the average distance -> lower zero-load latency; doubled
    // bisection -> higher saturation.
    let mesh = run_sim(
        &SimConfig {
            injection_rate: 0.02,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        },
        1_500,
        5_000,
    );
    let torus = run_sim(
        &SimConfig {
            injection_rate: 0.02,
            ..SimConfig::paper_baseline(TopologyKind::Torus8x8, 2)
        },
        1_500,
        5_000,
    );
    assert!(
        torus.avg_latency < mesh.avg_latency,
        "torus {} !< mesh {}",
        torus.avg_latency,
        mesh.avg_latency
    );
    // At a load the mesh cannot sustain, the torus still can.
    let hot = SimConfig {
        injection_rate: 0.5,
        ..SimConfig::paper_baseline(TopologyKind::Torus8x8, 2)
    };
    let r = run_sim(&hot, 2_000, 4_000);
    assert!(
        r.stable,
        "torus should sustain 0.5 flits/cycle/node uniform"
    );
}

#[test]
fn torus_high_load_no_deadlock_with_single_vc_per_class() {
    // The dateline discipline is what makes C=1 deadlock-free on rings;
    // run well above saturation and confirm forward progress throughout.
    let mut net = Network::new(SimConfig {
        injection_rate: 0.9,
        ..SimConfig::paper_baseline(TopologyKind::Torus8x8, 1)
    });
    net.stats.set_window(0, u64::MAX);
    let mut last = 0;
    for _ in 0..6 {
        net.run(1_000);
        let now = net.stats.packets;
        assert!(now > last, "no forward progress: {last} -> {now}");
        last = now;
    }
}
