//! UGAL routing behaviour at the network level: route-choice adaptivity
//! and its load dependence (§3.2 / Singh '05).

use noc_sim::{Network, SimConfig, TopologyKind, TrafficPattern};

fn ugal_split_at(rate: f64, pattern: TrafficPattern) -> (u64, u64) {
    let mut net = Network::new(SimConfig {
        injection_rate: rate,
        pattern,
        ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2)
    });
    net.stats.set_window(0, u64::MAX);
    net.run(4_000);
    net.ugal_split()
}

#[test]
fn zero_load_traffic_routes_minimally() {
    let (min, non) = ugal_split_at(0.02, TrafficPattern::UniformRandom);
    assert!(min > 100, "not enough packets: {min}");
    let frac = non as f64 / (min + non) as f64;
    assert!(frac < 0.02, "non-minimal fraction at zero load: {frac:.3}");
}

#[test]
fn nonminimal_fraction_grows_with_load() {
    let (min_lo, non_lo) = ugal_split_at(0.1, TrafficPattern::UniformRandom);
    let (min_hi, non_hi) = ugal_split_at(0.5, TrafficPattern::UniformRandom);
    let f_lo = non_lo as f64 / (min_lo + non_lo) as f64;
    let f_hi = non_hi as f64 / (min_hi + non_hi) as f64;
    assert!(
        f_hi > f_lo,
        "UGAL did not divert more under load: {f_lo:.4} -> {f_hi:.4}"
    );
}

#[test]
fn adversarial_traffic_diverts_more_than_uniform() {
    // Tornado concentrates minimal routes onto few row links; UGAL should
    // pick Valiant detours much more often than under uniform traffic at
    // the same rate.
    let (min_u, non_u) = ugal_split_at(0.35, TrafficPattern::UniformRandom);
    let (min_t, non_t) = ugal_split_at(0.35, TrafficPattern::Tornado);
    let f_u = non_u as f64 / (min_u + non_u) as f64;
    let f_t = non_t as f64 / (min_t + non_t) as f64;
    assert!(
        f_t > f_u,
        "tornado should divert more: uniform {f_u:.4} vs tornado {f_t:.4}"
    );
}
