//! Failure injection: the simulator's protocol assertions must catch
//! flow-control corruption rather than silently mis-simulate.

use noc_core::VcAllocSpec;
use noc_sim::packet::{Flit, Lookahead, PacketKind, RouteState};
use noc_sim::router::{Router, RouterConfig};
use noc_sim::routing::RoutingKind;
use noc_sim::TopologyKind;

fn mesh_router() -> Router {
    let spec = VcAllocSpec::mesh(1);
    Router::new(
        27,
        RouterConfig::paper_default(spec, RoutingKind::DimensionOrder),
    )
}

fn flit(out_port: usize) -> Flit {
    Flit {
        packet_id: 7,
        flit_index: 0,
        head: true,
        tail: true,
        kind: PacketKind::ReadRequest,
        src: 0,
        dest: 63,
        birth: 0,
        injected: 0,
        lookahead: Lookahead {
            out_port,
            resource_class: 0,
        },
        route_state: RouteState::default(),
    }
}

#[test]
#[should_panic(expected = "overflow")]
fn buffer_overflow_is_caught() {
    // Inject more flits than the buffer holds without ever draining:
    // the credit protocol forbids this, and the router must assert.
    let mut r = mesh_router();
    for _ in 0..9 {
        r.accept_flit(2, 0, flit(1), 0);
    }
}

#[test]
#[should_panic(expected = "credit overflow")]
fn spurious_credit_is_caught() {
    // Returning a credit that was never consumed overflows the counter.
    let mut r = mesh_router();
    r.accept_credit(1, 0);
}

#[test]
fn credits_balance_after_traffic() {
    // After a flit departs and its downstream credit returns, the counter
    // is back at full depth — no silent leaks.
    let topo = TopologyKind::Mesh8x8.build();
    let mut r = mesh_router();
    r.accept_flit(0, 0, flit(1), 0);
    let mut departed = false;
    for t in 0..6 {
        if !r.step(&topo, t).flits.is_empty() {
            departed = true;
            // Downstream frees the slot.
            r.accept_credit(1, 0);
        }
    }
    assert!(departed);
    // A second packet flows normally, proving the credit came back.
    r.accept_flit(0, 0, flit(1), 6);
    let mut again = false;
    for t in 6..12 {
        if !r.step(&topo, t).flits.is_empty() {
            again = true;
        }
    }
    assert!(again);
}

#[test]
#[should_panic]
fn out_of_range_port_is_caught() {
    let mut r = mesh_router();
    // Port 9 does not exist on a P=5 router.
    r.accept_flit(9, 0, flit(1), 0);
}
