//! Integration tests for the statistics engine: steady-state detection,
//! replicated confidence intervals, and histogram percentile accuracy.

use noc_obs::HdrHistogram;
use noc_sim::{run_sim, run_sim_auto, run_sim_replicated, SimConfig, TopologyKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mesh(rate: f64) -> SimConfig {
    SimConfig {
        injection_rate: rate,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
    }
}

#[test]
fn replicated_cis_from_disjoint_seed_sets_overlap() {
    // Two independent 6-seed replications of the same workload estimate
    // the same true mean, so their 95% confidence intervals must overlap
    // (the means differ by less than the sum of half-widths).
    let a = run_sim_replicated(&mesh(0.1), 3_000, 6);
    let b = run_sim_replicated(
        &SimConfig {
            seed: 0xfeed_beef,
            ..mesh(0.1)
        },
        3_000,
        6,
    );
    assert_eq!(a.seeds, 6);
    assert!(a.ci95.is_finite() && a.ci95 > 0.0, "ci95 {}", a.ci95);
    assert!(b.ci95.is_finite() && b.ci95 > 0.0);
    // With only 6 replicates the t-interval itself is noisy, so allow a
    // 2x safety factor — this still catches CIs that are off by an order
    // of magnitude (the failure mode a units/variance bug produces).
    let gap = (a.avg_latency - b.avg_latency).abs();
    assert!(
        gap < 2.0 * (a.ci95 + b.ci95),
        "disjoint-seed means {:.3} vs {:.3} differ by {gap:.3}, \
         more than twice the summed CI half-widths {:.3}",
        a.avg_latency,
        b.avg_latency,
        a.ci95 + b.ci95
    );
}

#[test]
fn ci_width_shrinks_roughly_with_sqrt_seeds() {
    // 4 -> 16 seeds is 4x the replicates: the t-multiplier drops and the
    // standard error halves, so the half-width should shrink by roughly
    // a factor of 2-3. A single 4-replicate variance estimate is far too
    // noisy to assert that (df = 3), so average the half-widths over
    // three disjoint base seeds before comparing.
    let hw = |n_seeds: usize| {
        [0u64, 101, 202]
            .iter()
            .map(|&s| {
                let cfg = SimConfig {
                    seed: 0xba5e ^ (s * 1_000_003),
                    ..mesh(0.1)
                };
                let w = run_sim_replicated(&cfg, 2_000, n_seeds).ci95;
                assert!(w.is_finite() && w > 0.0, "ci95 {w} for {n_seeds} seeds");
                w
            })
            .sum::<f64>()
            / 3.0
    };
    let (hw4, hw16) = (hw(4), hw(16));
    assert!(hw16 < hw4, "mean hw16 {hw16} !< mean hw4 {hw4}");
    let ratio = hw4 / hw16;
    assert!((1.2..10.0).contains(&ratio), "shrink ratio {ratio}");
}

#[test]
fn auto_warmup_detects_the_fill_transient() {
    let auto = run_sim_auto(&mesh(0.15), 6_000);
    let warmup = auto
        .warmup_detected
        .expect("run_sim_auto must report the detected warmup");
    assert!(
        warmup < 3_000,
        "MSER truncated more than half the run: {warmup}"
    );
    assert!(auto.avg_latency.is_finite());
    // The auto-truncated mean must agree with a generously fixed warmup.
    let fixed = run_sim(&mesh(0.15), 2_000, 4_000);
    let rel = (auto.avg_latency - fixed.avg_latency).abs() / fixed.avg_latency;
    assert!(
        rel < 0.15,
        "auto ({:.2}) vs fixed-warmup ({:.2}) means diverge by {:.1}%",
        auto.avg_latency,
        fixed.avg_latency,
        rel * 100.0
    );
}

#[test]
fn auto_runs_carry_a_batch_means_ci() {
    let auto = run_sim_auto(&mesh(0.1), 6_000);
    assert!(
        auto.ci95.is_finite() && auto.ci95 > 0.0,
        "batch-means ci95 {}",
        auto.ci95
    );
    assert_eq!(auto.seeds, 1);
}

#[test]
fn hdr_percentiles_track_the_sorted_reference() {
    // Random latency mixture (short hops + a heavy tail) recorded into
    // the histogram must reproduce the exact order statistics within the
    // histogram's guaranteed relative error (1/32, plus 1 for the
    // within-bucket interpolation granularity).
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let mut samples: Vec<u64> = Vec::new();
    let mut hist = HdrHistogram::new();
    for _ in 0..3_000 {
        let lat = if rng.gen_bool(0.8) {
            rng.gen_range(1u64..64)
        } else {
            rng.gen_range(64u64..5_000)
        };
        samples.push(lat);
        hist.record(lat);
    }
    samples.sort_unstable();
    for q in [0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1] as f64;
        let est = hist.percentile(q);
        let tol = exact / 32.0 + 1.0;
        assert!(
            (est - exact).abs() <= tol,
            "p{q}: estimate {est} vs exact {exact} (tol {tol})"
        );
    }
}

#[test]
#[should_panic(expected = "percentile q must be in (0, 1]")]
fn percentile_zero_is_rejected() {
    let mut hist = HdrHistogram::new();
    hist.record(10);
    hist.percentile(0.0);
}

#[test]
fn seed_prefix_nesting_is_stable() {
    // Replicate seeds are cfg.seed, cfg.seed+1, ...: the 2-seed run uses
    // a prefix of the 4-seed run's seeds, so adding seeds refines rather
    // than replaces the estimate. Verified indirectly: both runs must
    // agree within their CIs.
    let r2 = run_sim_replicated(&mesh(0.1), 3_000, 2);
    let r4 = run_sim_replicated(&mesh(0.1), 3_000, 4);
    assert_eq!(r2.warmup_detected, r4.warmup_detected, "same pilot run");
    let gap = (r2.avg_latency - r4.avg_latency).abs();
    assert!(
        gap <= r2.ci95.max(1.0),
        "nested runs diverge: {:.3} vs {:.3}",
        r2.avg_latency,
        r4.avg_latency
    );
}
