//! Network-level fairness (the §2.1 starvation-avoidance machinery,
//! observed end to end) and the §5.4 throughput-oriented bulk workload.

use noc_sim::{Network, SimConfig, TopologyKind};

#[test]
fn per_source_latency_is_balanced_under_uniform_traffic() {
    // The iSLIP-style priority updates and rotating wavefront diagonals
    // exist to prevent starvation; at a moderate uniform load no source
    // should see wildly worse service than another.
    let mut net = Network::new(SimConfig {
        injection_rate: 0.25,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
    });
    net.stats.set_window(2_000, 8_000);
    net.run(8_000);
    let spread = net.stats.source_latency_spread();
    assert!(spread.is_finite());
    assert!(
        spread < 2.0,
        "per-source latency spread {spread:.2} suggests starvation"
    );
    // Every source delivered something.
    assert!(net.stats.per_source_latency().iter().all(|l| l.is_finite()));
}

#[test]
fn bulk_bursts_preserve_offered_load_calibration() {
    // burst=4 with the same rate must inject (asymptotically) the same
    // flits/cycle as burst=1.
    let run = |burst: usize| {
        let mut net = Network::new(SimConfig {
            injection_rate: 0.2,
            burst,
            ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2)
        });
        net.stats.set_window(1_000, 7_000);
        net.run(7_000);
        net.stats.throughput(net.topo.num_terminals())
    };
    let t1 = run(1);
    let t4 = run(4);
    assert!((t1 - 0.2).abs() < 0.03, "burst=1 accepted {t1}");
    assert!((t4 - 0.2).abs() < 0.03, "burst=4 accepted {t4}");
}

#[test]
fn bulk_traffic_is_burstier_but_still_stable() {
    let run = |burst: usize| {
        let mut net = Network::new(SimConfig {
            injection_rate: 0.25,
            burst,
            ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 4)
        });
        net.stats.set_window(1_500, 6_000);
        net.run(6_000);
        (net.stats.avg_latency(), net.stats.latency_std_dev())
    };
    let (lat1, sd1) = run(1);
    let (lat8, sd8) = run(8);
    assert!(lat1.is_finite() && lat8.is_finite());
    // Bursts queue behind each other at the source: higher latency and
    // much higher variance at the same offered load.
    assert!(lat8 > lat1, "bulk latency {lat8} !> {lat1}");
    assert!(sd8 > sd1, "bulk jitter {sd8} !> {sd1}");
}
