//! Panic-safety regression for the parallel engine: `run_parallel`
//! `drain()`s the routers and output buffers into `UnsafeCell` shards, so
//! before the restore guard a worker panic unwinding through
//! `thread::scope` left the `Network` with zero routers (and a panic on
//! the main thread hung the scope join forever). These tests inject a
//! panicking router step and assert the network comes back intact.

use noc_sim::{Network, SimConfig, TopologyKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Silence the injected panics: every test here *expects* an unwind from
/// `arm_router_panic`, and those worker backtraces would drown the test
/// output. Real assertion failures still print.
fn quiet_panics() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected router panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn net() -> Network {
    let cfg = SimConfig {
        injection_rate: 0.1,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
    };
    Network::new(cfg)
}

#[test]
fn worker_panic_restores_router_state() {
    quiet_panics();
    let mut n = net();
    let full = n.router_count();
    assert_eq!(full, 64);
    n.arm_router_panic(37, 10);
    let err = catch_unwind(AssertUnwindSafe(|| n.run_parallel(50, 3)))
        .expect_err("armed panic did not fire");
    let msg = err
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| err.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string payload>");
    assert!(
        msg.contains("injected router panic"),
        "unexpected panic payload: {msg}"
    );
    // The drop guard must have restored every drained router and output
    // buffer — before the fix this was 0 and the network was unusable.
    assert_eq!(n.router_count(), full, "routers lost on unwind");
    // The network stays structurally sound: read-out paths must not
    // panic or see empty state.
    let _ = n.router_stats();
    assert_eq!(n.router_obs().len(), full);
    let _ = n.is_drained();
}

#[test]
fn panic_on_first_cycle_restores_router_state() {
    // Cycle 0 panics before any epoch completes — the guard must restore
    // even when no cycle ever committed.
    quiet_panics();
    let mut n = net();
    let full = n.router_count();
    n.arm_router_panic(0, 0);
    let err = catch_unwind(AssertUnwindSafe(|| n.run_parallel(5, 2)));
    assert!(err.is_err(), "armed panic did not fire");
    assert_eq!(n.router_count(), full);
}

#[test]
fn single_threaded_and_sequential_paths_unaffected() {
    // threads == 1 takes the step_parallel fallback, which never drains
    // the routers; the armed panic still propagates and the network
    // still holds its routers.
    quiet_panics();
    let mut n = net();
    let full = n.router_count();
    n.arm_router_panic(12, 3);
    let err = catch_unwind(AssertUnwindSafe(|| n.run_parallel(10, 1)));
    assert!(err.is_err(), "armed panic did not fire");
    assert_eq!(n.router_count(), full);
}

#[test]
fn unpoisoned_run_matches_sequential_after_fix() {
    // The guard must not perturb the normal path: par stays bit-identical
    // to seq on a short run.
    quiet_panics();
    let mut a = net();
    let mut b = net();
    a.stats.set_window(0, 200);
    b.stats.set_window(0, 200);
    a.run(200);
    b.run_parallel(200, 3);
    assert_eq!(a.now, b.now);
    assert_eq!(a.stats.flits_ejected, b.stats.flits_ejected);
    assert_eq!(a.stats.latency_sum, b.stats.latency_sum);
    assert_eq!(a.total_flits_injected(), b.total_flits_injected());
}
