//! Pipeline-level timing checks of the router model, across allocator
//! architectures: per-hop latency composition, back-to-back throughput,
//! and speculation behaviour — the micro-facts the Figure 13/14 macro
//! results rest on.

use noc_core::{SpecMode, SwitchAllocatorKind};
use noc_sim::{run_sim, Network, SimConfig, TopologyKind};

fn sa_kinds() -> Vec<SwitchAllocatorKind> {
    use noc_arbiter::ArbiterKind::RoundRobin;
    vec![
        SwitchAllocatorKind::SepIf(RoundRobin),
        SwitchAllocatorKind::SepOf(RoundRobin),
        SwitchAllocatorKind::Wavefront,
    ]
}

/// Zero-load latency of a single-flit packet between adjacent mesh
/// terminals decomposes into known pipeline pieces; check the speculative
/// pipeline hits the expected constant for every switch allocator.
#[test]
fn zero_load_latency_identical_across_switch_allocators() {
    let mut lats = Vec::new();
    for kind in sa_kinds() {
        let cfg = SimConfig {
            sa_kind: kind,
            injection_rate: 0.01,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
        };
        let r = run_sim(&cfg, 1_500, 5_000);
        lats.push(r.avg_latency);
    }
    // At zero load there are no conflicts: all three allocators grant the
    // lone request, so latency must be equal within noise.
    let (min, max) = (
        lats.iter().cloned().fold(f64::INFINITY, f64::min),
        lats.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        max - min < 0.5,
        "zero-load latencies diverge across allocators: {lats:?}"
    );
}

/// The non-speculative pipeline costs exactly one extra cycle per hop for
/// head flits; with ~avg hop count H on the mesh, the zero-load latency
/// difference is ≈ H.
#[test]
fn nonspec_penalty_scales_with_hop_count() {
    let base = SimConfig {
        injection_rate: 0.01,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
    };
    let spec = run_sim(&base, 1_500, 6_000).avg_latency;
    let nonspec = run_sim(
        &SimConfig {
            spec_mode: SpecMode::NonSpeculative,
            ..base.clone()
        },
        1_500,
        6_000,
    )
    .avg_latency;
    let diff = nonspec - spec;
    // 8x8 mesh uniform: ~5.25 router-router hops, +1 router = ~6.25 VA
    // stages that speculation hides.
    assert!(
        (4.0..9.0).contains(&diff),
        "per-packet penalty {diff} (spec {spec}, nonspec {nonspec})"
    );
}

/// At moderate load every switch allocator must sustain the offered
/// throughput exactly (accepted == offered below saturation).
#[test]
fn accepted_equals_offered_below_saturation_for_all_allocators() {
    for kind in sa_kinds() {
        let cfg = SimConfig {
            sa_kind: kind,
            injection_rate: 0.25,
            ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2)
        };
        let r = run_sim(&cfg, 2_000, 5_000);
        assert!(r.stable, "{kind:?}");
        assert!(
            (r.throughput - 0.25).abs() < 0.02,
            "{kind:?}: accepted {} vs offered 0.25",
            r.throughput
        );
    }
}

/// A router fed back-to-back single-flit packets on one VC sustains one
/// flit every cycle through the speculative pipeline (the pipelining
/// claim behind the 2-stage design).
#[test]
fn mesh_link_sustains_full_rate_on_linear_traffic() {
    // Neighbor traffic: terminal i -> terminal i+1 in the same row, so
    // each link carries exactly one flow with no contention.
    // Approximate with a high-rate uniform run restricted to C=4 to avoid
    // VC starvation, and check per-terminal accepted rate is high.
    let cfg = SimConfig {
        injection_rate: 0.4,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 4)
    };
    let r = run_sim(&cfg, 3_000, 6_000);
    assert!(r.throughput > 0.35, "throughput {}", r.throughput);
}

/// Misspeculation accounting: clean + masked + invalid speculative grants
/// are all tracked, and at tiny loads speculation almost always succeeds.
#[test]
fn speculation_succeeds_at_low_load() {
    let cfg = SimConfig {
        injection_rate: 0.02,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
    };
    let r = run_sim(&cfg, 1_000, 5_000);
    let s = r.router_stats;
    let total = s.spec_grants + s.spec_masked + s.spec_invalid;
    assert!(total > 100, "not enough speculation activity: {total}");
    let success = s.spec_grants as f64 / total as f64;
    assert!(
        success > 0.85,
        "low-load speculation success only {success:.2}"
    );
}

/// With speculation disabled the speculative counters stay at zero.
#[test]
fn nonspec_mode_never_speculates() {
    let cfg = SimConfig {
        spec_mode: SpecMode::NonSpeculative,
        injection_rate: 0.2,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
    };
    let r = run_sim(&cfg, 1_000, 3_000);
    let s = r.router_stats;
    assert_eq!(s.spec_grants + s.spec_masked + s.spec_invalid, 0);
    assert!(s.nonspec_grants > 0);
}

/// Replies must flow even when request traffic is saturating (no protocol
/// deadlock): run far above saturation and verify packets keep completing.
#[test]
fn overload_does_not_deadlock_request_reply_protocol() {
    let cfg = SimConfig {
        injection_rate: 0.9,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
    };
    let mut net = Network::new(cfg);
    net.stats.set_window(0, u64::MAX);
    net.run(4_000);
    let early = net.stats.packets;
    net.run(4_000);
    let late = net.stats.packets;
    assert!(
        late > early + 500,
        "delivery stalled under overload: {early} -> {late}"
    );
}

/// UGAL diverts traffic under adversarial load: with tornado traffic the
/// saturation throughput must exceed what pure minimal routing could
/// sustain on the loaded row links.
#[test]
fn ugal_survives_adversarial_traffic() {
    let cfg = SimConfig {
        pattern: noc_sim::TrafficPattern::Tornado,
        injection_rate: 0.25,
        ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2)
    };
    let r = run_sim(&cfg, 2_000, 5_000);
    assert!(r.stable, "UGAL should sustain 0.25 under tornado");
}
