//! Miri target for the parallel engine's unsafe shard protocol.
//!
//! `cargo miri test -p noc-sim --test par_miri` interprets a real
//! threaded `run_parallel` under Miri's data-race detector and borrow
//! checker — the dynamic complement to the exhaustive-but-abstract model
//! in `crates/mc`. The run is deliberately tiny (Miri executes every
//! instruction interpretively, ~1000× slower than native): a few cycles
//! are enough to cross every synchronization edge of the epoch/done/stop
//! protocol at least once — publish, worker step, signal, commit, stop.

use noc_sim::{Network, SimConfig, TopologyKind};

fn tiny() -> Network {
    let cfg = SimConfig {
        injection_rate: 0.05,
        ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
    };
    Network::new(cfg)
}

/// Under Miri this is the soundness check; under plain `cargo test` it
/// degenerates to a fast seq/par equivalence smoke test.
#[test]
fn run_parallel_tiny_threaded() {
    // Enough cycles for flits to traverse a hop and credits to return,
    // few enough that Miri finishes in minutes.
    let cycles = if cfg!(miri) { 4 } else { 64 };
    let mut seq = tiny();
    let mut par = tiny();
    seq.run(cycles);
    par.run_parallel(cycles, 2);
    assert_eq!(seq.now, par.now);
    assert_eq!(
        seq.total_flits_injected(),
        par.total_flits_injected(),
        "parallel engine diverged from sequential under the tiny config"
    );
    assert_eq!(seq.stats.flits_ejected, par.stats.flits_ejected);
}

/// Back-to-back parallel runs on one network reuse the same cells and
/// respawn the worker scope — the resurrection path Miri should also see.
#[test]
fn run_parallel_twice_reuses_state() {
    let cycles = if cfg!(miri) { 2 } else { 32 };
    let mut net = tiny();
    net.run_parallel(cycles, 2);
    net.run_parallel(cycles, 2);
    assert_eq!(net.now, 2 * cycles);
}
