//! Model-vs-real drift test: the `crates/mc` `run_par` model proves the
//! protocol *it encodes* race-free. That proof transfers to the engine
//! only while the two stay in lockstep, so every shared constant — spin
//! threshold, phase order, the atomic ordering at each synchronization
//! site, and the shard-split formula — is compared field by field here.
//! If `run_parallel` changes an ordering without updating the model (or
//! vice versa), this test fails before the unsound build ships.

use noc_sim::network::par_protocol as real;
use std::sync::atomic::Ordering as StdOrdering;

/// Maps a modeled ordering onto the `std` ordering it abstracts.
fn as_std(ord: noc_mc::Ordering) -> StdOrdering {
    match ord {
        // RELAXED: a table mapping modeled orderings to std names, not an
        // atomic access site.
        noc_mc::Ordering::Relaxed => StdOrdering::Relaxed,
        noc_mc::Ordering::Acquire => StdOrdering::Acquire,
        noc_mc::Ordering::Release => StdOrdering::Release,
        noc_mc::Ordering::AcqRel => StdOrdering::AcqRel,
    }
}

#[test]
fn spin_limit_matches() {
    assert_eq!(real::SPIN_LIMIT, noc_mc::protocol::SPIN_LIMIT);
}

#[test]
fn phase_order_matches() {
    assert_eq!(real::PHASES, noc_mc::protocol::PHASES);
}

#[test]
fn every_ordering_site_matches() {
    let model = noc_mc::protocol::ProtocolOrderings::default();
    let sites = [
        ("epoch_publish", real::EPOCH_PUBLISH, model.epoch_publish),
        ("done_reset", real::DONE_RESET, model.done_reset),
        ("done_signal", real::DONE_SIGNAL, model.done_signal),
        ("done_wait", real::DONE_WAIT, model.done_wait),
        ("epoch_wait", real::EPOCH_WAIT, model.epoch_wait),
        ("stop_publish", real::STOP_PUBLISH, model.stop_publish),
        ("stop_wait", real::STOP_WAIT, model.stop_wait),
    ];
    for (site, engine, modeled) in sites {
        assert_eq!(
            engine,
            as_std(modeled),
            "ordering drift at `{site}`: engine uses {engine:?}, model checks {modeled:?}"
        );
    }
}

#[test]
fn shard_split_matches() {
    // Same formula, same outputs — including the uneven cases (64
    // routers over 3 or 5 workers) where an off-by-one would overlap or
    // leak a router.
    for n in [1usize, 2, 7, 16, 63, 64, 100] {
        for threads in 1..=8 {
            for k in 0..threads {
                assert_eq!(
                    real::shard_range(k, n, threads),
                    noc_mc::protocol::shard_range(k, n, threads),
                    "shard drift at k={k} n={n} threads={threads}"
                );
            }
        }
    }
}
