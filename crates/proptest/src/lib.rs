#![forbid(unsafe_code)]
//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors a
//! small PRNG-driven property-test harness behind the subset of the proptest
//! 1.x API the workspace's tests use: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `Strategy` with `prop_map` / `prop_flat_map`,
//! `ProptestConfig::with_cases`, `Just`, integer-range strategies, and the
//! `bool::ANY` / `num::u8::ANY` / `collection::vec` / `option::of` strategy
//! constructors.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! immediately with the case number and fixed seed, which is enough to
//! reproduce it (generation is fully deterministic per test).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure value for property bodies that return `Result` (stand-in for
/// `proptest::test_runner::TestCaseError`). Helpers used inside `proptest!`
/// bodies can return `Result<(), TestCaseError>` and be chained with `?`.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold for this case.
    Fail(String),
    /// The generated case should be discarded (treated as a failure here,
    /// since this shim does not re-draw rejected cases).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// The RNG driving value generation (deterministic per test).
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named property test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name so each property gets its own stream.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator (stand-in for `proptest::strategy::Strategy`).
///
/// Strategies are pure generators here: `gen` draws one value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen(rng)).gen(rng)
    }
}

/// Always generates a clone of one value (stand-in for `proptest::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.gen(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod bool {
    //! Boolean strategies (stand-in for `proptest::bool`).

    use super::{Rng, Strategy, TestRng};

    /// Uniform `true`/`false`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod num {
    //! Numeric strategies (stand-in for `proptest::num`).

    macro_rules! num_module {
        ($($m:ident),*) => {$(
            pub mod $m {
                use crate::{Rng, Strategy, TestRng};

                /// Uniform over the full domain of the type.
                #[derive(Clone, Copy, Debug)]
                pub struct Any;

                /// The uniform strategy for this type.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    // The module is named after the primitive it generates,
                    // so the type must be named through `std::primitive`.
                    type Value = ::std::primitive::$m;
                    fn gen(&self, rng: &mut TestRng) -> ::std::primitive::$m {
                        rng.next_u64() as ::std::primitive::$m
                    }
                }
            }
        )*};
    }

    num_module!(u8, u16, u32, u64, usize);
}

pub mod collection {
    //! Collection strategies (stand-in for `proptest::collection`).

    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// Element count for [`vec`]: a fixed length or a length range.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Generates `Vec`s of values from `element`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.gen(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies (stand-in for `proptest::option`).

    use super::{Rng, Strategy, TestRng};

    /// Generates `Some(value)` about three quarters of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.gen(rng))
            } else {
                None
            }
        }
    }
}

pub mod minimize {
    //! Minimal-input search for failing matrix cases.
    //!
    //! The shim's `proptest!` macro has no shrinking, which makes a failing
    //! 16×16 request matrix nearly unreadable. Matrix-shaped properties can
    //! instead minimize by hand: on failure, call [`matrix`] with a
    //! predicate that re-runs the property, and report the stripped-down
    //! counterexample. Dimensions are preserved (allocator priority state
    //! depends on them); minimization clears entries, never resizes.

    /// Greedily minimizes a failing boolean matrix under `still_fails`.
    ///
    /// Strips whole rows first, then whole columns, then individual set
    /// bits, repeating to a fixpoint. The result still satisfies
    /// `still_fails` and is 1-minimal: clearing any single remaining set
    /// bit no longer reproduces the failure. The predicate must be pure
    /// per call (construct fresh state inside it); it is called many times.
    ///
    /// `m` must be rectangular and must fail on entry — otherwise the
    /// original matrix is returned unchanged.
    pub fn matrix<F>(mut m: Vec<Vec<bool>>, mut still_fails: F) -> Vec<Vec<bool>>
    where
        F: FnMut(&[Vec<bool>]) -> bool,
    {
        if !still_fails(&m) {
            return m;
        }
        let cols = m.first().map_or(0, Vec::len);
        loop {
            let mut changed = false;
            // Whole rows: the biggest bite first.
            for r in 0..m.len() {
                if m[r].iter().any(|&b| b) {
                    let saved = std::mem::replace(&mut m[r], vec![false; cols]);
                    if still_fails(&m) {
                        changed = true;
                    } else {
                        m[r] = saved;
                    }
                }
            }
            // Whole columns.
            for c in 0..cols {
                if m.iter().any(|row| row[c]) {
                    let saved: Vec<bool> = m.iter().map(|row| row[c]).collect();
                    for row in &mut m {
                        row[c] = false;
                    }
                    if still_fails(&m) {
                        changed = true;
                    } else {
                        for (row, &b) in m.iter_mut().zip(&saved) {
                            row[c] = b;
                        }
                    }
                }
            }
            // Individual bits.
            for r in 0..m.len() {
                for c in 0..cols {
                    if m[r][c] {
                        m[r][c] = false;
                        if still_fails(&m) {
                            changed = true;
                        } else {
                            m[r][c] = true;
                        }
                    }
                }
            }
            if !changed {
                return m;
            }
        }
    }

    /// Renders a minimized matrix for a failure message.
    pub fn render(m: &[Vec<bool>]) -> String {
        m.iter()
            .map(|row| {
                row.iter()
                    .map(|&b| if b { '1' } else { '.' })
                    .collect::<String>()
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

pub mod prelude {
    //! The common imports (stand-in for `proptest::prelude`).

    /// `prop::` path alias used by `proptest::prelude::*` consumers.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a property (panics without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics without shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics without shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests (stand-in for `proptest::proptest!`).
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn name(x in strategy, (a, b) in other_strategy) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    // The body runs in a `Result` closure so `?` works on
                    // helpers returning `Result<(), TestCaseError>`.
                    let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::Strategy::gen(&($strat), &mut rng);)+
                        $body
                        Ok(())
                    };
                    let report = || eprintln!(
                        "proptest case {}/{} of {} failed (deterministic seed; re-run to reproduce)",
                        case + 1, cfg.cases, stringify!($name),
                    );
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            report();
                            panic!("{e}");
                        }
                        Err(e) => {
                            report();
                            std::panic::resume_unwind(e);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_rng("ranges_and_maps");
        let s = (1usize..=4).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = s.gen(&mut rng);
            assert!([2, 4, 6, 8].contains(&v));
        }
    }

    #[test]
    fn flat_map_threads_the_outer_value() {
        let mut rng = crate::test_rng("flat_map");
        let s = (2usize..5).prop_flat_map(|n| {
            crate::collection::vec(crate::bool::ANY, n).prop_map(move |v| (n, v))
        });
        for _ in 0..50 {
            let (n, v) = s.gen(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn minimizer_strips_seeded_failure_to_its_essential_bits() {
        // Regression for the matrix minimizer on a seeded known-failure: a
        // dense random 8x6 matrix whose "bug" only needs bits (2, 3) and
        // (5, 0). The minimizer must strip every other row, column, and bit
        // and return exactly the two essential entries.
        use rand::Rng;
        let mut rng = crate::test_rng("minimizer_seeded_failure");
        let mut m: Vec<Vec<bool>> = (0..8)
            .map(|_| (0..6).map(|_| rng.gen_bool(0.7)).collect())
            .collect();
        m[2][3] = true;
        m[5][0] = true;
        let fails = |m: &[Vec<bool>]| m[2][3] && m[5][0];
        let min = crate::minimize::matrix(m, fails);
        let expected: Vec<Vec<bool>> = (0..8)
            .map(|r| {
                (0..6)
                    .map(|c| (r, c) == (2, 3) || (r, c) == (5, 0))
                    .collect()
            })
            .collect();
        assert_eq!(min, expected, "\n{}", crate::minimize::render(&min));
    }

    #[test]
    fn minimizer_returns_input_when_it_does_not_fail() {
        let m = vec![vec![true, false], vec![false, true]];
        let same = crate::minimize::matrix(m.clone(), |_| false);
        assert_eq!(same, m);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_form_works(x in 0usize..10, flags in prop::collection::vec(prop::bool::ANY, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(flags.len() < 5);
        }

        #[test]
        fn tuple_and_option_strategies(
            (a, b) in (1usize..3, prop::num::u8::ANY),
            o in prop::option::of(0usize..2)
        ) {
            prop_assert!(a < 3);
            let _ = b;
            if let Some(v) = o {
                prop_assert!(v < 2);
            }
        }
    }
}
