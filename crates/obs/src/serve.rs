//! The `noc-serve/v1` wire schema — sweep-as-a-service requests,
//! per-point progress/result lines, and end-of-request summaries.
//!
//! One TCP connection carries one request: the client sends a single
//! JSON line, the daemon answers with a JSONL stream. Every line on the
//! wire is tagged with the schema so a mismatched client fails loudly,
//! and every response line carries the request's `id` so logs from
//! concurrent clients interleave unambiguously.
//!
//! Request line (`type` selects the kind):
//!
//! ```json
//! {"schema":"noc-serve/v1","type":"sweep","id":"c1","spec":{...sweep spec...}}
//! {"schema":"noc-serve/v1","type":"preset","id":"c2","preset":"smoke"}
//! {"schema":"noc-serve/v1","type":"status","id":"c3"}
//! ```
//!
//! An optional `"engine"` member on `sweep`/`preset` requests overrides
//! the engine for every point of that request. The sweep spec grammar
//! itself is owned by `noc_bench::sweep::SweepSpec` — this module only
//! frames it.
//!
//! Response stream:
//!
//! ```json
//! {"schema":"noc-serve/v1","type":"accepted","id":"c1","total":4,"unique":3}
//! {"schema":"noc-serve/v1","type":"result","id":"c1","digest":"…","label":"…",
//!  "source":"computed","wall_ms":12,"result":{…SimResult…}}
//! {"schema":"noc-serve/v1","type":"done","id":"c1","unique":3,"total":4,
//!  "scheduled":2,"cache_hits":0,"coalesced":1,"wall_ms":40}
//! {"schema":"noc-serve/v1","type":"error","id":"c1","message":"…"}
//! ```
//!
//! `source` on a result line records how the daemon satisfied the point
//! globally: `computed` (simulated for this request), `cache` (already
//! in the content-addressed store) — a point another in-flight request
//! was already computing arrives as that worker's `computed` line. The
//! per-client split lives in the `done` line: `scheduled` points this
//! request put on the worker queue, `cache_hits` served immediately,
//! `coalesced` de-duplicated onto another client's in-flight work.

use crate::json::JsonValue;
use std::fmt::Write as _;

/// Wire schema tag carried by every request and response line.
pub const SERVE_SCHEMA: &str = "noc-serve/v1";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A `sweep` request line embedding an already-validated sweep-spec JSON
/// document (the caller must pass well-formed JSON; it is embedded raw).
/// Newlines in the document are collapsed to spaces — the wire is
/// line-framed, and JSON strings cannot contain literal newlines, so the
/// collapse never alters content.
pub fn serve_sweep_request_line(id: &str, spec_json: &str, engine: Option<&str>) -> String {
    let engine = engine
        .map(|e| format!(",\"engine\":\"{}\"", esc(e)))
        .unwrap_or_default();
    let spec = spec_json.replace(['\n', '\r'], " ");
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"type\":\"sweep\",\"id\":\"{}\"{engine},\"spec\":{}}}",
        esc(id),
        spec.trim()
    )
}

/// A `preset` request line naming an in-repo sweep preset.
pub fn serve_preset_request_line(id: &str, preset: &str, engine: Option<&str>) -> String {
    let engine = engine
        .map(|e| format!(",\"engine\":\"{}\"", esc(e)))
        .unwrap_or_default();
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"type\":\"preset\",\"id\":\"{}\"{engine},\"preset\":\"{}\"}}",
        esc(id),
        esc(preset)
    )
}

/// A `status` request line (daemon-lifetime counters, no simulation).
pub fn serve_status_request_line(id: &str) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"type\":\"status\",\"id\":\"{}\"}}",
        esc(id)
    )
}

/// The `accepted` response: the request parsed and expanded to `total`
/// points (`unique` after in-request digest dedup).
pub fn serve_accepted_line(id: &str, total: usize, unique: usize) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"type\":\"accepted\",\"id\":\"{}\",\"total\":{total},\"unique\":{unique}}}",
        esc(id)
    )
}

/// One per-point `result` response line. `result_json` must be the
/// point's `SimResult` JSON document (embedded raw).
pub fn serve_result_line(
    id: &str,
    digest: &str,
    label: &str,
    source: &str,
    wall_ms: u64,
    result_json: &str,
) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"type\":\"result\",\"id\":\"{}\",\"digest\":\"{}\",\"label\":\"{}\",\"source\":\"{}\",\"wall_ms\":{wall_ms},\"result\":{result_json}}}",
        esc(id),
        esc(digest),
        esc(label),
        esc(source)
    )
}

/// The terminal `done` response line for a request.
pub fn serve_done_line(
    id: &str,
    unique: usize,
    total: usize,
    scheduled: usize,
    cache_hits: usize,
    coalesced: usize,
    wall_ms: u64,
) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"type\":\"done\",\"id\":\"{}\",\"unique\":{unique},\"total\":{total},\"scheduled\":{scheduled},\"cache_hits\":{cache_hits},\"coalesced\":{coalesced},\"wall_ms\":{wall_ms}}}",
        esc(id)
    )
}

/// The `status` response line: daemon-lifetime counters.
pub fn serve_status_line(
    id: &str,
    computed: usize,
    cache_hits: usize,
    coalesced: usize,
    inflight: usize,
    clients: usize,
) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"type\":\"status\",\"id\":\"{}\",\"computed\":{computed},\"cache_hits\":{cache_hits},\"coalesced\":{coalesced},\"inflight\":{inflight},\"clients\":{clients}}}",
        esc(id)
    )
}

/// An `error` response line; the connection closes after it.
pub fn serve_error_line(id: &str, message: &str) -> String {
    format!(
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"type\":\"error\",\"id\":\"{}\",\"message\":\"{}\"}}",
        esc(id),
        esc(message)
    )
}

/// A parsed `noc-serve/v1` response line, as a client sees it.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeEvent {
    /// Request accepted and expanded.
    Accepted {
        /// Request id (echoed).
        id: String,
        /// Points before in-request dedup.
        total: usize,
        /// Unique digests the stream will deliver.
        unique: usize,
    },
    /// One completed point.
    Result {
        /// Request id (echoed).
        id: String,
        /// The point's content digest.
        digest: String,
        /// Human-readable point label.
        label: String,
        /// How the daemon satisfied the point (`computed` / `cache`).
        source: String,
        /// Wall-clock of the satisfying action, in milliseconds.
        wall_ms: u64,
        /// The `SimResult` JSON document, unparsed.
        result_json: String,
    },
    /// Request complete; the stream ends after this line.
    Done {
        /// Request id (echoed).
        id: String,
        /// Unique digests delivered.
        unique: usize,
        /// Points before in-request dedup.
        total: usize,
        /// Points this request scheduled on the worker pool.
        scheduled: usize,
        /// Points served straight from the cache.
        cache_hits: usize,
        /// Points de-duplicated onto another request's in-flight work.
        coalesced: usize,
        /// Wall-clock for the whole request, in milliseconds.
        wall_ms: u64,
    },
    /// Daemon-lifetime counters (answer to a `status` request).
    Status {
        /// Request id (echoed).
        id: String,
        /// Points simulated since the daemon started.
        computed: usize,
        /// Points served from cache since the daemon started.
        cache_hits: usize,
        /// Subscriptions coalesced onto in-flight work.
        coalesced: usize,
        /// Digests currently being computed or queued.
        inflight: usize,
        /// Requests accepted since the daemon started.
        clients: usize,
    },
    /// The request failed; the stream ends after this line.
    Error {
        /// Request id (echoed, possibly empty if parsing failed early).
        id: String,
        /// What went wrong.
        message: String,
    },
}

impl ServeEvent {
    /// Parses one response line. The `result` member of a `result` line
    /// is returned as raw JSON text (sliced out of `line`), so clients
    /// that only count points never pay to parse simulation results.
    pub fn parse(line: &str) -> Result<ServeEvent, String> {
        let v = JsonValue::parse(line).map_err(|e| format!("serve response: {e}"))?;
        let schema = v.get("schema").and_then(JsonValue::as_str).unwrap_or("");
        if schema != SERVE_SCHEMA {
            return Err(format!(
                "serve response: schema '{schema}' is not {SERVE_SCHEMA}"
            ));
        }
        let id = v
            .get("id")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string();
        let num =
            |key: &str| -> usize { v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0) as usize };
        match v.get("type").and_then(JsonValue::as_str) {
            Some("accepted") => Ok(ServeEvent::Accepted {
                id,
                total: num("total"),
                unique: num("unique"),
            }),
            Some("result") => {
                let result_json = line
                    .find("\"result\":")
                    .map(|i| line[i + "\"result\":".len()..].trim_end())
                    .and_then(|s| s.strip_suffix('}'))
                    .unwrap_or("null")
                    .to_string();
                Ok(ServeEvent::Result {
                    id,
                    digest: v
                        .get("digest")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    label: v
                        .get("label")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    source: v
                        .get("source")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    wall_ms: num("wall_ms") as u64,
                    result_json,
                })
            }
            Some("done") => Ok(ServeEvent::Done {
                id,
                unique: num("unique"),
                total: num("total"),
                scheduled: num("scheduled"),
                cache_hits: num("cache_hits"),
                coalesced: num("coalesced"),
                wall_ms: num("wall_ms") as u64,
            }),
            Some("status") => Ok(ServeEvent::Status {
                id,
                computed: num("computed"),
                cache_hits: num("cache_hits"),
                coalesced: num("coalesced"),
                inflight: num("inflight"),
                clients: num("clients"),
            }),
            Some("error") => Ok(ServeEvent::Error {
                id,
                message: v
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            other => Err(format!("serve response: unknown type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    #[test]
    fn every_line_builder_emits_valid_json() {
        for line in [
            serve_sweep_request_line("a", r#"{"name":"t","grids":[{}]}"#, Some("par")),
            serve_preset_request_line("b", "smoke", None),
            serve_status_request_line("c"),
            serve_accepted_line("a", 4, 3),
            serve_result_line("a", "d1", "mesh \"x\"", "computed", 12, "{\"x\":1}"),
            serve_done_line("a", 3, 4, 2, 0, 1, 40),
            serve_status_line("c", 7, 2, 1, 0, 3),
            serve_error_line("", "bad\nrequest"),
        ] {
            validate_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn response_lines_round_trip_through_the_event_parser() {
        let r = ServeEvent::parse(&serve_result_line(
            "c1",
            "abcd",
            "mesh r=0.05",
            "cache",
            3,
            "{\"avg_latency\":12.5}",
        ))
        .unwrap();
        assert_eq!(
            r,
            ServeEvent::Result {
                id: "c1".into(),
                digest: "abcd".into(),
                label: "mesh r=0.05".into(),
                source: "cache".into(),
                wall_ms: 3,
                result_json: "{\"avg_latency\":12.5}".into(),
            }
        );
        let d = ServeEvent::parse(&serve_done_line("c1", 3, 4, 2, 0, 1, 40)).unwrap();
        assert_eq!(
            d,
            ServeEvent::Done {
                id: "c1".into(),
                unique: 3,
                total: 4,
                scheduled: 2,
                cache_hits: 0,
                coalesced: 1,
                wall_ms: 40,
            }
        );
        assert!(matches!(
            ServeEvent::parse(&serve_accepted_line("x", 2, 2)).unwrap(),
            ServeEvent::Accepted {
                total: 2,
                unique: 2,
                ..
            }
        ));
        assert!(matches!(
            ServeEvent::parse(&serve_status_line("s", 6, 0, 0, 0, 4)).unwrap(),
            ServeEvent::Status {
                computed: 6,
                clients: 4,
                ..
            }
        ));
    }

    #[test]
    fn wrong_schema_and_unknown_types_are_rejected() {
        assert!(ServeEvent::parse("{\"schema\":\"noc-telemetry/v1\",\"type\":\"done\"}").is_err());
        assert!(
            ServeEvent::parse("{\"schema\":\"noc-serve/v1\",\"type\":\"frobnicate\"}").is_err()
        );
        assert!(ServeEvent::parse("not json").is_err());
    }

    #[test]
    fn result_json_is_sliced_out_verbatim() {
        // The embedded result may itself contain a "result" key deeper
        // inside; the slice starts at the envelope's member, which is
        // always the last member of the line by construction.
        let line = serve_result_line("i", "d", "l", "computed", 1, "{\"nested\":{\"result\":0}}");
        match ServeEvent::parse(&line).unwrap() {
            ServeEvent::Result { result_json, .. } => {
                assert_eq!(result_json, "{\"nested\":{\"result\":0}}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
