//! Self-profiling: wall-time and event-rate attribution to the router
//! pipeline phases.
//!
//! Mirrors the [`crate::TraceSink`] design: instrumentation sites are
//! generic over a [`PhaseProfiler`] and guard every measurement with
//! `P::ACTIVE`, so the default [`NopProfiler`] compiles all timing away —
//! the hot path pays nothing when profiling is off. The recording
//! [`Profiler`] accumulates nanoseconds and event counts per [`Phase`],
//! and the run driver stamps the total wall time and cycle count so the
//! report can express each phase as a share of the run.

use std::fmt::Write as _;

/// Router-pipeline phase a measurement is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Lookahead route computation for departing head flits.
    Route = 0,
    /// VC allocation (request collection + allocator + grant bookkeeping).
    VcAlloc = 1,
    /// Switch allocation (speculative + non-speculative).
    SwAlloc = 2,
    /// Switch traversal and link injection (excluding route computation).
    Traversal = 3,
    /// Link/credit event delivery between routers and terminals.
    Credit = 4,
}

/// All phases, in index order.
pub const PHASES: [Phase; 5] = [
    Phase::Route,
    Phase::VcAlloc,
    Phase::SwAlloc,
    Phase::Traversal,
    Phase::Credit,
];

impl Phase {
    /// Stable lower-snake name used by exports and the bench schema.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Route => "route",
            Phase::VcAlloc => "vc_alloc",
            Phase::SwAlloc => "sw_alloc",
            Phase::Traversal => "traversal",
            Phase::Credit => "credit",
        }
    }
}

/// Receiver of per-phase measurements.
///
/// Instrumentation sites skip clock reads entirely when `ACTIVE` is
/// `false`, so the no-op implementation has zero cost.
pub trait PhaseProfiler {
    /// Whether sites should measure at all.
    const ACTIVE: bool;

    /// Records `nanos` of wall time and `events` units of work for one
    /// phase.
    fn record(&mut self, phase: Phase, nanos: u64, events: u64);
}

/// The zero-cost disabled profiler.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopProfiler;

impl PhaseProfiler for NopProfiler {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _: Phase, _: u64, _: u64) {}
}

/// Accumulating profiler: per-phase wall time and event counts, plus the
/// run totals stamped by the driver.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    /// Nanoseconds attributed to each phase, indexed by `Phase as usize`.
    pub phase_nanos: [u64; 5],
    /// Work units per phase (flits traversed, requests arbitrated, events
    /// delivered, ...).
    pub phase_events: [u64; 5],
    /// Total run wall time in nanoseconds (set by the driver).
    pub wall_nanos: u64,
    /// Simulated cycles in the run (set by the driver).
    pub cycles: u64,
}

impl PhaseProfiler for Profiler {
    const ACTIVE: bool = true;

    #[inline]
    fn record(&mut self, phase: Phase, nanos: u64, events: u64) {
        self.phase_nanos[phase as usize] += nanos;
        self.phase_events[phase as usize] += events;
    }
}

impl Profiler {
    /// Nanoseconds attributed to one phase.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase as usize]
    }

    /// Work units recorded for one phase.
    pub fn events(&self, phase: Phase) -> u64 {
        self.phase_events[phase as usize]
    }

    /// Fraction of the run's wall time attributed to each phase, indexed
    /// by `Phase as usize` (all zero before the driver stamps
    /// `wall_nanos`).
    pub fn shares(&self) -> [f64; 5] {
        if self.wall_nanos == 0 {
            return [0.0; 5];
        }
        self.phase_nanos.map(|n| n as f64 / self.wall_nanos as f64)
    }

    /// Wall-time fraction not attributed to any phase (terminal traffic
    /// generation, stall accounting, event scheduling, ...).
    pub fn other_share(&self) -> f64 {
        (1.0 - self.shares().iter().sum::<f64>()).max(0.0)
    }

    /// Simulated cycles per wall-clock second (NaN before the driver
    /// stamps the totals).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return f64::NAN;
        }
        self.cycles as f64 / (self.wall_nanos as f64 * 1e-9)
    }

    /// Accumulates another profiler's phase counters and totals.
    pub fn merge(&mut self, other: &Profiler) {
        for i in 0..5 {
            self.phase_nanos[i] += other.phase_nanos[i];
            self.phase_events[i] += other.phase_events[i];
        }
        self.wall_nanos += other.wall_nanos;
        self.cycles += other.cycles;
    }

    /// One JSON object: totals, cycles/sec, and per-phase
    /// nanos/share/events.
    pub fn to_json(&self) -> String {
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let shares = self.shares();
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"cycles\":{},\"wall_nanos\":{},\"cycles_per_sec\":{},\"other_share\":{}",
            self.cycles,
            self.wall_nanos,
            num(self.cycles_per_sec()),
            num(self.other_share())
        );
        out.push_str(",\"phases\":{");
        for (i, p) in PHASES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"nanos\":{},\"share\":{},\"events\":{}}}",
                p.name(),
                self.phase_nanos[i],
                num(shares[i]),
                self.phase_events[i]
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compile-time: the no-op profiler must stay inactive so the default
    // simulation path folds all timing away.
    const _: () = assert!(!NopProfiler::ACTIVE);
    const _: () = assert!(Profiler::ACTIVE);

    #[test]
    fn shares_sum_with_other_to_one() {
        let mut p = Profiler::default();
        p.record(Phase::VcAlloc, 300, 10);
        p.record(Phase::SwAlloc, 500, 20);
        p.wall_nanos = 1000;
        p.cycles = 2000;
        let shares = p.shares();
        assert!((shares[Phase::VcAlloc as usize] - 0.3).abs() < 1e-12);
        assert!((shares[Phase::SwAlloc as usize] - 0.5).abs() < 1e-12);
        assert!((shares.iter().sum::<f64>() + p.other_share() - 1.0).abs() < 1e-12);
        // 2000 cycles in 1 µs of wall time = 2e9 cycles/sec.
        assert!((p.cycles_per_sec() / 2e9 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Profiler::default();
        a.record(Phase::Route, 10, 1);
        a.wall_nanos = 100;
        a.cycles = 50;
        let mut b = Profiler::default();
        b.record(Phase::Route, 30, 3);
        b.wall_nanos = 300;
        b.cycles = 150;
        a.merge(&b);
        assert_eq!(a.nanos(Phase::Route), 40);
        assert_eq!(a.events(Phase::Route), 4);
        assert_eq!(a.wall_nanos, 400);
        assert_eq!(a.cycles, 200);
    }

    #[test]
    fn unstamped_profiler_reports_nan_rate_and_zero_shares() {
        let p = Profiler::default();
        assert!(p.cycles_per_sec().is_nan());
        assert_eq!(p.shares(), [0.0; 5]);
    }

    #[test]
    fn phase_names_are_unique() {
        let names: std::collections::HashSet<_> = PHASES.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), PHASES.len());
    }
}
