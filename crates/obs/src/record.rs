//! `noc-telemetry/v1` — the flight-recorder dump format and run summary.
//!
//! A telemetry dump is JSON Lines: one header object, then one object per
//! closed window. The header carries the identity of the run (the
//! `SimConfig::digest` content hash plus a human label) and the sampling
//! parameters needed to interpret the series; each window line carries the
//! network-level flit motion and a compact per-router counter row. Every
//! value is either an integer counter or a content-hash string, so dumps
//! from cycle-identical engines are byte-identical.
//!
//! [`TelemetrySummary`] is the derived per-run digest of the same series —
//! the `telemetry` block embedded in a `SimResult` JSON report. It is
//! computed by the same code whether the source is a live
//! [`FlightRecorder`](crate::FlightRecorder) or a parsed dump, so
//! `noc replay <dump>` reproduces the in-process summary byte for byte.

use crate::json::JsonValue;
use crate::timeseries::{FlightRecorder, RouterCounters, WindowSnapshot};
use std::fmt::Write as _;

/// Schema tag written into every dump header and summary block.
pub const TELEMETRY_SCHEMA: &str = "noc-telemetry/v1";

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Identity and sampling parameters of a telemetry dump (the first JSONL
/// line).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryHeader {
    /// Content digest of the recorded configuration + run window
    /// (`SimConfig::digest`), keying the dump to its cached result.
    pub digest: String,
    /// Human-readable design-point label (`mesh 2x1x2 @ 0.3`, ...).
    pub label: String,
    /// Window length in cycles.
    pub window: u64,
    /// Matching-efficiency sampling period: one sampled cycle every
    /// `match_every` windows; 0 means matching sampling was off.
    pub match_every: u64,
    /// Router count (length of each window line's `routers` array).
    pub routers: usize,
    /// Warmup cycles of the recorded run.
    pub warmup: u64,
    /// Measurement cycles of the recorded run.
    pub measure: u64,
}

impl TelemetryHeader {
    /// Serializes the header as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"{}\",\"digest\":\"{}\",\"label\":\"{}\",\"window\":{},\
             \"match_every\":{},\"routers\":{},\"warmup\":{},\"measure\":{}}}",
            TELEMETRY_SCHEMA,
            esc(&self.digest),
            esc(&self.label),
            self.window,
            self.match_every,
            self.routers,
            self.warmup,
            self.measure
        )
    }

    fn from_value(v: &JsonValue) -> Result<TelemetryHeader, String> {
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "telemetry header: missing schema".to_string())?;
        if schema != TELEMETRY_SCHEMA {
            return Err(format!(
                "telemetry header: schema '{schema}' != '{TELEMETRY_SCHEMA}'"
            ));
        }
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("telemetry header: missing {key:?}"))
        };
        Ok(TelemetryHeader {
            digest: v
                .get("digest")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "telemetry header: missing digest".to_string())?
                .to_string(),
            label: v
                .get("label")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            window: u("window")?,
            match_every: u("match_every")?,
            routers: u("routers")? as usize,
            warmup: u("warmup")?,
            measure: u("measure")?,
        })
    }
}

/// Serializes one window snapshot as a JSONL line (no trailing newline).
/// Router rows are fixed-order 10-tuples:
/// `[out_flits, occupancy, busy_vcs, active, credit, vca, sa, empty,
/// match_granted, match_max]`.
pub fn window_jsonl(w: &WindowSnapshot) -> String {
    let mut out = format!(
        "{{\"window\":{},\"cycle\":{},\"injected\":{},\"ejected\":{},\"in_flight\":{},\
         \"routers\":[",
        w.window, w.cycle, w.injected, w.ejected, w.in_flight
    );
    for (i, r) in w.routers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "[{},{},{},{},{},{},{},{},{},{}]",
            r.out_flits,
            r.occupancy,
            r.busy_vcs,
            r.active,
            r.credit_stall,
            r.vca_stall,
            r.sa_stall,
            r.empty,
            r.match_granted,
            r.match_max
        );
    }
    out.push_str("]}");
    out
}

fn window_from_value(v: &JsonValue) -> Result<WindowSnapshot, String> {
    let u = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .map(|n| n as u64)
            .ok_or_else(|| format!("telemetry window: missing {key:?}"))
    };
    let rows = v
        .get("routers")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "telemetry window: missing routers".to_string())?;
    let mut routers = Vec::with_capacity(rows.len());
    for row in rows {
        let cells = row
            .as_array()
            .filter(|c| c.len() == 10)
            .ok_or_else(|| "telemetry window: malformed router row".to_string())?;
        let cell = |i: usize| -> Result<u64, String> {
            cells[i]
                .as_f64()
                .map(|n| n as u64)
                .ok_or_else(|| "telemetry window: non-numeric router cell".to_string())
        };
        routers.push(RouterCounters {
            out_flits: cell(0)?,
            occupancy: cell(1)? as u32,
            busy_vcs: cell(2)? as u32,
            active: cell(3)?,
            credit_stall: cell(4)?,
            vca_stall: cell(5)?,
            sa_stall: cell(6)?,
            empty: cell(7)?,
            match_granted: cell(8)?,
            match_max: cell(9)?,
        });
    }
    Ok(WindowSnapshot {
        window: u("window")?,
        cycle: u("cycle")?,
        injected: u("injected")?,
        ejected: u("ejected")?,
        in_flight: u("in_flight")?,
        routers,
    })
}

/// A parsed telemetry dump: header plus every window line, in order.
#[derive(Clone, Debug)]
pub struct TelemetryDump {
    /// The dump header (first line).
    pub header: TelemetryHeader,
    /// All window snapshots, oldest first.
    pub windows: Vec<WindowSnapshot>,
}

impl TelemetryDump {
    /// Parses a full JSONL dump. Blank lines are ignored; any malformed
    /// line is an error (dumps are machine-written).
    pub fn parse(text: &str) -> Result<TelemetryDump, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let first = lines
            .next()
            .ok_or_else(|| "empty telemetry dump".to_string())?;
        let header = TelemetryHeader::from_value(&JsonValue::parse(first)?)?;
        let mut windows = Vec::new();
        for (i, line) in lines.enumerate() {
            let v = JsonValue::parse(line).map_err(|e| format!("dump line {}: {e}", i + 2))?;
            windows.push(window_from_value(&v).map_err(|e| format!("dump line {}: {e}", i + 2))?);
        }
        Ok(TelemetryDump { header, windows })
    }

    /// The run summary derived from the dump's window series — identical
    /// to the `telemetry` block the recording run embeds in its result.
    pub fn summary(&self) -> TelemetrySummary {
        TelemetrySummary::from_windows(self.header.window, self.windows.iter())
    }
}

/// Per-run summary series: the `telemetry` block of a `SimResult` report.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySummary {
    /// Window length in cycles.
    pub window: u64,
    /// Windows recorded.
    pub windows: u64,
    /// Longest run of consecutive motionless windows with flits in flight.
    pub max_stalled_windows: u64,
    /// Matching efficiency per window (NaN where no matching sample fell).
    pub efficiency: Vec<f64>,
    /// Switch traversals per window, network-wide.
    pub flits: Vec<u64>,
    /// Flits in flight at each window boundary.
    pub in_flight: Vec<u64>,
}

impl TelemetrySummary {
    /// Builds the summary from a window series (a parsed dump).
    pub fn from_windows<'a>(
        window: u64,
        windows: impl Iterator<Item = &'a WindowSnapshot>,
    ) -> TelemetrySummary {
        let mut s = TelemetrySummary {
            window,
            windows: 0,
            max_stalled_windows: 0,
            efficiency: Vec::new(),
            flits: Vec::new(),
            in_flight: Vec::new(),
        };
        let mut streak = 0u64;
        for w in windows {
            s.windows += 1;
            s.efficiency.push(w.efficiency());
            s.flits.push(w.flits());
            s.in_flight.push(w.in_flight);
            if w.motionless() {
                streak += 1;
                s.max_stalled_windows = s.max_stalled_windows.max(streak);
            } else {
                streak = 0;
            }
        }
        s
    }

    /// Mean matching efficiency over the windows that carried a sample;
    /// NaN if none did.
    pub fn mean_efficiency(&self) -> f64 {
        let finite: Vec<f64> = self
            .efficiency
            .iter()
            .copied()
            .filter(|e| e.is_finite())
            .collect();
        if finite.is_empty() {
            f64::NAN
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        }
    }

    /// Serializes the summary as one JSON object. NaN maps to null, floats
    /// use shortest-roundtrip formatting, so the block round-trips
    /// bit-exactly through [`TelemetrySummary::from_value`].
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{}\",\"window\":{},\"windows\":{},\"max_stalled_windows\":{},\
             \"efficiency\":[",
            TELEMETRY_SCHEMA, self.window, self.windows, self.max_stalled_windows
        );
        for (i, e) in self.efficiency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&num(*e));
        }
        out.push_str("],\"flits\":[");
        for (i, f) in self.flits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{f}");
        }
        out.push_str("],\"in_flight\":[");
        for (i, f) in self.in_flight.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{f}");
        }
        out.push_str("]}");
        out
    }

    /// Reconstructs a summary from its parsed JSON object.
    pub fn from_value(v: &JsonValue) -> Result<TelemetrySummary, String> {
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("telemetry summary: missing {key:?}"))
        };
        let u64s = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("telemetry summary: missing {key:?}"))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .map(|n| n as u64)
                        .ok_or_else(|| format!("telemetry summary: non-numeric {key:?} entry"))
                })
                .collect()
        };
        let efficiency = v
            .get("efficiency")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "telemetry summary: missing efficiency".to_string())?
            .iter()
            .map(|x| match x {
                JsonValue::Num(n) => *n,
                _ => f64::NAN,
            })
            .collect();
        Ok(TelemetrySummary {
            window: u("window")?,
            windows: u("windows")?,
            max_stalled_windows: u("max_stalled_windows")?,
            efficiency,
            flits: u64s("flits")?,
            in_flight: u64s("in_flight")?,
        })
    }
}

impl FlightRecorder {
    /// The run summary accumulated live — byte-identical to
    /// [`TelemetryDump::summary`] over a dump of every window this
    /// recorder closed.
    pub fn summary(&self) -> TelemetrySummary {
        let (efficiency, flits, in_flight) = self.series();
        TelemetrySummary {
            window: self.window(),
            windows: self.windows(),
            max_stalled_windows: self.max_stalled_windows(),
            efficiency: efficiency.to_vec(),
            flits: flits.to_vec(),
            in_flight: in_flight.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    fn sample_recorder() -> FlightRecorder {
        let mut rec = FlightRecorder::new(10, 8);
        for k in 1..=4u64 {
            let counters = (0..2).map(|r| RouterCounters {
                out_flits: 3 * k + r,
                occupancy: (k % 2) as u32,
                busy_vcs: 1,
                active: 3 * k + r,
                credit_stall: k,
                vca_stall: 2 * k,
                sa_stall: k / 2,
                empty: 10 * k,
                // Matching samples land on even windows only; the values
                // are cumulative (monotone), like every real counter.
                match_granted: 4 * (k / 2),
                match_max: 6 * (k / 2),
            });
            rec.record(10 * k - 1, 6 * k, 5 * k, counters);
        }
        rec
    }

    fn dump_of(rec: &FlightRecorder) -> String {
        let header = TelemetryHeader {
            digest: "d".repeat(32),
            label: "mesh 2x1x2".to_string(),
            window: rec.window(),
            match_every: 2,
            routers: 2,
            warmup: 0,
            measure: 40,
        };
        let mut text = header.to_json();
        for w in rec.ring() {
            text.push('\n');
            text.push_str(&window_jsonl(w));
        }
        text
    }

    #[test]
    fn dump_lines_are_valid_json_and_round_trip() {
        let rec = sample_recorder();
        let text = dump_of(&rec);
        for line in text.lines() {
            validate_json(line).expect(line);
        }
        let dump = TelemetryDump::parse(&text).unwrap();
        assert_eq!(dump.header.window, 10);
        assert_eq!(dump.header.match_every, 2);
        assert_eq!(dump.windows.len(), 4);
        let reparsed: Vec<String> = dump.windows.iter().map(window_jsonl).collect();
        let original: Vec<String> = rec.ring().map(window_jsonl).collect();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn replayed_summary_matches_live_summary() {
        let rec = sample_recorder();
        let dump = TelemetryDump::parse(&dump_of(&rec)).unwrap();
        assert_eq!(dump.summary().to_json(), rec.summary().to_json());
    }

    #[test]
    fn summary_json_round_trips_bit_exactly() {
        let rec = sample_recorder();
        let s = rec.summary();
        let json = s.to_json();
        validate_json(&json).unwrap();
        let back = TelemetrySummary::from_value(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back.to_json(), json);
        // NaN efficiency entries (windows without samples) survive as null.
        assert!(back.efficiency[0].is_nan());
        assert_eq!(back.efficiency[1], s.efficiency[1]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TelemetryDump::parse("").is_err());
        assert!(TelemetryDump::parse("{\"schema\":\"bogus/v9\"}").is_err());
        let rec = sample_recorder();
        let mut text = dump_of(&rec);
        text.push_str("\n{\"window\":5}");
        assert!(TelemetryDump::parse(&text).is_err());
    }

    #[test]
    fn mean_efficiency_ignores_unsampled_windows() {
        let rec = sample_recorder();
        let s = rec.summary();
        // Samples land on windows 2 and 4, both with efficiency 2/3.
        assert!((s.mean_efficiency() - 2.0 / 3.0).abs() < 1e-12);
    }
}
