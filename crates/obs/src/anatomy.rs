//! `noc-anatomy/v1` — per-packet latency anatomy.
//!
//! The simulator's stall classifier already decides, every cycle, why each
//! input VC is not moving (credit stall, switch-allocation stall, VC-
//! allocation stall). This module turns those per-cycle verdicts into a
//! **packet ledger**: per-hop stage accumulators stamped while a packet's
//! head flit waits at a router, folded on ejection into
//!
//! - full-population per-stage sums and HDR histograms (the blame report
//!   decomposing mean and p99 end-to-end latency into stacked stages),
//! - a capped list of per-packet stage rows (with a dropped counter), and
//! - the top-K slowest packets with their complete hop-by-hop waterfalls.
//!
//! The invariant is exact reconciliation: each packet's seven stage
//! components sum to `eject - birth`, cycle for cycle. The stages:
//!
//! | stage           | meaning                                             |
//! |-----------------|-----------------------------------------------------|
//! | `src_queue`     | source-queue wait (birth → head injection)          |
//! | `vca`           | VC-allocation wait, incl. head-of-line residual     |
//! | `sa`            | switch-allocation wait (losing or bidding)          |
//! | `credit`        | credit wait (output VC owned, no downstream buffer) |
//! | `active`        | switch-traversal cycles (grant + traversal)         |
//! | `wire`          | link/pipeline flight of the head flit between hops  |
//! | `serialization` | tail trailing the head at the destination           |
//!
//! Everything here is deterministic given the fold order (hop records in
//! router-id order, ejections in event order — both engine-invariant), so
//! `noc-anatomy/v1` dumps are byte-identical across seq/par/active.

use crate::hist::HdrHistogram;
use crate::json::JsonValue;
use crate::record::{esc, num};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Schema tag written into every anatomy dump header and summary block.
pub const ANATOMY_SCHEMA: &str = "noc-anatomy/v1";

/// Number of latency stage components (the end-to-end total is stage
/// index [`STAGE_COUNT`] in histogram/percentile arrays).
pub const STAGE_COUNT: usize = 7;

/// Stage names, in component order (summaries and dump rows share it).
pub const STAGE_NAMES: [&str; STAGE_COUNT] = [
    "src_queue",
    "vca",
    "sa",
    "credit",
    "active",
    "wire",
    "serialization",
];

/// One hop's attribution: what the packet's head flit did between arriving
/// at a router's input buffer and traversing its switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopRecord {
    /// Packet the head flit belongs to.
    pub packet_id: u64,
    /// Router the hop crossed.
    pub router: u32,
    /// Input port the head arrived on.
    pub in_port: u16,
    /// Input VC the head arrived on.
    pub in_vc: u16,
    /// Cycle the head entered the input buffer.
    pub arrive: u64,
    /// Cycle the head traversed the switch.
    pub depart: u64,
    /// Cycles charged to VC allocation (incl. head-of-line residual).
    pub vca: u64,
    /// Cycles charged to switch allocation.
    pub sa: u64,
    /// Cycles charged to credit starvation.
    pub credit: u64,
    /// Cycles the head was moving (grant + traversal).
    pub active: u64,
}

impl HopRecord {
    /// Cycles the head spent in this router, arrival and departure
    /// inclusive.
    pub fn span(&self) -> u64 {
        self.depart - self.arrive + 1
    }

    /// Per-hop reconciliation: the four stage counters partition the span.
    pub fn reconciles(&self) -> bool {
        self.vca + self.sa + self.credit + self.active == self.span()
    }
}

/// A folded packet: its identity plus the seven stage components.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketAnatomy {
    /// Packet id (`(source terminal) << 48 | sequence`).
    pub packet_id: u64,
    /// Message class (0 = request, 1 = reply).
    pub class: u8,
    /// Cycle the packet was born at its source terminal.
    pub birth: u64,
    /// Cycle the tail flit reached the destination terminal.
    pub eject: u64,
    /// Router hops crossed.
    pub hops: u32,
    /// Stage components in [`STAGE_NAMES`] order.
    pub stages: [u64; STAGE_COUNT],
}

impl PacketAnatomy {
    /// End-to-end latency, exactly as `NetStats` measures it.
    pub fn total(&self) -> u64 {
        self.eject - self.birth
    }

    /// The tentpole invariant: stage components sum to `eject - birth`.
    pub fn reconciles(&self) -> bool {
        self.stages.iter().sum::<u64>() == self.total()
    }
}

/// The top-K waterfall entry: a slow packet with its per-hop records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waterfall {
    /// The folded packet row.
    pub packet: PacketAnatomy,
    /// Its hops, in traversal order.
    pub hops: Vec<HopRecord>,
}

/// Full-population accumulators — every in-window packet lands here
/// regardless of the retained-row cap, so the blame report is exact.
#[derive(Clone, Debug, PartialEq)]
pub struct AnatomyTotals {
    /// In-window packets folded.
    pub packets: u64,
    /// Packets per message class (requests, replies).
    pub class_packets: [u64; 2],
    /// Per-packet rows beyond the retention cap (counted, not stored).
    pub dropped: u64,
    /// Per-stage cycle sums in [`STAGE_NAMES`] order.
    pub sums: [u64; STAGE_COUNT],
    /// Per-stage histograms plus the end-to-end total (last entry).
    pub hists: Vec<HdrHistogram>,
}

impl Default for AnatomyTotals {
    fn default() -> Self {
        AnatomyTotals {
            packets: 0,
            class_packets: [0; 2],
            dropped: 0,
            sums: [0; STAGE_COUNT],
            hists: vec![HdrHistogram::new(); STAGE_COUNT + 1],
        }
    }
}

impl AnatomyTotals {
    fn record(&mut self, p: &PacketAnatomy) {
        self.packets += 1;
        self.class_packets[(p.class as usize).min(1)] += 1;
        for (i, &v) in p.stages.iter().enumerate() {
            self.sums[i] += v;
            self.hists[i].record(v);
        }
        self.hists[STAGE_COUNT].record(p.total());
    }

    /// Sum of every stage sum — exactly the sum of end-to-end latencies.
    pub fn total_sum(&self) -> u64 {
        self.sums.iter().sum()
    }
}

#[derive(Clone, Debug, Default)]
struct InFlight {
    birth: u64,
    head_injected: u64,
    head_eject: u64,
    hops: Vec<HopRecord>,
}

/// The network-level ledger: ingests hop records and ejection events (both
/// on the main thread, in deterministic order) and folds each packet on
/// tail ejection.
#[derive(Clone, Debug)]
pub struct AnatomyCollector {
    capacity: usize,
    top_k: usize,
    in_flight: HashMap<u64, InFlight>,
    /// Exact full-population accumulators.
    pub totals: AnatomyTotals,
    /// Retained per-packet rows, fold order, capped at `capacity`.
    pub records: Vec<PacketAnatomy>,
    /// Top-K slowest packets (unordered; [`AnatomyCollector::slowest`]
    /// sorts).
    pub slow: Vec<Waterfall>,
}

impl AnatomyCollector {
    /// A collector retaining at most `capacity` per-packet rows and the
    /// `top_k` slowest waterfalls.
    pub fn new(capacity: usize, top_k: usize) -> AnatomyCollector {
        AnatomyCollector {
            capacity,
            top_k,
            in_flight: HashMap::new(),
            totals: AnatomyTotals::default(),
            records: Vec::new(),
            slow: Vec::new(),
        }
    }

    /// Ingests one hop record. Callers must preserve a deterministic order
    /// (the simulator drains router outputs in router-id order every
    /// cycle) — ordering is part of the byte-identity contract.
    pub fn ingest_hop(&mut self, hop: HopRecord) {
        self.in_flight
            .entry(hop.packet_id)
            .or_default()
            .hops
            .push(hop);
    }

    /// The packet's head flit reached its destination terminal.
    pub fn eject_head(&mut self, packet_id: u64, birth: u64, injected: u64, now: u64) {
        let fl = self.in_flight.entry(packet_id).or_default();
        fl.birth = birth;
        fl.head_injected = injected;
        fl.head_eject = now;
    }

    /// The packet's tail flit reached the terminal: fold the ledger.
    /// `in_window` mirrors `NetStats`' measurement-window rule, so the
    /// anatomy population is exactly the latency-sample population.
    pub fn eject_tail(&mut self, packet_id: u64, class: u8, now: u64, in_window: bool) {
        let Some(fl) = self.in_flight.remove(&packet_id) else {
            debug_assert!(false, "tail ejected for unseen packet {packet_id:#x}");
            return;
        };
        if !in_window {
            return;
        }
        let (mut vca, mut sa, mut credit, mut active, mut span) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for h in &fl.hops {
            debug_assert!(h.reconciles(), "hop counters must partition the span");
            vca += h.vca;
            sa += h.sa;
            credit += h.credit;
            active += h.active;
            span += h.span();
        }
        let head_flight = fl.head_eject - fl.head_injected;
        debug_assert!(
            span <= head_flight,
            "hop spans exceed head flight time ({span} > {head_flight})"
        );
        let p = PacketAnatomy {
            packet_id,
            class,
            birth: fl.birth,
            eject: now,
            hops: fl.hops.len() as u32,
            stages: [
                fl.head_injected - fl.birth,
                vca,
                sa,
                credit,
                active,
                head_flight - span,
                now - fl.head_eject,
            ],
        };
        debug_assert!(p.reconciles(), "stage sums must equal eject - birth");
        self.totals.record(&p);
        if self.records.len() < self.capacity {
            self.records.push(p);
        } else {
            self.totals.dropped += 1;
        }
        if self.top_k == 0 {
            return;
        }
        if self.slow.len() < self.top_k {
            self.slow.push(Waterfall {
                packet: p,
                hops: fl.hops,
            });
            return;
        }
        let mut min_i = 0;
        for (i, w) in self.slow.iter().enumerate() {
            if w.packet.total() < self.slow[min_i].packet.total() {
                min_i = i;
            }
        }
        // Strict greater-than: on ties the earlier-folded packet stays,
        // which keeps the selection deterministic.
        if p.total() > self.slow[min_i].packet.total() {
            self.slow[min_i] = Waterfall {
                packet: p,
                hops: fl.hops,
            };
        }
    }

    /// Packets whose tails have not ejected yet (left un-attributed).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The waterfalls, slowest first (ties broken by packet id).
    pub fn slowest(&self) -> Vec<&Waterfall> {
        sorted_slow(&self.slow)
    }

    /// The blame report derived from the full-population totals.
    pub fn summary(&self) -> AnatomySummary {
        AnatomySummary::from_totals(&self.totals)
    }

    /// Serializes the collector as a full `noc-anatomy/v1` dump.
    pub fn to_jsonl(&self, header: &AnatomyHeader) -> String {
        dump_jsonl(header, &self.totals, &self.records, &self.slowest())
    }
}

fn sorted_slow(slow: &[Waterfall]) -> Vec<&Waterfall> {
    let mut v: Vec<&Waterfall> = slow.iter().collect();
    v.sort_by(|a, b| {
        b.packet
            .total()
            .cmp(&a.packet.total())
            .then(a.packet.packet_id.cmp(&b.packet.packet_id))
    });
    v
}

/// Identity line of an anatomy dump (the first JSONL line).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnatomyHeader {
    /// `SimConfig::digest` of the run, keying the dump to its result.
    pub digest: String,
    /// Human-readable design-point label.
    pub label: String,
    /// Router count of the simulated topology.
    pub routers: usize,
    /// Warmup cycles of the run.
    pub warmup: u64,
    /// Measurement cycles of the run.
    pub measure: u64,
    /// Per-packet row retention cap the collector ran with.
    pub capacity: u64,
    /// Waterfall count the collector ran with.
    pub top_k: u64,
}

impl AnatomyHeader {
    /// Serializes the header as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"{}\",\"digest\":\"{}\",\"label\":\"{}\",\"routers\":{},\
             \"warmup\":{},\"measure\":{},\"capacity\":{},\"top_k\":{}}}",
            ANATOMY_SCHEMA,
            esc(&self.digest),
            esc(&self.label),
            self.routers,
            self.warmup,
            self.measure,
            self.capacity,
            self.top_k
        )
    }

    fn from_value(v: &JsonValue) -> Result<AnatomyHeader, String> {
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "anatomy header: missing schema".to_string())?;
        if schema != ANATOMY_SCHEMA {
            return Err(format!(
                "anatomy header: schema '{schema}' != '{ANATOMY_SCHEMA}'"
            ));
        }
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("anatomy header: missing {key:?}"))
        };
        Ok(AnatomyHeader {
            digest: v
                .get("digest")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "anatomy header: missing digest".to_string())?
                .to_string(),
            label: v
                .get("label")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            routers: u("routers")? as usize,
            warmup: u("warmup")?,
            measure: u("measure")?,
            capacity: u("capacity")?,
            top_k: u("top_k")?,
        })
    }
}

fn hist_json(h: &HdrHistogram) -> String {
    let mut out = String::from("{\"min\":");
    match h.min() {
        Some(m) => {
            let _ = write!(out, "{m}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"max\":");
    match h.max() {
        Some(m) => {
            let _ = write!(out, "{m}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"buckets\":[");
    for (i, (lower, _, count)) in h.iter_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{lower},{count}]");
    }
    out.push_str("]}");
    out
}

fn hist_from_value(v: &JsonValue) -> Result<HdrHistogram, String> {
    let rows = v
        .get("buckets")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "anatomy totals: histogram missing buckets".to_string())?;
    let mut parts = Vec::with_capacity(rows.len());
    for row in rows {
        let cells = row
            .as_array()
            .filter(|c| c.len() == 2)
            .ok_or_else(|| "anatomy totals: malformed histogram bucket".to_string())?;
        let cell = |i: usize| -> Result<u64, String> {
            cells[i]
                .as_f64()
                .map(|n| n as u64)
                .ok_or_else(|| "anatomy totals: non-numeric bucket cell".to_string())
        };
        parts.push((cell(0)?, cell(1)?));
    }
    let bound = |key: &str| v.get(key).and_then(JsonValue::as_f64).map(|n| n as u64);
    Ok(HdrHistogram::from_parts(
        &parts,
        bound("min").unwrap_or(0),
        bound("max").unwrap_or(0),
    ))
}

fn totals_jsonl(t: &AnatomyTotals) -> String {
    let mut out = format!(
        "{{\"packets\":{},\"requests\":{},\"replies\":{},\"dropped\":{},\"sums\":[",
        t.packets, t.class_packets[0], t.class_packets[1], t.dropped
    );
    for (i, s) in t.sums.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{s}");
    }
    out.push_str("],\"hists\":[");
    for (i, h) in t.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&hist_json(h));
    }
    out.push_str("]}");
    out
}

fn totals_from_value(v: &JsonValue) -> Result<AnatomyTotals, String> {
    let u = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .map(|n| n as u64)
            .ok_or_else(|| format!("anatomy totals: missing {key:?}"))
    };
    let sums_arr = v
        .get("sums")
        .and_then(JsonValue::as_array)
        .filter(|a| a.len() == STAGE_COUNT)
        .ok_or_else(|| "anatomy totals: malformed sums".to_string())?;
    let mut sums = [0u64; STAGE_COUNT];
    for (i, s) in sums_arr.iter().enumerate() {
        sums[i] = s
            .as_f64()
            .map(|n| n as u64)
            .ok_or_else(|| "anatomy totals: non-numeric sum".to_string())?;
    }
    let hist_rows = v
        .get("hists")
        .and_then(JsonValue::as_array)
        .filter(|a| a.len() == STAGE_COUNT + 1)
        .ok_or_else(|| "anatomy totals: malformed hists".to_string())?;
    let mut hists = Vec::with_capacity(STAGE_COUNT + 1);
    for h in hist_rows {
        hists.push(hist_from_value(h)?);
    }
    Ok(AnatomyTotals {
        packets: u("packets")?,
        class_packets: [u("requests")?, u("replies")?],
        dropped: u("dropped")?,
        sums,
        hists,
    })
}

fn packet_row(p: &PacketAnatomy) -> String {
    let mut out = format!(
        "[\"{:016x}\",{},{},{},{}",
        p.packet_id, p.class, p.birth, p.eject, p.hops
    );
    for s in &p.stages {
        let _ = write!(out, ",{s}");
    }
    out.push(']');
    out
}

fn packet_from_cells(cells: &[JsonValue]) -> Result<PacketAnatomy, String> {
    if cells.len() != 5 + STAGE_COUNT {
        return Err("anatomy dump: malformed packet row".to_string());
    }
    let packet_id = cells[0]
        .as_str()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| "anatomy dump: malformed packet id".to_string())?;
    let cell = |i: usize| -> Result<u64, String> {
        cells[i]
            .as_f64()
            .map(|n| n as u64)
            .ok_or_else(|| "anatomy dump: non-numeric packet cell".to_string())
    };
    let mut stages = [0u64; STAGE_COUNT];
    for (i, s) in stages.iter_mut().enumerate() {
        *s = cell(5 + i)?;
    }
    Ok(PacketAnatomy {
        packet_id,
        class: cell(1)? as u8,
        birth: cell(2)?,
        eject: cell(3)?,
        hops: cell(4)? as u32,
        stages,
    })
}

fn waterfall_jsonl(w: &Waterfall) -> String {
    let mut out = format!("{{\"slow\":{},\"hops\":[", packet_row(&w.packet));
    for (i, h) in w.hops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "[{},{},{},{},{},{},{},{},{}]",
            h.router, h.in_port, h.in_vc, h.arrive, h.depart, h.vca, h.sa, h.credit, h.active
        );
    }
    out.push_str("]}");
    out
}

fn waterfall_from_value(v: &JsonValue) -> Result<Waterfall, String> {
    let cells = v
        .get("slow")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "anatomy dump: malformed slow row".to_string())?;
    let packet = packet_from_cells(cells)?;
    let rows = v
        .get("hops")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "anatomy dump: slow row missing hops".to_string())?;
    let mut hops = Vec::with_capacity(rows.len());
    for row in rows {
        let cells = row
            .as_array()
            .filter(|c| c.len() == 9)
            .ok_or_else(|| "anatomy dump: malformed hop row".to_string())?;
        let cell = |i: usize| -> Result<u64, String> {
            cells[i]
                .as_f64()
                .map(|n| n as u64)
                .ok_or_else(|| "anatomy dump: non-numeric hop cell".to_string())
        };
        hops.push(HopRecord {
            packet_id: packet.packet_id,
            router: cell(0)? as u32,
            in_port: cell(1)? as u16,
            in_vc: cell(2)? as u16,
            arrive: cell(3)?,
            depart: cell(4)?,
            vca: cell(5)?,
            sa: cell(6)?,
            credit: cell(7)?,
            active: cell(8)?,
        });
    }
    Ok(Waterfall { packet, hops })
}

fn dump_jsonl(
    header: &AnatomyHeader,
    totals: &AnatomyTotals,
    records: &[PacketAnatomy],
    slow: &[&Waterfall],
) -> String {
    let mut out = header.to_json();
    out.push('\n');
    out.push_str(&totals_jsonl(totals));
    out.push('\n');
    for p in records {
        let _ = write!(out, "{{\"pkt\":{}}}", packet_row(p));
        out.push('\n');
    }
    for w in slow {
        out.push_str(&waterfall_jsonl(w));
        out.push('\n');
    }
    out
}

/// A parsed `noc-anatomy/v1` dump.
#[derive(Clone, Debug)]
pub struct AnatomyDump {
    /// The dump header (first line).
    pub header: AnatomyHeader,
    /// Full-population accumulators (second line).
    pub totals: AnatomyTotals,
    /// Retained per-packet rows, fold order.
    pub records: Vec<PacketAnatomy>,
    /// Slowest-packet waterfalls, slowest first.
    pub slow: Vec<Waterfall>,
}

impl AnatomyDump {
    /// Parses a full JSONL dump. Blank lines are ignored; any malformed
    /// line is an error (dumps are machine-written).
    pub fn parse(text: &str) -> Result<AnatomyDump, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let first = lines
            .next()
            .ok_or_else(|| "empty anatomy dump".to_string())?;
        let header = AnatomyHeader::from_value(&JsonValue::parse(first)?)?;
        let second = lines
            .next()
            .ok_or_else(|| "anatomy dump: missing totals line".to_string())?;
        let totals = totals_from_value(&JsonValue::parse(second)?)?;
        let mut records = Vec::new();
        let mut slow = Vec::new();
        for (i, line) in lines.enumerate() {
            let v = JsonValue::parse(line).map_err(|e| format!("dump line {}: {e}", i + 3))?;
            if let Some(cells) = v.get("pkt").and_then(JsonValue::as_array) {
                records.push(
                    packet_from_cells(cells).map_err(|e| format!("dump line {}: {e}", i + 3))?,
                );
            } else if v.get("slow").is_some() {
                slow.push(
                    waterfall_from_value(&v).map_err(|e| format!("dump line {}: {e}", i + 3))?,
                );
            } else {
                return Err(format!("dump line {}: unknown row kind", i + 3));
            }
        }
        Ok(AnatomyDump {
            header,
            totals,
            records,
            slow,
        })
    }

    /// The blame report derived from the dump — identical to the live
    /// [`AnatomyCollector::summary`] of the run that wrote it.
    pub fn summary(&self) -> AnatomySummary {
        AnatomySummary::from_totals(&self.totals)
    }

    /// Re-serializes the dump byte-identically to the original.
    pub fn to_jsonl(&self) -> String {
        dump_jsonl(
            &self.header,
            &self.totals,
            &self.records,
            &sorted_slow(&self.slow),
        )
    }
}

/// The blame report: mean/p50/p99/max per stage plus the end-to-end total
/// (last row of each array), derived from full-population accumulators.
#[derive(Clone, Debug, PartialEq)]
pub struct AnatomySummary {
    /// In-window packets folded.
    pub packets: u64,
    /// Request-class packets.
    pub requests: u64,
    /// Reply-class packets.
    pub replies: u64,
    /// Per-packet rows dropped beyond the retention cap.
    pub dropped: u64,
    /// Per-stage cycle sums in [`STAGE_NAMES`] order.
    pub sums: [u64; STAGE_COUNT],
    /// Mean cycles per stage; last entry is the end-to-end mean.
    pub mean: [f64; STAGE_COUNT + 1],
    /// Median cycles per stage; last entry is the end-to-end median.
    pub p50: [f64; STAGE_COUNT + 1],
    /// 99th percentile per stage; last entry is end-to-end p99.
    pub p99: [f64; STAGE_COUNT + 1],
    /// Maximum cycles per stage; last entry is the end-to-end maximum.
    pub max: [u64; STAGE_COUNT + 1],
}

impl AnatomySummary {
    /// Builds the report from accumulators (live collector or parsed
    /// dump — same code, so replay summaries are byte-identical).
    pub fn from_totals(t: &AnatomyTotals) -> AnatomySummary {
        let n = t.packets as f64;
        let mut mean = [f64::NAN; STAGE_COUNT + 1];
        let mut p50 = [f64::NAN; STAGE_COUNT + 1];
        let mut p99 = [f64::NAN; STAGE_COUNT + 1];
        let mut max = [0u64; STAGE_COUNT + 1];
        for i in 0..=STAGE_COUNT {
            let sum = if i < STAGE_COUNT {
                t.sums[i]
            } else {
                t.total_sum()
            };
            if t.packets > 0 {
                mean[i] = sum as f64 / n;
            }
            if let Some(h) = t.hists.get(i) {
                p50[i] = h.percentile(0.5);
                p99[i] = h.percentile(0.99);
                max[i] = h.max().unwrap_or(0);
            }
        }
        AnatomySummary {
            packets: t.packets,
            requests: t.class_packets[0],
            replies: t.class_packets[1],
            dropped: t.dropped,
            sums: t.sums,
            mean,
            p50,
            p99,
            max,
        }
    }

    /// Sum of every stage sum (total attributed cycles).
    pub fn total_sum(&self) -> u64 {
        self.sums.iter().sum()
    }

    /// Serializes the report as one JSON object (NaN maps to null).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{}\",\"packets\":{},\"requests\":{},\"replies\":{},\"dropped\":{},\
             \"stages\":{{",
            ANATOMY_SCHEMA, self.packets, self.requests, self.replies, self.dropped
        );
        for i in 0..=STAGE_COUNT {
            if i > 0 {
                out.push(',');
            }
            let name = if i < STAGE_COUNT {
                STAGE_NAMES[i]
            } else {
                "total"
            };
            let sum = if i < STAGE_COUNT {
                self.sums[i]
            } else {
                self.total_sum()
            };
            let _ = write!(
                out,
                "\"{name}\":{{\"sum\":{sum},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                num(self.mean[i]),
                num(self.p50[i]),
                num(self.p99[i]),
                self.max[i]
            );
        }
        out.push_str("}}");
        out
    }

    /// Renders the per-stage breakdown table `noc explain` prints.
    pub fn render(&self) -> String {
        let mut out = format!(
            "packets          {} in window ({} requests, {} replies; {} ledger rows dropped)\n",
            self.packets, self.requests, self.replies, self.dropped
        );
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>9} {:>9} {:>8} {:>7}",
            "stage", "mean", "p50", "p99", "max", "share"
        );
        let total_sum = self.total_sum();
        let cell = |v: f64| -> String {
            if v.is_finite() {
                format!("{v:.2}")
            } else {
                "-".to_string()
            }
        };
        for i in 0..=STAGE_COUNT {
            let (name, sum) = if i < STAGE_COUNT {
                (STAGE_NAMES[i], self.sums[i])
            } else {
                ("total", total_sum)
            };
            let share = if total_sum > 0 {
                format!("{:.1}%", 100.0 * sum as f64 / total_sum as f64)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:<16} {:>9} {:>9} {:>9} {:>8} {:>7}",
                name,
                cell(self.mean[i]),
                cell(self.p50[i]),
                cell(self.p99[i]),
                self.max[i],
                share
            );
        }
        out
    }
}

/// Renders one slow-packet waterfall as the indented hop-by-hop text block
/// `noc explain` prints under the breakdown table.
pub fn render_waterfall(w: &Waterfall) -> String {
    let p = &w.packet;
    let class = if p.class == 0 { "request" } else { "reply" };
    let mut out = format!(
        "packet {:016x} ({class}) born {} ejected {}: {} cycles over {} hop(s)\n",
        p.packet_id,
        p.birth,
        p.eject,
        p.total(),
        p.hops
    );
    let _ = write!(out, "  stages:");
    for (i, name) in STAGE_NAMES.iter().enumerate() {
        if p.stages[i] > 0 {
            let _ = write!(out, " {name} {}", p.stages[i]);
        }
    }
    out.push('\n');
    for h in &w.hops {
        let _ = writeln!(
            out,
            "  hop router {:>3} in {}#{}: arrive {} depart {} (vca {}, sa {}, credit {}, \
             active {})",
            h.router, h.in_port, h.in_vc, h.arrive, h.depart, h.vca, h.sa, h.credit, h.active
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    fn hop(packet_id: u64, router: u32, arrive: u64, depart: u64, stages: [u64; 4]) -> HopRecord {
        HopRecord {
            packet_id,
            router,
            in_port: 0,
            in_vc: 0,
            arrive,
            depart,
            vca: stages[0],
            sa: stages[1],
            credit: stages[2],
            active: stages[3],
        }
    }

    /// A small deterministic ledger: two in-window packets (one slow, one
    /// fast) plus a warmup packet that must be excluded.
    fn sample_collector(capacity: usize, top_k: usize) -> AnatomyCollector {
        let mut c = AnatomyCollector::new(capacity, top_k);
        // Warmup packet: folded out of window, contributes nothing.
        c.ingest_hop(hop(9, 0, 1, 2, [0, 0, 0, 2]));
        c.eject_head(9, 0, 0, 3);
        c.eject_tail(9, 0, 3, false);
        // Packet 1: birth 0, injected 2, two hops, head eject 9, tail 12.
        c.ingest_hop(hop(1, 0, 3, 5, [1, 1, 0, 1]));
        c.ingest_hop(hop(1, 1, 7, 8, [0, 0, 0, 2]));
        c.eject_head(1, 0, 2, 9);
        c.eject_tail(1, 0, 12, true);
        // Packet 2 (reply): one hop, total 4.
        c.ingest_hop(hop(2, 3, 11, 12, [0, 0, 0, 2]));
        c.eject_head(2, 10, 10, 13);
        c.eject_tail(2, 1, 14, true);
        c
    }

    fn header() -> AnatomyHeader {
        AnatomyHeader {
            digest: "a".repeat(32),
            label: "mesh 8x8 @ 0.25".to_string(),
            routers: 64,
            warmup: 10,
            measure: 100,
            capacity: 4,
            top_k: 2,
        }
    }

    #[test]
    fn fold_reconciles_exactly() {
        let c = sample_collector(4, 2);
        assert_eq!(c.totals.packets, 2);
        assert_eq!(c.totals.class_packets, [1, 1]);
        assert_eq!(c.in_flight(), 0);
        let p1 = c.records[0];
        // src_queue 2, vca 1, sa 1, credit 0, active 3, wire 2, ser 3.
        assert_eq!(p1.stages, [2, 1, 1, 0, 3, 2, 3]);
        assert_eq!(p1.total(), 12);
        for p in &c.records {
            assert!(p.reconciles(), "{p:?}");
        }
        assert_eq!(c.totals.total_sum(), 12 + 4);
    }

    #[test]
    fn out_of_window_packets_are_excluded_but_cleared() {
        let c = sample_collector(4, 2);
        // The warmup packet folded (no leak) without entering any total.
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.totals.packets, 2);
        assert_eq!(c.records.len(), 2);
    }

    #[test]
    fn capacity_caps_rows_and_counts_drops() {
        let c = sample_collector(1, 2);
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.totals.dropped, 1);
        // The full-population report is unaffected by the cap.
        assert_eq!(c.totals.packets, 2);
        assert_eq!(c.summary().dropped, 1);
    }

    #[test]
    fn top_k_keeps_the_slowest() {
        let c = sample_collector(4, 1);
        assert_eq!(c.slow.len(), 1);
        assert_eq!(c.slow[0].packet.packet_id, 1);
        assert_eq!(c.slow[0].hops.len(), 2);
        let slowest = c.slowest();
        assert_eq!(slowest[0].packet.total(), 12);
    }

    #[test]
    fn dump_round_trips_byte_identically() {
        let c = sample_collector(4, 2);
        let text = c.to_jsonl(&header());
        for line in text.lines() {
            validate_json(line).expect(line);
        }
        let dump = AnatomyDump::parse(&text).unwrap();
        assert_eq!(dump.records, c.records);
        assert_eq!(dump.totals, c.totals);
        assert_eq!(dump.to_jsonl(), text);
    }

    #[test]
    fn replayed_summary_matches_live_summary() {
        let c = sample_collector(4, 2);
        let dump = AnatomyDump::parse(&c.to_jsonl(&header())).unwrap();
        assert_eq!(dump.summary().to_json(), c.summary().to_json());
        validate_json(&c.summary().to_json()).unwrap();
    }

    #[test]
    fn large_packet_ids_survive_the_dump() {
        // (terminal 63) << 48 | seq exceeds 2^53: ids must round-trip
        // through the hex-string encoding, not a lossy f64.
        let id = (63u64 << 48) | 1;
        let mut c = AnatomyCollector::new(4, 2);
        c.ingest_hop(hop(id, 0, 1, 2, [0, 0, 0, 2]));
        c.eject_head(id, 0, 0, 3);
        c.eject_tail(id, 0, 3, true);
        let dump = AnatomyDump::parse(&c.to_jsonl(&header())).unwrap();
        assert_eq!(dump.records[0].packet_id, id);
        assert_eq!(dump.slow[0].hops[0].packet_id, id);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(AnatomyDump::parse("").is_err());
        assert!(AnatomyDump::parse("{\"schema\":\"bogus/v9\"}").is_err());
        let c = sample_collector(4, 2);
        let mut text = c.to_jsonl(&header());
        text.push_str("{\"mystery\":1}\n");
        assert!(AnatomyDump::parse(&text).is_err());
        // Header without the totals line is truncated, not empty.
        assert!(AnatomyDump::parse(&header().to_json()).is_err());
    }

    #[test]
    fn summary_render_mentions_every_stage() {
        let c = sample_collector(4, 2);
        let table = c.summary().render();
        for name in STAGE_NAMES {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
        assert!(table.contains("total"));
        let wf = render_waterfall(c.slowest()[0]);
        assert!(wf.contains("hop router"));
        assert!(wf.contains("12 cycles"));
    }

    #[test]
    fn empty_collector_summarizes_without_nan_panics() {
        let c = AnatomyCollector::new(4, 2);
        let s = c.summary();
        assert_eq!(s.packets, 0);
        assert!(s.mean[0].is_nan());
        validate_json(&s.to_json()).unwrap();
        let dump = AnatomyDump::parse(&c.to_jsonl(&header())).unwrap();
        assert_eq!(dump.summary().to_json(), s.to_json());
    }
}
