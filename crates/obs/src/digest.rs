//! Order-sensitive trace digests.
//!
//! [`DigestSink`] folds every [`FlitEvent`] into a running FNV-1a hash, so
//! two runs produced identical traces — same events, same order — exactly
//! when their digests match. The engine-equivalence and golden-trace test
//! layers compare digests instead of multi-megabyte event logs; with
//! per-cycle tracking enabled the sink also snapshots the cumulative hash
//! at every cycle boundary, so a mismatch can be narrowed to the first
//! diverging cycle.

use crate::event::{FlitEvent, TraceSink};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into the FNV-1a state `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A [`TraceSink`] reducing the event stream to a 64-bit FNV-1a digest.
///
/// The digest covers every field of every event in emission order, so it
/// distinguishes reordered as well as altered traces. Construct with
/// [`DigestSink::with_cycle_digests`] to additionally record the
/// cumulative digest at each cycle boundary (then call
/// [`DigestSink::finish_cycles`] after the run so trailing event-free
/// cycles are represented too).
#[derive(Clone, Debug)]
pub struct DigestSink {
    hash: u64,
    events: u64,
    /// `cycle_digests[c]` = cumulative hash after all events of cycle `c`.
    cycle_digests: Vec<u64>,
    track_cycles: bool,
    /// Cycle currently being hashed (events arrive with non-decreasing
    /// cycle numbers).
    cur_cycle: u64,
}

impl Default for DigestSink {
    fn default() -> Self {
        DigestSink::new()
    }
}

impl DigestSink {
    /// A digest-only sink (no per-cycle snapshots).
    pub fn new() -> Self {
        DigestSink {
            hash: FNV_OFFSET,
            events: 0,
            cycle_digests: Vec::new(),
            track_cycles: false,
            cur_cycle: 0,
        }
    }

    /// A sink that also snapshots the cumulative digest per cycle.
    pub fn with_cycle_digests() -> Self {
        DigestSink {
            track_cycles: true,
            ..DigestSink::new()
        }
    }

    /// The digest over all events recorded so far.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// Events recorded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Closes the per-cycle snapshot list for a run of `total` cycles:
    /// cycles after the last event repeat the final digest, so two runs of
    /// equal length always produce equal-length snapshot lists.
    pub fn finish_cycles(&mut self, total: u64) {
        if self.track_cycles {
            while (self.cycle_digests.len() as u64) < total {
                self.cycle_digests.push(self.hash);
            }
        }
    }

    /// Cumulative digest after each cycle (empty unless constructed with
    /// [`DigestSink::with_cycle_digests`]).
    pub fn cycle_digests(&self) -> &[u64] {
        &self.cycle_digests
    }

    /// First cycle at which two per-cycle snapshot lists disagree —
    /// including a length mismatch, which diverges at the shorter list's
    /// end. `None` means the traces are identical.
    pub fn first_divergence(a: &[u64], b: &[u64]) -> Option<u64> {
        let n = a.len().min(b.len());
        for c in 0..n {
            if a[c] != b[c] {
                return Some(c as u64);
            }
        }
        (a.len() != b.len()).then_some(n as u64)
    }
}

impl TraceSink for DigestSink {
    const ACTIVE: bool = true;

    #[inline]
    fn record(&mut self, ev: FlitEvent) {
        if self.track_cycles {
            debug_assert!(
                ev.cycle >= self.cur_cycle,
                "events must not go back in time"
            );
            while self.cur_cycle < ev.cycle {
                // Close out every cycle up to the event's: each keeps the
                // digest it ended with.
                if self.cycle_digests.len() as u64 == self.cur_cycle {
                    self.cycle_digests.push(self.hash);
                }
                self.cur_cycle += 1;
            }
        }
        let mut h = self.hash;
        h = fnv1a(h, &ev.cycle.to_le_bytes());
        h = fnv1a(h, &[ev.kind as u8]);
        h = fnv1a(h, &ev.router.to_le_bytes());
        h = fnv1a(h, &ev.port.to_le_bytes());
        h = fnv1a(h, &ev.vc.to_le_bytes());
        h = fnv1a(h, &ev.packet_id.to_le_bytes());
        h = fnv1a(h, &ev.flit_index.to_le_bytes());
        self.hash = h;
        self.events += 1;
        if self.track_cycles {
            // The running cycle's slot tracks the latest digest; it is
            // final once a later cycle's event (or finish_cycles) lands.
            if self.cycle_digests.len() as u64 == ev.cycle {
                self.cycle_digests.push(self.hash);
            } else {
                self.cycle_digests[ev.cycle as usize] = self.hash;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FlitEventKind;

    fn ev(cycle: u64, packet: u64) -> FlitEvent {
        FlitEvent {
            cycle,
            kind: FlitEventKind::Inject,
            router: 3,
            port: 1,
            vc: 0,
            packet_id: packet,
            flit_index: 0,
        }
    }

    #[test]
    fn identical_streams_hash_identically() {
        let (mut a, mut b) = (DigestSink::new(), DigestSink::new());
        for c in 0..10 {
            a.record(ev(c, c));
            b.record(ev(c, c));
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.events(), 10);
    }

    #[test]
    fn any_field_change_changes_the_digest() {
        let (mut a, mut b) = (DigestSink::new(), DigestSink::new());
        a.record(ev(5, 7));
        b.record(ev(5, 8));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn reordering_changes_the_digest() {
        let (mut a, mut b) = (DigestSink::new(), DigestSink::new());
        a.record(ev(1, 1));
        a.record(ev(1, 2));
        b.record(ev(1, 2));
        b.record(ev(1, 1));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn cycle_digests_locate_the_first_divergence() {
        let (mut a, mut b) = (
            DigestSink::with_cycle_digests(),
            DigestSink::with_cycle_digests(),
        );
        for c in 0..4 {
            a.record(ev(c, c));
            b.record(ev(c, if c == 2 { 99 } else { c }));
        }
        a.finish_cycles(6);
        b.finish_cycles(6);
        assert_eq!(a.cycle_digests().len(), 6);
        assert_eq!(
            DigestSink::first_divergence(a.cycle_digests(), b.cycle_digests()),
            Some(2)
        );
        let same = a.clone();
        assert_eq!(
            DigestSink::first_divergence(a.cycle_digests(), same.cycle_digests()),
            None
        );
    }

    #[test]
    fn event_free_cycles_repeat_the_running_digest() {
        let mut s = DigestSink::with_cycle_digests();
        s.record(ev(0, 1));
        s.record(ev(3, 2));
        s.finish_cycles(5);
        let d = s.cycle_digests();
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], d[1]);
        assert_eq!(d[1], d[2]);
        assert_ne!(d[2], d[3]);
        assert_eq!(d[3], d[4]);
    }
}
