//! Terminal rendering for `noc top`: a per-router congestion heatmap and
//! a matching-efficiency sparkline, drawn from flight-recorder window
//! snapshots. Pure string building — the CLI owns cursor control — so the
//! same frame can be asserted in tests (`--once`) or redrawn live.

use crate::timeseries::WindowSnapshot;
use std::fmt::Write as _;

/// Unicode block shades for the heatmap, lightest to darkest.
const SHADES: [char; 5] = ['·', '░', '▒', '▓', '█'];
/// Unicode eighth-blocks for the sparkline.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Sparkline over `values` scaled to `[0, 1]`; out-of-range values clamp,
/// NaN renders as a space.
fn sparkline(values: &[f64]) -> String {
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else {
                let idx = (v.clamp(0.0, 1.0) * (SPARKS.len() - 1) as f64).round() as usize;
                SPARKS[idx]
            }
        })
        .collect()
}

/// Renders one `noc top` frame from the latest snapshot plus the recent
/// efficiency series (oldest first). `label` names the run; `capacity` is
/// the per-router buffer capacity in flits used to scale the heatmap
/// (pass the network's `total VCs × buf_depth`).
pub fn render_top(
    label: &str,
    latest: &WindowSnapshot,
    efficiency: &[f64],
    capacity: u32,
) -> String {
    let n = latest.routers.len();
    // Router grids are square for every shipped topology; fall back to one
    // row if not.
    let side = (1..=n).find(|s| s * s >= n).unwrap_or(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "noc top — {label} · window {} (cycle {})",
        latest.window, latest.cycle
    );
    let _ = writeln!(
        out,
        "flits {:>8}  injected {:>6}  ejected {:>6}  in flight {:>6}  buffered {:>6}",
        latest.flits(),
        latest.injected,
        latest.ejected,
        latest.in_flight,
        latest.occupancy()
    );
    out.push_str("congestion (buffer occupancy per router):\n");
    let cap = capacity.max(1);
    for row in 0..side {
        out.push_str("  ");
        for col in 0..side {
            let i = row * side + col;
            if i >= n {
                break;
            }
            let fill = latest.routers[i].occupancy.min(cap) as f64 / cap as f64;
            let idx = (fill * (SHADES.len() - 1) as f64).ceil() as usize;
            out.push(SHADES[idx.min(SHADES.len() - 1)]);
            out.push(' ');
        }
        out.push('\n');
    }
    let recent: Vec<f64> = efficiency.iter().rev().take(60).rev().copied().collect();
    let _ = write!(out, "matching efficiency  {}", sparkline(&recent));
    match recent.iter().rev().find(|e| e.is_finite()) {
        Some(e) => {
            let _ = writeln!(out, "  {:.3}", e);
        }
        None => out.push('\n'),
    }
    let mix: (u64, u64, u64, u64, u64) =
        latest
            .routers
            .iter()
            .fold((0, 0, 0, 0, 0), |(a, c, v, s, e), r| {
                (
                    a + r.active,
                    c + r.credit_stall,
                    v + r.vca_stall,
                    s + r.sa_stall,
                    e + r.empty,
                )
            });
    let total = (mix.0 + mix.1 + mix.2 + mix.3 + mix.4).max(1) as f64;
    let _ = writeln!(
        out,
        "stall mix  active {:.0}%  credit {:.0}%  vca {:.0}%  sa {:.0}%  empty {:.0}%",
        mix.0 as f64 / total * 100.0,
        mix.1 as f64 / total * 100.0,
        mix.2 as f64 / total * 100.0,
        mix.3 as f64 / total * 100.0,
        mix.4 as f64 / total * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::RouterCounters;

    fn snap(occupancies: &[u32]) -> WindowSnapshot {
        WindowSnapshot {
            window: 3,
            cycle: 300,
            injected: 40,
            ejected: 38,
            in_flight: 2,
            routers: occupancies
                .iter()
                .map(|&o| RouterCounters {
                    out_flits: 10,
                    occupancy: o,
                    busy_vcs: o.min(4),
                    active: 50,
                    credit_stall: 10,
                    vca_stall: 5,
                    sa_stall: 5,
                    empty: 30,
                    match_granted: 8,
                    match_max: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn frame_has_grid_and_sparkline() {
        let s = snap(&[0, 8, 16, 32]);
        let frame = render_top("mesh 2x1x2 @ 0.3", &s, &[0.5, f64::NAN, 0.8], 32);
        assert!(frame.contains("noc top — mesh 2x1x2 @ 0.3"));
        assert!(frame.contains("window 3 (cycle 300)"));
        // 4 routers → 2×2 grid: empty router lightest, full darkest.
        assert!(frame.contains('·'));
        assert!(frame.contains('█'));
        assert!(frame.contains("matching efficiency"));
        assert!(frame.contains("0.800"));
        // NaN in the sparkline renders as a blank, not a bar.
        let spark_line = frame
            .lines()
            .find(|l| l.starts_with("matching efficiency"))
            .unwrap();
        assert!(spark_line.contains(' '));
        assert!(frame.contains("stall mix"));
    }

    #[test]
    fn sparkline_scales_and_clamps() {
        assert_eq!(sparkline(&[0.0, 1.0]), "▁█");
        assert_eq!(sparkline(&[2.0, -1.0]), "█▁");
        assert_eq!(sparkline(&[f64::NAN]), " ");
    }
}
