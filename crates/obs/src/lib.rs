//! Flit-level observability for the NoC simulator.
//!
//! Three layers, usable independently:
//!
//! - [`event`]: a [`TraceSink`] trait receiving one [`FlitEvent`] per
//!   flit-lifecycle step (injection, routing, VC allocation, switch
//!   allocation, switch traversal, ejection). The sink is selected at
//!   compile time through a generic parameter on the simulator, and the
//!   no-op sink ([`NopSink`]) advertises `ACTIVE = false` so every
//!   instrumentation site folds to nothing — tracing costs zero when off.
//! - [`metrics`]: always-on per-router counters ([`RouterObs`]) with
//!   **stall-cause attribution** — every input VC is classified each cycle
//!   as moving a flit, stalled on credits, stalled on VC allocation,
//!   stalled on switch allocation, or empty — plus an opt-in sampled
//!   time series ([`MetricsRegistry`]) of buffer occupancy and channel
//!   utilization.
//! - [`export`]: machine-readable encoders — long-format CSV and JSON
//!   lines for the metrics, and the Chrome Trace Event Format (loadable
//!   in `chrome://tracing` / Perfetto) for the packet timeline.

pub mod event;
pub mod export;
pub mod metrics;

pub use event::{CountingSink, FlitEvent, FlitEventKind, NopSink, TraceSink, VecSink};
pub use export::{chrome_trace, metrics_csv, metrics_jsonl, validate_json};
pub use metrics::{GaugeSample, MetricsRegistry, RouterBreakdown, RouterObs, StallCounters};
