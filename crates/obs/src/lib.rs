#![forbid(unsafe_code)]
//! Flit-level observability for the NoC simulator.
//!
//! Three layers, usable independently:
//!
//! - [`event`]: a [`TraceSink`] trait receiving one [`FlitEvent`] per
//!   flit-lifecycle step (injection, routing, VC allocation, switch
//!   allocation, switch traversal, ejection). The sink is selected at
//!   compile time through a generic parameter on the simulator, and the
//!   no-op sink ([`NopSink`]) advertises `ACTIVE = false` so every
//!   instrumentation site folds to nothing — tracing costs zero when off.
//! - [`metrics`]: always-on per-router counters ([`RouterObs`]) with
//!   **stall-cause attribution** — every input VC is classified each cycle
//!   as moving a flit, stalled on credits, stalled on VC allocation,
//!   stalled on switch allocation, or empty — plus an opt-in sampled
//!   time series ([`MetricsRegistry`]) of buffer occupancy and channel
//!   utilization.
//! - [`export`]: machine-readable encoders — long-format CSV and JSON
//!   lines for the metrics, and the Chrome Trace Event Format (loadable
//!   in `chrome://tracing` / Perfetto) for the packet timeline.
//! - [`hist`]: a log-linear HDR-style latency histogram with bounded
//!   relative error, exact low-latency buckets, and interpolated
//!   percentile queries — the substrate for every reported quantile.
//! - [`profile`]: self-profiling. A [`PhaseProfiler`] attributes
//!   wall-time and event rates to the router pipeline phases (routing,
//!   VC allocation, switch allocation, traversal, credits); the no-op
//!   implementation compiles every clock read away, mirroring the sink
//!   design.
//! - [`json`]: a tiny strict JSON reader, so bench baselines and JSON
//!   summaries can be parsed without external dependencies.
//! - [`digest`]: order-sensitive FNV-1a trace digests ([`DigestSink`]),
//!   the substrate of the cycle-exact engine-equivalence and golden-trace
//!   test layers.
//! - [`progress`]: a thread-safe progress/ETA meter for long experiment
//!   sweeps; the manifest exporter in [`export`] records how each sweep
//!   point was satisfied (computed / cache / journal).
//! - [`timeseries`]: the bounded-memory flight recorder — windowed
//!   per-router counter snapshots ([`WindowSnapshot`]) in a fixed-capacity
//!   ring ([`FlightRecorder`]), including the consecutive-stalled-window
//!   signal the simulator's deadlock watchdog trips on.
//! - [`record`]: the `noc-telemetry/v1` dump format (JSON Lines) and the
//!   derived per-run [`TelemetrySummary`] — shared between live recording
//!   and `noc replay`, so a replayed dump summarizes byte-identically.
//! - [`top`]: terminal frames for `noc top` (congestion heatmap +
//!   matching-efficiency sparkline), rendered as plain strings.
//! - [`anatomy`]: the per-packet latency ledger behind `noc explain` —
//!   hop-by-hop stage attribution ([`HopRecord`]), the folding collector
//!   ([`AnatomyCollector`]) with exact reconciliation against end-to-end
//!   latency, and the `noc-anatomy/v1` dump format with a replay-identical
//!   blame report ([`AnatomySummary`]).
//! - [`serve`]: the `noc-serve/v1` wire schema for the sweep-as-a-service
//!   daemon — request/response/progress line builders and the
//!   [`ServeEvent`] client-side parser.

pub mod anatomy;
pub mod digest;
pub mod event;
pub mod export;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod record;
pub mod serve;
pub mod timeseries;
pub mod top;

pub use anatomy::{
    render_waterfall, AnatomyCollector, AnatomyDump, AnatomyHeader, AnatomySummary, AnatomyTotals,
    HopRecord, PacketAnatomy, Waterfall, ANATOMY_SCHEMA, STAGE_COUNT, STAGE_NAMES,
};
pub use digest::DigestSink;
pub use event::{CountingSink, FlitEvent, FlitEventKind, NopSink, TraceSink, VecSink};
pub use export::{
    anatomy_chrome_trace, chrome_trace, histogram_csv, metrics_csv, metrics_jsonl,
    percentile_table_json, sweep_manifest_json, SweepManifestPoint,
};
pub use hist::{HdrHistogram, DEFAULT_QUANTILES};
pub use json::{validate_json, JsonValue};
pub use metrics::{GaugeSample, MetricsRegistry, RouterBreakdown, RouterObs, StallCounters};
pub use profile::{NopProfiler, Phase, PhaseProfiler, Profiler, PHASES};
pub use progress::ProgressMeter;
pub use record::{
    window_jsonl, TelemetryDump, TelemetryHeader, TelemetrySummary, TELEMETRY_SCHEMA,
};
pub use serve::{
    serve_accepted_line, serve_done_line, serve_error_line, serve_preset_request_line,
    serve_result_line, serve_status_line, serve_status_request_line, serve_sweep_request_line,
    ServeEvent, SERVE_SCHEMA,
};
pub use timeseries::{FlightRecorder, RouterCounters, WindowSnapshot};
pub use top::render_top;
