//! Always-on router counters with stall-cause attribution, and the opt-in
//! sampled time series.

/// Per-input-VC cycle classification. Every simulated cycle, each input VC
/// falls into exactly one bucket, so for any VC
/// `active + credit_stall + vca_stall + sa_stall + empty == cycles` and
/// the stall *fractions* sum to at most 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallCounters {
    /// A flit left this VC through the switch this cycle.
    pub active: u64,
    /// Flit buffered, output VC held, but no downstream credit.
    pub credit_stall: u64,
    /// Head flit buffered and still waiting for an output VC (covers the
    /// VCA-request cycle itself and any speculative-SA losses riding on
    /// it, since those cycles end without an output VC to move through).
    pub vca_stall: u64,
    /// Flit buffered with an output VC and credit, but the switch
    /// allocator did not grant this VC.
    pub sa_stall: u64,
    /// No flit buffered.
    pub empty: u64,
}

impl StallCounters {
    /// Cycles observed.
    pub fn cycles(&self) -> u64 {
        self.active + self.credit_stall + self.vca_stall + self.sa_stall + self.empty
    }

    /// Fraction of observed cycles stalled for any cause (0 if never
    /// observed).
    pub fn stall_fraction(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            return 0.0;
        }
        (self.credit_stall + self.vca_stall + self.sa_stall) as f64 / c as f64
    }

    /// `(credit, vca, sa, empty)` fractions of observed cycles (all 0 if
    /// never observed).
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let c = self.cycles();
        if c == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let f = |x: u64| x as f64 / c as f64;
        (
            f(self.credit_stall),
            f(self.vca_stall),
            f(self.sa_stall),
            f(self.empty),
        )
    }

    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &StallCounters) {
        self.active += other.active;
        self.credit_stall += other.credit_stall;
        self.vca_stall += other.vca_stall;
        self.sa_stall += other.sa_stall;
        self.empty += other.empty;
    }
}

/// Always-on observability state of one router: per-output-port flit
/// counts and per-input-VC stall attribution.
#[derive(Clone, Debug, Default)]
pub struct RouterObs {
    /// Flits sent into each output port's link (switch traversals).
    pub out_flits: Vec<u64>,
    /// Stall counters per input VC, indexed `port * vcs + vc`.
    pub vc: Vec<StallCounters>,
    /// VCs per port (for index decoding in exports).
    pub vcs: usize,
}

impl RouterObs {
    /// Fresh counters for a `ports × vcs` router.
    pub fn new(ports: usize, vcs: usize) -> Self {
        RouterObs {
            out_flits: vec![0; ports],
            vc: vec![StallCounters::default(); ports * vcs],
            vcs,
        }
    }

    /// Total flits this router pushed into links.
    pub fn total_out_flits(&self) -> u64 {
        self.out_flits.iter().sum()
    }

    /// Stall counters aggregated over the VCs of one input port.
    pub fn port_stalls(&self, port: usize) -> StallCounters {
        let mut agg = StallCounters::default();
        for s in &self.vc[port * self.vcs..(port + 1) * self.vcs] {
            agg.merge(s);
        }
        agg
    }

    /// `(port, fraction)` of the input port with the highest stall
    /// fraction; `(0, 0.0)` for a router that observed nothing.
    pub fn worst_port_stall(&self) -> (usize, f64) {
        let ports = self.out_flits.len();
        (0..ports)
            .map(|p| (p, self.port_stalls(p).stall_fraction()))
            .fold(
                (0, 0.0),
                |best, cur| if cur.1 > best.1 { cur } else { best },
            )
    }
}

/// Per-router digest attached to simulation results.
#[derive(Clone, Copy, Debug)]
pub struct RouterBreakdown {
    /// Router id.
    pub router: usize,
    /// Flits/cycle this router pushed into links over the run.
    pub throughput: f64,
    /// Input port with the highest stall fraction.
    pub worst_port: usize,
    /// That port's stall fraction (stalled cycles / observed cycles).
    pub worst_port_stall: f64,
}

/// One sampled time-series point for one router.
#[derive(Clone, Copy, Debug)]
pub struct GaugeSample {
    /// Sample cycle.
    pub cycle: u64,
    /// Router id.
    pub router: u32,
    /// Flits buffered across the router's input VCs at the sample point.
    pub occupancy: u32,
    /// Input VCs holding at least one flit at the sample point.
    pub busy_vcs: u32,
    /// Flits/cycle/port entering this router's output links since the
    /// previous sample (channel utilization).
    pub utilization: f64,
}

/// The opt-in sampled time series: buffer occupancy and channel
/// utilization per router, every `sample_interval` cycles.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    /// Sampling period in cycles.
    pub sample_interval: u64,
    /// Collected samples, grouped by sample cycle then router.
    pub samples: Vec<GaugeSample>,
    /// `out_flits` totals at the previous sample, for the utilization
    /// delta.
    last_out: Vec<u64>,
    /// Cycle of the previous sample.
    last_cycle: u64,
}

impl MetricsRegistry {
    /// Creates a registry sampling every `sample_interval` cycles (clamped
    /// to at least 1) across `routers` routers.
    pub fn new(sample_interval: u64, routers: usize) -> Self {
        MetricsRegistry {
            sample_interval: sample_interval.max(1),
            samples: Vec::new(),
            last_out: vec![0; routers],
            last_cycle: 0,
        }
    }

    /// True when `now` is a sample cycle.
    pub fn due(&self, now: u64) -> bool {
        now.is_multiple_of(self.sample_interval)
    }

    /// Records one sample point. `per_router` yields
    /// `(occupancy, busy_vcs, total out_flits, ports)` per router in id
    /// order.
    pub fn sample(&mut self, now: u64, per_router: impl Iterator<Item = (u32, u32, u64, usize)>) {
        let dt = now.saturating_sub(self.last_cycle).max(1) as f64;
        for (router, (occupancy, busy_vcs, out_total, ports)) in per_router.enumerate() {
            let sent = out_total - self.last_out[router];
            self.last_out[router] = out_total;
            self.samples.push(GaugeSample {
                cycle: now,
                router: router as u32,
                occupancy,
                busy_vcs,
                utilization: sent as f64 / (dt * ports.max(1) as f64),
            });
        }
        self.last_cycle = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_fractions_sum_to_one_with_activity() {
        let s = StallCounters {
            active: 10,
            credit_stall: 5,
            vca_stall: 3,
            sa_stall: 2,
            empty: 80,
        };
        assert_eq!(s.cycles(), 100);
        let (c, v, a, e) = s.fractions();
        assert!((c + v + a + e + 0.10 - 1.0).abs() < 1e-12);
        assert!((s.stall_fraction() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_give_zero_fractions() {
        let s = StallCounters::default();
        assert_eq!(s.stall_fraction(), 0.0);
        assert_eq!(s.fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn worst_port_picks_the_maximum() {
        let mut obs = RouterObs::new(3, 2);
        obs.vc[2].sa_stall = 9; // port 1, vc 0
        obs.vc[2].empty = 1;
        obs.vc[3].empty = 10; // port 1, vc 1
        obs.vc[0].empty = 10;
        obs.vc[4].credit_stall = 1; // port 2, vc 0
        obs.vc[4].empty = 19;
        obs.vc[5].empty = 20;
        let (port, frac) = obs.worst_port_stall();
        assert_eq!(port, 1);
        assert!((frac - 9.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn registry_samples_compute_utilization_deltas() {
        let mut m = MetricsRegistry::new(10, 2);
        m.sample(10, [(4u32, 2u32, 20u64, 4usize), (0, 0, 0, 4)].into_iter());
        m.sample(20, [(6u32, 3u32, 60u64, 4usize), (0, 0, 8, 4)].into_iter());
        assert_eq!(m.samples.len(), 4);
        // Router 0, second sample: 40 flits over 10 cycles × 4 ports.
        let s = &m.samples[2];
        assert_eq!(s.cycle, 20);
        assert!((s.utilization - 1.0).abs() < 1e-12);
        // Router 1, second sample: 8 flits over 10 cycles × 4 ports.
        assert!((m.samples[3].utilization - 0.2).abs() < 1e-12);
    }
}
