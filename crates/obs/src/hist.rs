//! Log-linear HDR-style latency histogram.
//!
//! Values are bucketed with [`HdrHistogram::SUB_BUCKETS`] linear
//! sub-buckets per power-of-two octave: values below `SUB_BUCKETS` get a
//! bucket each (exact counts for low latencies), and every larger octave
//! `[2^k, 2^(k+1))` is split into `SUB_BUCKETS` equal-width sub-buckets,
//! bounding the relative quantization error by
//! [`HdrHistogram::REL_ERROR`] ≈ 3.1% at any magnitude. This replaces the
//! old power-of-two histogram whose p99 for a 100-cycle tail could only be
//! reported as "≤ 128".

/// Log-linear histogram over `u64` values with bounded relative error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HdrHistogram {
    /// Bucket counts (see module docs for the index scheme).
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::new()
    }
}

const SUB_BITS: u32 = 5;

impl HdrHistogram {
    /// Linear sub-buckets per octave (values below this are exact).
    pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

    /// Worst-case relative quantization error of any reported quantile:
    /// one sub-bucket width over the octave's lower bound.
    pub const REL_ERROR: f64 = 1.0 / Self::SUB_BUCKETS as f64;

    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        // Octaves 2^SUB_BITS..2^64, SUB_BUCKETS buckets each, after the
        // SUB_BUCKETS exact unit buckets.
        let buckets = (Self::SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);
        HdrHistogram {
            counts: vec![0; buckets],
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn index(v: u64) -> usize {
        if v < Self::SUB_BUCKETS {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let sub = (v >> (msb - SUB_BITS)) - Self::SUB_BUCKETS;
            (Self::SUB_BUCKETS as usize) * (msb - SUB_BITS + 1) as usize + sub as usize
        }
    }

    /// Inclusive lower bound of bucket `i`.
    fn bucket_lower(i: usize) -> u64 {
        let sub = Self::SUB_BUCKETS as usize;
        if i < sub {
            i as u64
        } else {
            let octave = (i / sub - 1) as u32;
            let within = (i % sub) as u64;
            (Self::SUB_BUCKETS + within) << octave
        }
    }

    /// Width of bucket `i` in value units.
    fn bucket_width(i: usize) -> u64 {
        let sub = Self::SUB_BUCKETS as usize;
        if i < sub {
            1
        } else {
            1u64 << (i / sub - 1)
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v` at once (bulk reconstruction from
    /// serialized bucket counts).
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index(v)] += n;
        self.total += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Rebuilds a histogram from serialized parts: `(value, count)` pairs
    /// (any representative value inside each bucket — [`iter_buckets`]'s
    /// lower bounds round-trip exactly) plus the exact recorded extremes,
    /// which bucket lower bounds alone cannot recover. `min`/`max` are
    /// ignored when `buckets` is empty.
    ///
    /// [`iter_buckets`]: HdrHistogram::iter_buckets
    pub fn from_parts(buckets: &[(u64, u64)], min: u64, max: u64) -> HdrHistogram {
        let mut h = HdrHistogram::new();
        for &(v, c) in buckets {
            h.record_n(v, c);
        }
        if h.total > 0 {
            debug_assert!(min <= max && Self::index(min) == Self::index(h.min));
            h.min = min;
            h.max = max;
        }
        h
    }

    /// Values recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Accumulates another histogram (same fixed bucket layout).
    pub fn merge(&mut self, other: &HdrHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Quantile estimate with within-bucket linear interpolation.
    ///
    /// `q` must be in `(0, 1]` — `q = 0` has no defined order statistic
    /// and is rejected. Returns NaN on an empty histogram. The estimate
    /// deviates from the exact order statistic by at most one sub-bucket
    /// width, i.e. a relative error of [`HdrHistogram::REL_ERROR`];
    /// values below [`HdrHistogram::SUB_BUCKETS`] are exact.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!(
            q > 0.0 && q <= 1.0,
            "percentile q must be in (0, 1], got {q}"
        );
        if self.total == 0 {
            return f64::NAN;
        }
        if q == 1.0 {
            return self.max as f64;
        }
        let target = ((self.total as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lower = Self::bucket_lower(i);
                let width = Self::bucket_width(i);
                // Interpolate across the bucket's representable values
                // [lower, lower + width - 1]; unit-width buckets are exact.
                let frac = (target - seen) as f64 / c as f64;
                let v = lower as f64 + frac * (width - 1) as f64;
                return v.clamp(self.min as f64, self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// `(q, estimate)` rows for a list of quantiles.
    pub fn percentile_table(&self, qs: &[f64]) -> Vec<(f64, f64)> {
        qs.iter().map(|&q| (q, self.percentile(q))).collect()
    }

    /// Non-empty buckets as `(lower, upper_exclusive, count)`, ascending.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lower = Self::bucket_lower(i);
                (lower, lower + Self::bucket_width(i), c)
            })
    }
}

/// The default quantile grid reported by summaries and exporters.
pub const DEFAULT_QUANTILES: [f64; 6] = [0.50, 0.90, 0.95, 0.99, 0.999, 1.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact() {
        let mut h = HdrHistogram::new();
        for v in [3u64, 3, 3, 7, 9] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 3.0);
        assert_eq!(h.percentile(0.8), 7.0);
        assert_eq!(h.percentile(1.0), 9.0);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(9));
    }

    #[test]
    fn bucket_index_round_trips() {
        for v in (0..2048u64).chain([1u64 << 33, u64::MAX, 100, 1000, 65537]) {
            let i = HdrHistogram::index(v);
            let lower = HdrHistogram::bucket_lower(i);
            let width = HdrHistogram::bucket_width(i);
            assert!(
                lower <= v && (v - lower) < width,
                "v={v} i={i} lower={lower} width={width}"
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = HdrHistogram::new();
        h.record(100);
        let p = h.percentile(0.99);
        assert!(
            (p - 100.0).abs() <= 100.0 * HdrHistogram::REL_ERROR,
            "p99 {p} for a lone 100"
        );
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = HdrHistogram::new();
        let mut b = HdrHistogram::new();
        let mut both = HdrHistogram::new();
        for v in 0..500u64 {
            let x = v * v % 9973;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            both.record(x);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_is_nan() {
        assert!(HdrHistogram::new().percentile(0.5).is_nan());
    }

    #[test]
    #[should_panic(expected = "percentile q must be in (0, 1]")]
    fn zero_quantile_rejected() {
        HdrHistogram::new().percentile(0.0);
    }

    #[test]
    fn from_parts_round_trips_exactly() {
        let mut h = HdrHistogram::new();
        for v in 0..4000u64 {
            h.record(v * v % 99_991);
        }
        let parts: Vec<(u64, u64)> = h.iter_buckets().map(|(lo, _, c)| (lo, c)).collect();
        let rebuilt = HdrHistogram::from_parts(&parts, h.min().unwrap_or(0), h.max().unwrap_or(0));
        // Structural equality: identical counts, total and exact extremes,
        // hence identical percentiles forever after.
        assert_eq!(rebuilt, h);
        assert!(HdrHistogram::from_parts(&[], 0, 0).min().is_none());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = HdrHistogram::new();
        let mut b = HdrHistogram::new();
        for _ in 0..7 {
            a.record(123);
        }
        b.record_n(123, 7);
        b.record_n(999, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn bucket_iteration_covers_all_counts() {
        let mut h = HdrHistogram::new();
        for v in [1u64, 1, 40, 40, 40, 5000] {
            h.record(v);
        }
        let buckets: Vec<_> = h.iter_buckets().collect();
        assert_eq!(buckets.iter().map(|b| b.2).sum::<u64>(), h.total());
        for (lower, upper, _) in buckets {
            assert!(lower < upper);
        }
    }

    #[test]
    fn percentile_is_exact_at_bucket_boundaries() {
        // Two unit-width buckets, 5 counts each: the quantile that lands
        // exactly on the first bucket's last sample must report the first
        // bucket, and the next representable quantile the second.
        let mut h = HdrHistogram::new();
        h.record_n(10, 5);
        h.record_n(20, 5);
        assert_eq!(h.percentile(0.5), 10.0);
        assert_eq!(h.percentile(0.500001), 20.0);
        assert_eq!(h.percentile(0.6), 20.0);
        assert_eq!(h.percentile(1.0), 20.0);
    }

    #[test]
    fn single_bucket_histogram_interpolates_within_width() {
        // 100 and 101 share the width-2 bucket [100, 102): the midpoint
        // quantile interpolates halfway across the representable values,
        // the top quantiles pin to the exact recorded maximum.
        let mut h = HdrHistogram::new();
        h.record(100);
        h.record(101);
        assert_eq!(h.percentile(0.5), 100.5);
        assert_eq!(h.percentile(0.75), 101.0);
        assert_eq!(h.percentile(1.0), 101.0);
    }

    #[test]
    fn single_value_histogram_is_exact_at_every_quantile() {
        // Interpolation across a wide bucket must clamp to the recorded
        // min/max, so a degenerate distribution reports its exact value.
        let mut h = HdrHistogram::new();
        h.record_n(100, 1000);
        for q in [0.001, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(q), 100.0, "q={q}");
        }
    }

    #[test]
    fn octave_boundary_values_report_exactly() {
        // 63 is the last unit bucket; 64 opens the first width-2 octave;
        // 65 is the top of that bucket. Each alone must report itself.
        for v in [63u64, 64, 65] {
            let mut h = HdrHistogram::new();
            h.record(v);
            assert_eq!(h.percentile(0.5), v as f64, "value {v}");
            assert_eq!(h.percentile(1.0), v as f64, "value {v}");
        }
    }
}
