//! Machine-readable exporters: long-format CSV, JSON lines, and the
//! Chrome Trace Event Format.
//!
//! The CSV and JSONL encoders share one long (tidy) schema —
//! `record,cycle,router,port,vc,name,value` — so counters and sampled
//! gauges coexist in a single file that loads directly into pandas or
//! DuckDB. The Chrome encoder emits a JSON object with a `traceEvents`
//! array loadable in `chrome://tracing` or Perfetto: one complete (`"X"`)
//! slice per flit event on a `pid = router`, `tid = port·256 + vc` lane,
//! plus one async `"b"`/`"e"` pair per packet spanning injection to last
//! ejection.

use crate::event::{FlitEvent, FlitEventKind};
use crate::metrics::{MetricsRegistry, RouterObs};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One row of the long-format export.
struct Row<'a> {
    record: &'a str,
    cycle: Option<u64>,
    router: usize,
    port: Option<usize>,
    vc: Option<usize>,
    name: &'a str,
    value: f64,
}

fn rows<'a>(
    routers: &'a [RouterObs],
    registry: Option<&'a MetricsRegistry>,
) -> impl Iterator<Item = Row<'a>> + 'a {
    let counters = routers.iter().enumerate().flat_map(|(r, obs)| {
        let per_vc = obs.vc.iter().enumerate().flat_map(move |(idx, s)| {
            let (port, vc) = (idx / obs.vcs, idx % obs.vcs);
            [
                ("active", s.active),
                ("credit_stall", s.credit_stall),
                ("vca_stall", s.vca_stall),
                ("sa_stall", s.sa_stall),
                ("empty", s.empty),
            ]
            .into_iter()
            .map(move |(name, v)| Row {
                record: "counter",
                cycle: None,
                router: r,
                port: Some(port),
                vc: Some(vc),
                name,
                value: v as f64,
            })
        });
        let per_port = obs.out_flits.iter().enumerate().map(move |(p, &v)| Row {
            record: "counter",
            cycle: None,
            router: r,
            port: Some(p),
            vc: None,
            name: "out_flits",
            value: v as f64,
        });
        per_vc.chain(per_port)
    });
    let gauges = registry
        .map(|m| m.samples.as_slice())
        .unwrap_or(&[])
        .iter()
        .flat_map(|s| {
            [
                ("occupancy", s.occupancy as f64),
                ("busy_vcs", s.busy_vcs as f64),
                ("utilization", s.utilization),
            ]
            .into_iter()
            .map(|(name, value)| Row {
                record: "gauge",
                cycle: Some(s.cycle),
                router: s.router as usize,
                port: None,
                vc: None,
                name,
                value,
            })
        });
    counters.chain(gauges)
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Encodes the metrics as long-format CSV with a header row.
pub fn metrics_csv(routers: &[RouterObs], registry: Option<&MetricsRegistry>) -> String {
    let mut out = String::from("record,cycle,router,port,vc,name,value\n");
    for row in rows(routers, registry) {
        let opt = |o: Option<u64>| o.map(|v| v.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            row.record,
            opt(row.cycle),
            row.router,
            opt(row.port.map(|p| p as u64)),
            opt(row.vc.map(|v| v as u64)),
            row.name,
            fmt_value(row.value)
        );
    }
    out
}

/// Encodes the metrics as JSON lines (one object per row of the same long
/// schema; absent coordinates are omitted).
pub fn metrics_jsonl(routers: &[RouterObs], registry: Option<&MetricsRegistry>) -> String {
    let mut out = String::new();
    for row in rows(routers, registry) {
        let _ = write!(out, "{{\"record\":\"{}\"", row.record);
        if let Some(c) = row.cycle {
            let _ = write!(out, ",\"cycle\":{c}");
        }
        let _ = write!(out, ",\"router\":{}", row.router);
        if let Some(p) = row.port {
            let _ = write!(out, ",\"port\":{p}");
        }
        if let Some(v) = row.vc {
            let _ = write!(out, ",\"vc\":{v}");
        }
        let _ = writeln!(out, ",\"name\":\"{}\",\"value\":{}}}", row.name, row.value);
    }
    out
}

/// Encodes a flit-event trace in the Chrome Trace Event Format.
pub fn chrome_trace(events: &[FlitEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };
    // Packet lifetime spans: injection of the head flit to the last
    // ejection seen.
    let mut spans: HashMap<u64, (u64, u64)> = HashMap::new();
    for ev in events {
        if ev.kind == FlitEventKind::Inject {
            spans.entry(ev.packet_id).or_insert((ev.cycle, ev.cycle));
        }
        if ev.kind == FlitEventKind::Eject {
            spans
                .entry(ev.packet_id)
                .and_modify(|s| s.1 = s.1.max(ev.cycle))
                .or_insert((ev.cycle, ev.cycle));
        }
    }
    let mut span_list: Vec<_> = spans.into_iter().collect();
    span_list.sort_unstable();
    for (pid, (start, end)) in span_list {
        for (ph, ts) in [("b", start), ("e", end.max(start + 1))] {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"packet\",\"cat\":\"packet\",\"ph\":\"{ph}\",\
                 \"id\":\"{pid:x}\",\"ts\":{ts},\"pid\":0,\"tid\":0}}"
            );
        }
    }
    for ev in events {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"flit\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\
             \"pid\":{},\"tid\":{},\"args\":{{\"packet\":\"{:x}\",\"flit\":{}}}}}",
            ev.kind.name(),
            ev.cycle,
            ev.router,
            (ev.port as u32) * 256 + ev.vc as u32,
            ev.packet_id,
            ev.flit_index
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Encodes an [`HdrHistogram`](crate::HdrHistogram) as CSV: one row per
/// non-empty bucket with cumulative counts and quantiles, ready for
/// plotting a latency CDF.
pub fn histogram_csv(hist: &crate::HdrHistogram) -> String {
    let mut out = String::from("bucket_lower,bucket_upper,count,cumulative,quantile\n");
    let total = hist.total().max(1) as f64;
    let mut cumulative = 0u64;
    for (lower, upper, count) in hist.iter_buckets() {
        cumulative += count;
        let _ = writeln!(
            out,
            "{lower},{upper},{count},{cumulative},{:.6}",
            cumulative as f64 / total
        );
    }
    out
}

/// One row of a sweep manifest: how a single experiment point was
/// satisfied on the most recent run.
pub struct SweepManifestPoint {
    /// Human-readable point label.
    pub label: String,
    /// Content digest keying the cached result.
    pub digest: String,
    /// How the point was satisfied: `computed`, `cache` (result file
    /// existed) or `journal` (already journaled, not touched at all).
    pub source: &'static str,
    /// Wall-clock cost of satisfying the point, in milliseconds.
    pub wall_ms: u64,
    /// File name of this point's `noc-telemetry/v1` dump (relative to the
    /// sweep's cache directory), when one was recorded for this digest.
    pub telemetry: Option<String>,
}

/// Encodes a sweep-run manifest (schema `noc-sweep-manifest/v1`) as one
/// JSON document: identity (name, sweep schema, spec digest), hit/miss
/// accounting for the run, and one row per point. The hit counts are the
/// machine-checkable record that a resumed or repeated sweep recomputed
/// nothing.
#[allow(clippy::too_many_arguments)]
pub fn sweep_manifest_json(
    name: &str,
    schema: &str,
    spec_digest: &str,
    computed: usize,
    cache_hits: usize,
    journal_skips: usize,
    wall_ms: u64,
    points: &[SweepManifestPoint],
) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("{\"schema\":\"noc-sweep-manifest/v1\"");
    let _ = write!(
        out,
        ",\"name\":\"{}\",\"sweep_schema\":\"{}\",\"spec_digest\":\"{}\"",
        esc(name),
        esc(schema),
        esc(spec_digest)
    );
    let _ = write!(
        out,
        ",\"points\":{},\"computed\":{computed},\"cache_hits\":{cache_hits},\
         \"journal_skips\":{journal_skips},\"wall_ms\":{wall_ms}",
        points.len()
    );
    out.push_str(",\"results\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"digest\":\"{}\",\"source\":\"{}\",\"wall_ms\":{}",
            esc(&p.label),
            esc(&p.digest),
            p.source,
            p.wall_ms
        );
        if let Some(t) = &p.telemetry {
            let _ = write!(out, ",\"telemetry\":\"{}\"", esc(t));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Encodes a percentile table (as produced by
/// [`HdrHistogram::percentile_table`](crate::HdrHistogram::percentile_table))
/// as one JSON object, `{"p50": .., "p99": ..}`, with NaN mapped to
/// `null`. Quantiles are named by their value in basis points of 100
/// (`0.999` → `"p999"`, `1.0` → `"max"`).
pub fn percentile_table_json(table: &[(f64, f64)]) -> String {
    let mut out = String::from("{");
    for (i, (q, v)) in table.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = if *q >= 1.0 {
            "max".to_string()
        } else {
            // 0.5 -> p50, 0.99 -> p99, 0.999 -> p999.
            let pct = q * 100.0;
            if pct.fract().abs() < 1e-9 {
                format!("p{}", pct.round() as u64)
            } else {
                format!("p{}", (q * 1000.0).round() as u64)
            }
        };
        if v.is_finite() {
            let _ = write!(out, "\"{name}\":{v}");
        } else {
            let _ = write!(out, "\"{name}\":null");
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::metrics::StallCounters;

    fn sample_obs() -> Vec<RouterObs> {
        let mut a = RouterObs::new(2, 2);
        a.out_flits = vec![10, 3];
        a.vc[0] = StallCounters {
            active: 5,
            credit_stall: 1,
            vca_stall: 2,
            sa_stall: 3,
            empty: 89,
        };
        let b = RouterObs::new(2, 2);
        vec![a, b]
    }

    #[test]
    fn csv_has_uniform_field_counts() {
        let mut m = MetricsRegistry::new(5, 2);
        m.sample(5, [(3u32, 1u32, 8u64, 2usize), (0, 0, 0, 2)].into_iter());
        let csv = metrics_csv(&sample_obs(), Some(&m));
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header, "record,cycle,router,port,vc,name,value");
        let cols = header.split(',').count();
        let mut n = 0;
        for l in lines {
            assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
            n += 1;
        }
        // 2 routers × (2 ports × 2 vcs × 5 counters + 2 out_flits) + 2
        // gauges × 3 values.
        assert_eq!(n, 2 * (2 * 2 * 5 + 2) + 2 * 3);
        assert!(csv.contains("counter,,0,0,0,credit_stall,1"));
        assert!(csv.contains("gauge,5,0,,,occupancy,3"));
    }

    #[test]
    fn jsonl_rows_are_valid_json() {
        let mut m = MetricsRegistry::new(5, 2);
        m.sample(5, [(3u32, 1u32, 8u64, 2usize), (0, 0, 0, 2)].into_iter());
        let jsonl = metrics_jsonl(&sample_obs(), Some(&m));
        let mut n = 0;
        for line in jsonl.lines() {
            validate_json(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            n += 1;
        }
        assert_eq!(n, 2 * (2 * 2 * 5 + 2) + 2 * 3);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_packet_spans() {
        let mk = |cycle, kind, packet_id| FlitEvent {
            cycle,
            kind,
            router: 1,
            port: 2,
            vc: 1,
            packet_id,
            flit_index: 0,
        };
        let events = vec![
            mk(10, FlitEventKind::Inject, 7),
            mk(11, FlitEventKind::VcaRequest, 7),
            mk(12, FlitEventKind::SwitchTraversal, 7),
            mk(20, FlitEventKind::Eject, 7),
        ];
        let trace = chrome_trace(&events);
        validate_json(&trace).unwrap();
        assert!(trace.contains("\"ph\":\"b\""));
        assert!(trace.contains("\"ph\":\"e\""));
        assert!(trace.contains("\"name\":\"switch_traversal\""));
    }

    #[test]
    fn empty_trace_still_valid() {
        validate_json(&chrome_trace(&[])).unwrap();
    }

    #[test]
    fn histogram_csv_rows_are_cumulative() {
        let mut h = crate::HdrHistogram::new();
        for v in [2u64, 2, 9, 40, 40, 700] {
            h.record(v);
        }
        let csv = histogram_csv(&h);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "bucket_lower,bucket_upper,count,cumulative,quantile"
        );
        let last = lines.last().unwrap();
        assert!(last.ends_with(",6,1.000000"), "last row: {last}");
    }

    #[test]
    fn percentile_table_json_names_and_nulls() {
        let table = [(0.5, 12.0), (0.9, 20.0), (0.999, 31.5), (1.0, f64::NAN)];
        let json = percentile_table_json(&table);
        validate_json(&json).unwrap();
        assert_eq!(json, "{\"p50\":12,\"p90\":20,\"p999\":31.5,\"max\":null}");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "{\"a\":[1,2.5,-3e2,true,false,null,\"x\\n\"]}",
            "  42  ",
            "\"\\u00e9\"",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "{}extra",
            "{'a':1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
