//! Machine-readable exporters: long-format CSV, JSON lines, and the
//! Chrome Trace Event Format.
//!
//! The CSV and JSONL encoders share one long (tidy) schema —
//! `record,cycle,router,port,vc,name,value` — so counters and sampled
//! gauges coexist in a single file that loads directly into pandas or
//! DuckDB. The Chrome encoder emits a JSON object with a `traceEvents`
//! array loadable in `chrome://tracing` or Perfetto: one complete (`"X"`)
//! slice per flit event on a `pid = router`, `tid = port·256 + vc` lane,
//! plus one async `"b"`/`"e"` pair per packet spanning injection to last
//! ejection.

use crate::anatomy::Waterfall;
use crate::event::{FlitEvent, FlitEventKind};
use crate::metrics::{MetricsRegistry, RouterObs};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One row of the long-format export.
struct Row<'a> {
    record: &'a str,
    cycle: Option<u64>,
    router: usize,
    port: Option<usize>,
    vc: Option<usize>,
    name: &'a str,
    value: f64,
}

fn rows<'a>(
    routers: &'a [RouterObs],
    registry: Option<&'a MetricsRegistry>,
) -> impl Iterator<Item = Row<'a>> + 'a {
    let counters = routers.iter().enumerate().flat_map(|(r, obs)| {
        let per_vc = obs.vc.iter().enumerate().flat_map(move |(idx, s)| {
            let (port, vc) = (idx / obs.vcs, idx % obs.vcs);
            [
                ("active", s.active),
                ("credit_stall", s.credit_stall),
                ("vca_stall", s.vca_stall),
                ("sa_stall", s.sa_stall),
                ("empty", s.empty),
            ]
            .into_iter()
            .map(move |(name, v)| Row {
                record: "counter",
                cycle: None,
                router: r,
                port: Some(port),
                vc: Some(vc),
                name,
                value: v as f64,
            })
        });
        let per_port = obs.out_flits.iter().enumerate().map(move |(p, &v)| Row {
            record: "counter",
            cycle: None,
            router: r,
            port: Some(p),
            vc: None,
            name: "out_flits",
            value: v as f64,
        });
        per_vc.chain(per_port)
    });
    let gauges = registry
        .map(|m| m.samples.as_slice())
        .unwrap_or(&[])
        .iter()
        .flat_map(|s| {
            [
                ("occupancy", s.occupancy as f64),
                ("busy_vcs", s.busy_vcs as f64),
                ("utilization", s.utilization),
            ]
            .into_iter()
            .map(|(name, value)| Row {
                record: "gauge",
                cycle: Some(s.cycle),
                router: s.router as usize,
                port: None,
                vc: None,
                name,
                value,
            })
        });
    counters.chain(gauges)
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Encodes the metrics as long-format CSV with a header row.
pub fn metrics_csv(routers: &[RouterObs], registry: Option<&MetricsRegistry>) -> String {
    let mut out = String::from("record,cycle,router,port,vc,name,value\n");
    for row in rows(routers, registry) {
        let opt = |o: Option<u64>| o.map(|v| v.to_string()).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            row.record,
            opt(row.cycle),
            row.router,
            opt(row.port.map(|p| p as u64)),
            opt(row.vc.map(|v| v as u64)),
            row.name,
            fmt_value(row.value)
        );
    }
    out
}

/// Encodes the metrics as JSON lines (one object per row of the same long
/// schema; absent coordinates are omitted).
pub fn metrics_jsonl(routers: &[RouterObs], registry: Option<&MetricsRegistry>) -> String {
    let mut out = String::new();
    for row in rows(routers, registry) {
        let _ = write!(out, "{{\"record\":\"{}\"", row.record);
        if let Some(c) = row.cycle {
            let _ = write!(out, ",\"cycle\":{c}");
        }
        let _ = write!(out, ",\"router\":{}", row.router);
        if let Some(p) = row.port {
            let _ = write!(out, ",\"port\":{p}");
        }
        if let Some(v) = row.vc {
            let _ = write!(out, ",\"vc\":{v}");
        }
        let _ = writeln!(out, ",\"name\":\"{}\",\"value\":{}}}", row.name, row.value);
    }
    out
}

/// Encodes a flit-event trace in the Chrome Trace Event Format.
pub fn chrome_trace(events: &[FlitEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };
    // Packet lifetime spans: injection of the head flit to the last
    // ejection seen.
    let mut spans: HashMap<u64, (u64, u64)> = HashMap::new();
    for ev in events {
        if ev.kind == FlitEventKind::Inject {
            spans.entry(ev.packet_id).or_insert((ev.cycle, ev.cycle));
        }
        if ev.kind == FlitEventKind::Eject {
            spans
                .entry(ev.packet_id)
                .and_modify(|s| s.1 = s.1.max(ev.cycle))
                .or_insert((ev.cycle, ev.cycle));
        }
    }
    let mut span_list: Vec<_> = spans.into_iter().collect();
    span_list.sort_unstable();
    for (pid, (start, end)) in span_list {
        for (ph, ts) in [("b", start), ("e", end.max(start + 1))] {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"packet\",\"cat\":\"packet\",\"ph\":\"{ph}\",\
                 \"id\":\"{pid:x}\",\"ts\":{ts},\"pid\":0,\"tid\":0}}"
            );
        }
    }
    for ev in events {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"flit\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\
             \"pid\":{},\"tid\":{},\"args\":{{\"packet\":\"{:x}\",\"flit\":{}}}}}",
            ev.kind.name(),
            ev.cycle,
            ev.router,
            (ev.port as u32) * 256 + ev.vc as u32,
            ev.packet_id,
            ev.flit_index
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Encodes slow-packet waterfalls as Chrome Trace Event Format stage-wait
/// spans, so a `noc explain` top-K packet opens directly in
/// `chrome://tracing` / Perfetto.
///
/// Each packet gets an async `"b"`/`"e"` span (birth → ejection) plus its
/// source-queue and serialization waits on a per-packet `pid = 0` lane;
/// each hop contributes consecutive `"X"` slices — `vca`, `sa`, `credit`,
/// `active` — on the router's `pid = router`, `tid = port·256 + vc` lane,
/// starting at the head flit's arrival cycle (the four slices tile the
/// hop's span exactly, mirroring the ledger's reconciliation invariant).
pub fn anatomy_chrome_trace(slow: &[&Waterfall]) -> String {
    fn sep(out: &mut String, first: &mut bool) {
        if !std::mem::take(first) {
            out.push(',');
        }
        out.push('\n');
    }
    #[allow(clippy::too_many_arguments)]
    fn slice(
        out: &mut String,
        first: &mut bool,
        name: &str,
        ts: u64,
        dur: u64,
        pid: u32,
        tid: u32,
        packet: u64,
    ) {
        if dur == 0 {
            return;
        }
        sep(out, first);
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"cat\":\"anatomy\",\"ph\":\"X\",\"ts\":{ts},\
             \"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"packet\":\"{packet:x}\"}}}}"
        );
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for (lane, w) in slow.iter().enumerate() {
        let p = &w.packet;
        for (ph, ts) in [("b", p.birth), ("e", p.eject.max(p.birth + 1))] {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"packet\",\"cat\":\"anatomy\",\"ph\":\"{ph}\",\
                 \"id\":\"{:x}\",\"ts\":{ts},\"pid\":0,\"tid\":{lane}}}",
                p.packet_id
            );
        }
        let lane = lane as u32;
        let f = &mut first;
        slice(
            &mut out,
            f,
            "src_queue",
            p.birth,
            p.stages[0],
            0,
            lane,
            p.packet_id,
        );
        slice(
            &mut out,
            f,
            "serialization",
            p.eject - p.stages[6],
            p.stages[6],
            0,
            lane,
            p.packet_id,
        );
        for h in &w.hops {
            let tid = (h.in_port as u32) * 256 + h.in_vc as u32;
            let mut ts = h.arrive;
            for (name, dur) in [
                ("vca", h.vca),
                ("sa", h.sa),
                ("credit", h.credit),
                ("active", h.active),
            ] {
                slice(&mut out, f, name, ts, dur, h.router, tid, h.packet_id);
                ts += dur;
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Encodes an [`HdrHistogram`](crate::HdrHistogram) as CSV: one row per
/// non-empty bucket with cumulative counts and quantiles, ready for
/// plotting a latency CDF.
pub fn histogram_csv(hist: &crate::HdrHistogram) -> String {
    let mut out = String::from("bucket_lower,bucket_upper,count,cumulative,quantile\n");
    let total = hist.total().max(1) as f64;
    let mut cumulative = 0u64;
    for (lower, upper, count) in hist.iter_buckets() {
        cumulative += count;
        let _ = writeln!(
            out,
            "{lower},{upper},{count},{cumulative},{:.6}",
            cumulative as f64 / total
        );
    }
    out
}

/// One row of a sweep manifest: how a single experiment point was
/// satisfied on the most recent run.
pub struct SweepManifestPoint {
    /// Human-readable point label.
    pub label: String,
    /// Content digest keying the cached result.
    pub digest: String,
    /// How the point was satisfied: `computed`, `cache` (result file
    /// existed) or `journal` (already journaled, not touched at all).
    pub source: &'static str,
    /// Wall-clock cost of satisfying the point, in milliseconds.
    pub wall_ms: u64,
    /// File name of this point's `noc-telemetry/v1` dump (relative to the
    /// sweep's cache directory), when one was recorded for this digest.
    pub telemetry: Option<String>,
    /// File name of this point's `noc-anatomy/v1` dump (relative to the
    /// sweep's cache directory), when one was recorded for this digest.
    pub anatomy: Option<String>,
}

/// Encodes a sweep-run manifest (schema `noc-sweep-manifest/v1`) as one
/// JSON document: identity (name, sweep schema, spec digest), hit/miss
/// accounting for the run, and one row per point. The hit counts are the
/// machine-checkable record that a resumed or repeated sweep recomputed
/// nothing.
#[allow(clippy::too_many_arguments)]
pub fn sweep_manifest_json(
    name: &str,
    schema: &str,
    spec_digest: &str,
    computed: usize,
    cache_hits: usize,
    journal_skips: usize,
    wall_ms: u64,
    points: &[SweepManifestPoint],
) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("{\"schema\":\"noc-sweep-manifest/v1\"");
    let _ = write!(
        out,
        ",\"name\":\"{}\",\"sweep_schema\":\"{}\",\"spec_digest\":\"{}\"",
        esc(name),
        esc(schema),
        esc(spec_digest)
    );
    let _ = write!(
        out,
        ",\"points\":{},\"computed\":{computed},\"cache_hits\":{cache_hits},\
         \"journal_skips\":{journal_skips},\"wall_ms\":{wall_ms}",
        points.len()
    );
    out.push_str(",\"results\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"digest\":\"{}\",\"source\":\"{}\",\"wall_ms\":{}",
            esc(&p.label),
            esc(&p.digest),
            p.source,
            p.wall_ms
        );
        if let Some(t) = &p.telemetry {
            let _ = write!(out, ",\"telemetry\":\"{}\"", esc(t));
        }
        if let Some(a) = &p.anatomy {
            let _ = write!(out, ",\"anatomy\":\"{}\"", esc(a));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Encodes a percentile table (as produced by
/// [`HdrHistogram::percentile_table`](crate::HdrHistogram::percentile_table))
/// as one JSON object, `{"p50": .., "p99": ..}`, with NaN mapped to
/// `null`. Quantiles are named by their value in basis points of 100
/// (`0.999` → `"p999"`, `1.0` → `"max"`).
pub fn percentile_table_json(table: &[(f64, f64)]) -> String {
    let mut out = String::from("{");
    for (i, (q, v)) in table.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = if *q >= 1.0 {
            "max".to_string()
        } else {
            // 0.5 -> p50, 0.99 -> p99, 0.999 -> p999.
            let pct = q * 100.0;
            if pct.fract().abs() < 1e-9 {
                format!("p{}", pct.round() as u64)
            } else {
                format!("p{}", (q * 1000.0).round() as u64)
            }
        };
        if v.is_finite() {
            let _ = write!(out, "\"{name}\":{v}");
        } else {
            let _ = write!(out, "\"{name}\":null");
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::metrics::StallCounters;

    fn sample_obs() -> Vec<RouterObs> {
        let mut a = RouterObs::new(2, 2);
        a.out_flits = vec![10, 3];
        a.vc[0] = StallCounters {
            active: 5,
            credit_stall: 1,
            vca_stall: 2,
            sa_stall: 3,
            empty: 89,
        };
        let b = RouterObs::new(2, 2);
        vec![a, b]
    }

    #[test]
    fn csv_has_uniform_field_counts() {
        let mut m = MetricsRegistry::new(5, 2);
        m.sample(5, [(3u32, 1u32, 8u64, 2usize), (0, 0, 0, 2)].into_iter());
        let csv = metrics_csv(&sample_obs(), Some(&m));
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header, "record,cycle,router,port,vc,name,value");
        let cols = header.split(',').count();
        let mut n = 0;
        for l in lines {
            assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
            n += 1;
        }
        // 2 routers × (2 ports × 2 vcs × 5 counters + 2 out_flits) + 2
        // gauges × 3 values.
        assert_eq!(n, 2 * (2 * 2 * 5 + 2) + 2 * 3);
        assert!(csv.contains("counter,,0,0,0,credit_stall,1"));
        assert!(csv.contains("gauge,5,0,,,occupancy,3"));
    }

    #[test]
    fn jsonl_rows_are_valid_json() {
        let mut m = MetricsRegistry::new(5, 2);
        m.sample(5, [(3u32, 1u32, 8u64, 2usize), (0, 0, 0, 2)].into_iter());
        let jsonl = metrics_jsonl(&sample_obs(), Some(&m));
        let mut n = 0;
        for line in jsonl.lines() {
            validate_json(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            n += 1;
        }
        assert_eq!(n, 2 * (2 * 2 * 5 + 2) + 2 * 3);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_packet_spans() {
        let mk = |cycle, kind, packet_id| FlitEvent {
            cycle,
            kind,
            router: 1,
            port: 2,
            vc: 1,
            packet_id,
            flit_index: 0,
        };
        let events = vec![
            mk(10, FlitEventKind::Inject, 7),
            mk(11, FlitEventKind::VcaRequest, 7),
            mk(12, FlitEventKind::SwitchTraversal, 7),
            mk(20, FlitEventKind::Eject, 7),
        ];
        let trace = chrome_trace(&events);
        validate_json(&trace).unwrap();
        assert!(trace.contains("\"ph\":\"b\""));
        assert!(trace.contains("\"ph\":\"e\""));
        assert!(trace.contains("\"name\":\"switch_traversal\""));
    }

    #[test]
    fn empty_trace_still_valid() {
        validate_json(&chrome_trace(&[])).unwrap();
    }

    #[test]
    fn anatomy_trace_tiles_each_hop_exactly() {
        use crate::anatomy::{HopRecord, PacketAnatomy, Waterfall};
        let w = Waterfall {
            packet: PacketAnatomy {
                packet_id: 0x7,
                class: 0,
                birth: 0,
                eject: 12,
                hops: 1,
                stages: [2, 1, 1, 0, 3, 2, 3],
            },
            hops: vec![HopRecord {
                packet_id: 0x7,
                router: 5,
                in_port: 2,
                in_vc: 1,
                arrive: 3,
                depart: 7,
                vca: 1,
                sa: 1,
                credit: 0,
                active: 3,
            }],
        };
        let trace = anatomy_chrome_trace(&[&w]);
        validate_json(&trace).unwrap();
        // Stage slices start at the arrival cycle and tile the span:
        // vca [3,4), sa [4,5), active [5,8) — credit is zero-width and
        // omitted.
        assert!(trace.contains("\"name\":\"vca\",\"cat\":\"anatomy\",\"ph\":\"X\",\"ts\":3"));
        assert!(trace.contains("\"name\":\"sa\",\"cat\":\"anatomy\",\"ph\":\"X\",\"ts\":4"));
        assert!(trace.contains("\"name\":\"active\",\"cat\":\"anatomy\",\"ph\":\"X\",\"ts\":5"));
        assert!(!trace.contains("\"name\":\"credit\""));
        assert!(trace.contains("\"name\":\"src_queue\""));
        assert!(trace.contains("\"name\":\"serialization\""));
        assert!(trace.contains("\"ph\":\"b\""));
        assert!(trace.contains("\"tid\":513"));
        validate_json(&anatomy_chrome_trace(&[])).unwrap();
    }

    #[test]
    fn histogram_csv_rows_are_cumulative() {
        let mut h = crate::HdrHistogram::new();
        for v in [2u64, 2, 9, 40, 40, 700] {
            h.record(v);
        }
        let csv = histogram_csv(&h);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "bucket_lower,bucket_upper,count,cumulative,quantile"
        );
        let last = lines.last().unwrap();
        assert!(last.ends_with(",6,1.000000"), "last row: {last}");
    }

    #[test]
    fn percentile_table_json_names_and_nulls() {
        let table = [(0.5, 12.0), (0.9, 20.0), (0.999, 31.5), (1.0, f64::NAN)];
        let json = percentile_table_json(&table);
        validate_json(&json).unwrap();
        assert_eq!(json, "{\"p50\":12,\"p90\":20,\"p999\":31.5,\"max\":null}");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "{\"a\":[1,2.5,-3e2,true,false,null,\"x\\n\"]}",
            "  42  ",
            "\"\\u00e9\"",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "{}extra",
            "{'a':1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
