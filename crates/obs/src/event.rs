//! Flit-lifecycle trace events and sinks.

/// What happened to a flit (or its packet) at one pipeline step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlitEventKind {
    /// A flit entered the network at a terminal's injection link.
    Inject,
    /// Lookahead routing computed the next-hop decision for a head flit.
    Route,
    /// A head flit requested an output VC this cycle.
    VcaRequest,
    /// VC allocation granted an output VC to a head flit.
    VcaGrant,
    /// An input VC requested the switch non-speculatively.
    SaRequest,
    /// An input VC requested the switch speculatively.
    SaSpecRequest,
    /// The switch allocator granted a non-speculative request.
    SaGrant,
    /// The switch allocator granted a speculative request that survived
    /// masking and validation.
    SaSpecGrant,
    /// A speculative grant was discarded by the masking stage.
    SaSpecMasked,
    /// A speculative grant survived masking but failed validation (lost VC
    /// allocation, or no downstream credit).
    SaSpecInvalid,
    /// A flit traversed the switch and entered an output link.
    SwitchTraversal,
    /// A flit left the network at its destination terminal.
    Eject,
}

impl FlitEventKind {
    /// Stable lower-snake name, used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            FlitEventKind::Inject => "inject",
            FlitEventKind::Route => "route",
            FlitEventKind::VcaRequest => "vca_request",
            FlitEventKind::VcaGrant => "vca_grant",
            FlitEventKind::SaRequest => "sa_request",
            FlitEventKind::SaSpecRequest => "sa_spec_request",
            FlitEventKind::SaGrant => "sa_grant",
            FlitEventKind::SaSpecGrant => "sa_spec_grant",
            FlitEventKind::SaSpecMasked => "sa_spec_masked",
            FlitEventKind::SaSpecInvalid => "sa_spec_invalid",
            FlitEventKind::SwitchTraversal => "switch_traversal",
            FlitEventKind::Eject => "eject",
        }
    }
}

/// One trace record. `port`/`vc` are input-side coordinates except for
/// [`FlitEventKind::SwitchTraversal`] (output port/VC) and
/// [`FlitEventKind::Route`] (the computed next-hop output port).
#[derive(Clone, Copy, Debug)]
pub struct FlitEvent {
    /// Simulation cycle.
    pub cycle: u64,
    /// Event kind.
    pub kind: FlitEventKind,
    /// Router where the event happened (the attached router for
    /// inject/eject, the next-hop router for route).
    pub router: u32,
    /// Port coordinate (see type-level docs).
    pub port: u16,
    /// VC coordinate.
    pub vc: u16,
    /// Packet id the flit belongs to.
    pub packet_id: u64,
    /// Flit index within the packet (0 = head); events that concern the
    /// whole packet (VCA, SA requests) use the head flit's index.
    pub flit_index: u32,
}

/// Receiver of flit-lifecycle events.
///
/// Simulator instrumentation sites guard every event construction with
/// `S::ACTIVE`, so a sink with `ACTIVE = false` compiles to straight-line
/// code identical to an uninstrumented build.
pub trait TraceSink {
    /// Whether this sink wants events at all. Sites skip event
    /// construction entirely when this is `false`.
    const ACTIVE: bool;

    /// Records one event.
    fn record(&mut self, ev: FlitEvent);
}

/// The zero-cost disabled sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopSink;

impl TraceSink for NopSink {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _: FlitEvent) {}
}

/// Buffers events in memory (feeds [`crate::chrome_trace`]), bounded:
/// once `capacity` events are stored, further events are counted in
/// [`VecSink::dropped`] instead of growing the buffer, so a long traced
/// run cannot exhaust memory.
#[derive(Clone, Debug)]
pub struct VecSink {
    /// Recorded events, in emission order (non-decreasing cycle).
    pub events: Vec<FlitEvent>,
    /// Events discarded after the buffer reached capacity.
    pub dropped: u64,
    capacity: usize,
}

impl Default for VecSink {
    fn default() -> Self {
        VecSink::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl VecSink {
    /// Default event cap (~4.2M events, a few hundred MB at most): ample
    /// for CLI-sized traces, bounded for everything else.
    pub const DEFAULT_CAPACITY: usize = 1 << 22;

    /// A sink storing at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> VecSink {
        VecSink {
            events: Vec::new(),
            dropped: 0,
            capacity,
        }
    }

    /// The event cap this sink was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for VecSink {
    const ACTIVE: bool = true;

    #[inline]
    fn record(&mut self, ev: FlitEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// Counts events per kind without storing them (cheap sanity checks and
/// overhead measurements).
#[derive(Clone, Debug, Default)]
pub struct CountingSink {
    /// Event counts indexed by `FlitEventKind as usize`.
    pub counts: [u64; 12],
}

impl CountingSink {
    /// Events seen of one kind.
    pub fn count(&self, kind: FlitEventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl TraceSink for CountingSink {
    const ACTIVE: bool = true;

    #[inline]
    fn record(&mut self, ev: FlitEvent) {
        self.counts[ev.kind as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: FlitEventKind) -> FlitEvent {
        FlitEvent {
            cycle: 7,
            kind,
            router: 1,
            port: 2,
            vc: 0,
            packet_id: 99,
            flit_index: 0,
        }
    }

    #[test]
    fn vec_sink_stores_in_order() {
        let mut s = VecSink::default();
        s.record(ev(FlitEventKind::Inject));
        s.record(ev(FlitEventKind::Eject));
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].kind, FlitEventKind::Inject);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.capacity(), VecSink::DEFAULT_CAPACITY);
    }

    #[test]
    fn vec_sink_caps_memory_and_counts_drops() {
        let mut s = VecSink::with_capacity(2);
        s.record(ev(FlitEventKind::Inject));
        s.record(ev(FlitEventKind::Route));
        s.record(ev(FlitEventKind::SwitchTraversal));
        s.record(ev(FlitEventKind::Eject));
        // The first `capacity` events survive, the overflow is counted.
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[1].kind, FlitEventKind::Route);
        assert_eq!(s.dropped, 2);
    }

    #[test]
    fn counting_sink_tallies_by_kind() {
        let mut s = CountingSink::default();
        s.record(ev(FlitEventKind::SaGrant));
        s.record(ev(FlitEventKind::SaGrant));
        s.record(ev(FlitEventKind::Eject));
        assert_eq!(s.count(FlitEventKind::SaGrant), 2);
        assert_eq!(s.count(FlitEventKind::Eject), 1);
        assert_eq!(s.total(), 3);
    }

    // Compile-time: the no-op sink must stay inactive (so trace sites fold
    // away) and the recording sinks active.
    const _: () = assert!(!NopSink::ACTIVE);
    const _: () = assert!(VecSink::ACTIVE);
    const _: () = assert!(CountingSink::ACTIVE);

    #[test]
    fn kind_names_are_unique() {
        let kinds = [
            FlitEventKind::Inject,
            FlitEventKind::Route,
            FlitEventKind::VcaRequest,
            FlitEventKind::VcaGrant,
            FlitEventKind::SaRequest,
            FlitEventKind::SaSpecRequest,
            FlitEventKind::SaGrant,
            FlitEventKind::SaSpecGrant,
            FlitEventKind::SaSpecMasked,
            FlitEventKind::SaSpecInvalid,
            FlitEventKind::SwitchTraversal,
            FlitEventKind::Eject,
        ];
        let names: std::collections::HashSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
