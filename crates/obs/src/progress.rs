//! Progress and ETA reporting for long experiment sweeps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Thread-safe progress meter: worker threads mark completions, anyone
/// renders a one-line status with throughput and a remaining-time
/// estimate. The ETA is the simple completed-rate extrapolation — good
/// enough for sweeps whose points have comparable cost — and is omitted
/// until at least one point has finished.
pub struct ProgressMeter {
    total: usize,
    done: AtomicUsize,
    start: Instant,
}

impl ProgressMeter {
    /// A meter over `total` work items, starting now.
    pub fn new(total: usize) -> Self {
        ProgressMeter {
            total,
            done: AtomicUsize::new(0),
            start: Instant::now(),
        }
    }

    /// Marks one item finished and returns the new completion count.
    pub fn tick(&self) -> usize {
        self.done.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Items completed so far.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed).min(self.total)
    }

    /// Total items.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Seconds elapsed since construction.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Estimated seconds remaining (`None` before the first completion or
    /// after the last).
    pub fn eta_secs(&self) -> Option<f64> {
        let done = self.done();
        if done == 0 || done >= self.total {
            return None;
        }
        let per_item = self.elapsed_secs() / done as f64;
        Some(per_item * (self.total - done) as f64)
    }

    /// One status line, e.g. `42/180 (23%) elapsed 12.3s eta 40s`.
    pub fn line(&self) -> String {
        let done = self.done();
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * done as f64 / self.total as f64
        };
        let mut s = format!(
            "{done}/{} ({pct:.0}%) elapsed {:.1}s",
            self.total,
            self.elapsed_secs()
        );
        if let Some(eta) = self.eta_secs() {
            s.push_str(&format!(" eta {eta:.0}s"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_percentages() {
        let m = ProgressMeter::new(4);
        assert_eq!(m.done(), 0);
        assert!(m.eta_secs().is_none(), "no ETA before the first item");
        assert_eq!(m.tick(), 1);
        assert_eq!(m.tick(), 2);
        assert_eq!(m.done(), 2);
        let line = m.line();
        assert!(line.starts_with("2/4 (50%)"), "{line}");
        // Mid-run there is an estimate; after the last item there is none.
        assert!(m.eta_secs().is_some());
        m.tick();
        m.tick();
        assert!(m.eta_secs().is_none());
        assert!(m.line().starts_with("4/4 (100%)"));
    }

    #[test]
    fn empty_meter_reports_complete() {
        let m = ProgressMeter::new(0);
        assert!(m.line().contains("(100%)"));
    }
}
