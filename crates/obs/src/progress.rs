//! Progress and ETA reporting for long experiment sweeps.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Completions the sliding rate window looks back over.
const RATE_WINDOW: usize = 10;

/// Thread-safe progress meter: worker threads mark completions, anyone
/// renders a one-line status with throughput and a remaining-time
/// estimate. The ETA extrapolates from the *recent* completion rate (the
/// last [`RATE_WINDOW`] completions), not the whole-run average — a slow
/// warmup point (a cold cache, a saturated first sweep row) would
/// otherwise poison the estimate for the rest of the run. The ETA is
/// omitted until at least one point has finished.
pub struct ProgressMeter {
    total: usize,
    done: AtomicUsize,
    start: Instant,
    /// Elapsed-seconds stamps of the most recent completions.
    recent: Mutex<VecDeque<f64>>,
}

/// Items/sec from the sliding window of completion stamps (seconds,
/// oldest first), falling back to the whole-run average when the window
/// holds fewer than two points or spans no measurable time.
fn sliding_rate(recent: &[f64], done: usize, elapsed: f64) -> f64 {
    if let (Some(first), Some(last)) = (recent.first(), recent.last()) {
        let span = last - first;
        if recent.len() >= 2 && span > 0.0 {
            return (recent.len() - 1) as f64 / span;
        }
    }
    if elapsed > 0.0 {
        done as f64 / elapsed
    } else {
        f64::INFINITY
    }
}

impl ProgressMeter {
    /// A meter over `total` work items, starting now.
    pub fn new(total: usize) -> Self {
        ProgressMeter {
            total,
            done: AtomicUsize::new(0),
            start: Instant::now(),
            recent: Mutex::new(VecDeque::with_capacity(RATE_WINDOW)),
        }
    }

    /// Marks one item finished and returns the new completion count.
    pub fn tick(&self) -> usize {
        let stamp = self.elapsed_secs();
        let mut recent = self.recent.lock().unwrap_or_else(|e| e.into_inner());
        if recent.len() == RATE_WINDOW {
            recent.pop_front();
        }
        recent.push_back(stamp);
        drop(recent);
        // RELAXED: monotonic progress counter read only for display; no
        // other memory is published through it.
        self.done.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Items completed so far.
    pub fn done(&self) -> usize {
        // RELAXED: display-only read of the monotonic counter above.
        self.done.load(Ordering::Relaxed).min(self.total)
    }

    /// Total items.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Seconds elapsed since construction.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Recent completion rate in items/sec (whole-run average until two
    /// completions land in the window); NaN before the first completion.
    pub fn rate_per_sec(&self) -> f64 {
        let done = self.done();
        if done == 0 {
            return f64::NAN;
        }
        let recent = self.recent.lock().unwrap_or_else(|e| e.into_inner());
        let window: Vec<f64> = recent.iter().copied().collect();
        drop(recent);
        sliding_rate(&window, done, self.elapsed_secs())
    }

    /// Estimated seconds remaining, from the sliding-window rate (`None`
    /// before the first completion or after the last).
    pub fn eta_secs(&self) -> Option<f64> {
        let done = self.done();
        if done == 0 || done >= self.total {
            return None;
        }
        let rate = self.rate_per_sec();
        if rate.is_nan() {
            return None;
        }
        Some((self.total - done) as f64 / rate)
    }

    /// One status line, e.g. `42/180 (23%) elapsed 12.3s 3.4/s eta 40s`.
    pub fn line(&self) -> String {
        let done = self.done();
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * done as f64 / self.total as f64
        };
        let mut s = format!(
            "{done}/{} ({pct:.0}%) elapsed {:.1}s",
            self.total,
            self.elapsed_secs()
        );
        let rate = self.rate_per_sec();
        if rate.is_finite() {
            s.push_str(&format!(" {rate:.1}/s"));
        }
        if let Some(eta) = self.eta_secs() {
            if eta.is_finite() {
                s.push_str(&format!(" eta {eta:.0}s"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_percentages() {
        let m = ProgressMeter::new(4);
        assert_eq!(m.done(), 0);
        assert!(m.eta_secs().is_none(), "no ETA before the first item");
        assert_eq!(m.tick(), 1);
        assert_eq!(m.tick(), 2);
        assert_eq!(m.done(), 2);
        let line = m.line();
        assert!(line.starts_with("2/4 (50%)"), "{line}");
        // Mid-run there is an estimate; after the last item there is none.
        assert!(m.eta_secs().is_some());
        m.tick();
        m.tick();
        assert!(m.eta_secs().is_none());
        assert!(m.line().starts_with("4/4 (100%)"));
    }

    #[test]
    fn empty_meter_reports_complete() {
        let m = ProgressMeter::new(0);
        assert!(m.line().contains("(100%)"));
    }

    #[test]
    fn sliding_rate_ignores_slow_warmup() {
        // One pathological first point (100s), then ten points at 10/s.
        // The whole-run average (11 done in 101s ≈ 0.11/s) would estimate
        // ~900s for the remaining 100 points; the windowed rate knows the
        // steady state is 10/s and estimates ~10s.
        let mut stamps: Vec<f64> = vec![100.0];
        stamps.extend((1..=10).map(|i| 100.0 + i as f64 * 0.1));
        let window = &stamps[stamps.len() - RATE_WINDOW..];
        let rate = sliding_rate(window, stamps.len(), 101.0);
        assert!((rate - 10.0).abs() < 1e-9, "rate {rate}");
        // Regression guard against the old behaviour: the whole-run
        // average is an order of magnitude off.
        let whole_run = stamps.len() as f64 / 101.0;
        assert!(rate > 50.0 * whole_run);
    }

    #[test]
    fn sliding_rate_falls_back_to_whole_run_average() {
        // A single completion (or a zero-span window) carries no rate
        // information; fall back to done/elapsed.
        assert_eq!(sliding_rate(&[5.0], 1, 10.0), 0.1);
        assert_eq!(sliding_rate(&[5.0, 5.0], 2, 10.0), 0.2);
        assert_eq!(sliding_rate(&[], 0, 0.0), f64::INFINITY);
    }

    #[test]
    fn line_includes_items_per_sec() {
        let m = ProgressMeter::new(3);
        m.tick();
        let line = m.line();
        assert!(line.contains("/s"), "{line}");
    }
}
