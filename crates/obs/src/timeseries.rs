//! Windowed time series and the bounded-memory flight recorder.
//!
//! The simulator snapshots per-router counters every `window` cycles into
//! a [`WindowSnapshot`]; a [`FlightRecorder`] keeps the last `capacity`
//! snapshots in a ring buffer (for post-mortem dumps) plus a compact
//! whole-run summary series (one scalar per window, for the `telemetry`
//! block of a run result). The recorder is engine-agnostic: it consumes
//! plain cumulative counters keyed by cycle number, so any cycle-exact
//! engine produces byte-identical telemetry.
//!
//! The stall-watchdog signal also lives here: the recorder tracks how many
//! *consecutive* windows saw zero flit motion while flits were in flight —
//! the dynamic signature of a deadlock (or a total livelock) — and the run
//! driver trips on a threshold instead of spinning forever.

use std::collections::VecDeque;

/// Cumulative per-router counters sampled at a window boundary. The
/// recorder differences successive samples itself; producers only ever
/// report monotone totals (plus the two point-in-time gauges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Flits sent through the crossbar (switch traversals), cumulative.
    pub out_flits: u64,
    /// Buffered flits right now (gauge, not differenced).
    pub occupancy: u32,
    /// Input VCs holding at least one flit right now (gauge).
    pub busy_vcs: u32,
    /// Input-VC cycles that moved or won allocation, cumulative.
    pub active: u64,
    /// Input-VC cycles stalled on downstream credits, cumulative.
    pub credit_stall: u64,
    /// Input-VC cycles stalled in VC allocation, cumulative.
    pub vca_stall: u64,
    /// Input-VC cycles stalled in switch allocation, cumulative.
    pub sa_stall: u64,
    /// Input-VC cycles with an empty buffer, cumulative.
    pub empty: u64,
    /// Switch-allocator grants on matching-sample cycles, cumulative.
    pub match_granted: u64,
    /// Exact maximum-matching size on the same request matrices, cumulative.
    pub match_max: u64,
}

impl RouterCounters {
    /// Per-window view: counters differenced against `prev`, gauges taken
    /// from the current sample.
    fn delta(cur: &RouterCounters, prev: &RouterCounters) -> RouterCounters {
        RouterCounters {
            out_flits: cur.out_flits - prev.out_flits,
            occupancy: cur.occupancy,
            busy_vcs: cur.busy_vcs,
            active: cur.active - prev.active,
            credit_stall: cur.credit_stall - prev.credit_stall,
            vca_stall: cur.vca_stall - prev.vca_stall,
            sa_stall: cur.sa_stall - prev.sa_stall,
            empty: cur.empty - prev.empty,
            match_granted: cur.match_granted - prev.match_granted,
            match_max: cur.match_max - prev.match_max,
        }
    }
}

/// One window of telemetry: network-level flit motion plus per-router
/// windowed counters, in router-id order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// 1-based window index; window `k` covers cycles `[(k-1)·W, k·W)`.
    pub window: u64,
    /// Cycles completed when the snapshot was taken (`k·W`).
    pub cycle: u64,
    /// Flits injected by terminals during this window.
    pub injected: u64,
    /// Flits ejected to terminals during this window.
    pub ejected: u64,
    /// Flits in flight at the end of the window (injected minus ejected,
    /// cumulative).
    pub in_flight: u64,
    /// Per-router windowed counters, indexed by router id.
    pub routers: Vec<RouterCounters>,
}

impl WindowSnapshot {
    /// Total switch traversals across all routers this window.
    pub fn flits(&self) -> u64 {
        self.routers.iter().map(|r| r.out_flits).sum()
    }

    /// Total switch-allocator grants on sampled cycles this window.
    pub fn match_granted(&self) -> u64 {
        self.routers.iter().map(|r| r.match_granted).sum()
    }

    /// Total exact-maximum-matching size on the same sampled cycles.
    pub fn match_max(&self) -> u64 {
        self.routers.iter().map(|r| r.match_max).sum()
    }

    /// Matching efficiency this window: granted ports over the exact
    /// maximum matching, summed over every sampled request matrix. NaN if
    /// no matching sample fell into this window (or no router had
    /// requests on the sample cycles).
    pub fn efficiency(&self) -> f64 {
        let max = self.match_max();
        if max == 0 {
            f64::NAN
        } else {
            self.match_granted() as f64 / max as f64
        }
    }

    /// Total buffered flits across the network at the end of the window.
    pub fn occupancy(&self) -> u64 {
        self.routers.iter().map(|r| r.occupancy as u64).sum()
    }

    /// True when nothing moved in this window while flits were in flight —
    /// the watchdog's per-window deadlock signal.
    pub fn motionless(&self) -> bool {
        self.flits() == 0 && self.injected == 0 && self.ejected == 0 && self.in_flight > 0
    }
}

/// Fixed-capacity flight recorder: keeps the most recent window snapshots
/// for post-mortem dumps, a compact summary series for the whole run, and
/// the consecutive-stalled-window count for the watchdog.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    window: u64,
    capacity: usize,
    ring: VecDeque<WindowSnapshot>,
    prev: Vec<RouterCounters>,
    prev_injected: u64,
    prev_ejected: u64,
    windows: u64,
    stalled: u64,
    max_stalled: u64,
    series_efficiency: Vec<f64>,
    series_flits: Vec<u64>,
    series_in_flight: Vec<u64>,
}

impl FlightRecorder {
    /// Creates a recorder snapshotting every `window` cycles and retaining
    /// the last `capacity` snapshots.
    pub fn new(window: u64, capacity: usize) -> FlightRecorder {
        assert!(window > 0, "telemetry window must be positive");
        assert!(capacity > 0, "flight recorder needs at least one slot");
        FlightRecorder {
            window,
            capacity,
            ring: VecDeque::with_capacity(capacity),
            prev: Vec::new(),
            prev_injected: 0,
            prev_ejected: 0,
            windows: 0,
            stalled: 0,
            max_stalled: 0,
            series_efficiency: Vec::new(),
            series_flits: Vec::new(),
            series_in_flight: Vec::new(),
        }
    }

    /// Window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// True when the cycle that just executed (`now`) closes a window.
    /// Keyed purely on the cycle number, so every cycle-exact engine
    /// snapshots at identical points.
    pub fn due(&self, now: u64) -> bool {
        (now + 1).is_multiple_of(self.window)
    }

    /// Closes a window: `injected`/`ejected` are network-cumulative flit
    /// counts, `counters` yields each router's cumulative counters in
    /// router-id order.
    pub fn record(
        &mut self,
        now: u64,
        injected: u64,
        ejected: u64,
        counters: impl Iterator<Item = RouterCounters>,
    ) {
        let mut routers = Vec::with_capacity(self.prev.len());
        for (idx, cur) in counters.enumerate() {
            let prev = self.prev.get(idx).copied().unwrap_or_default();
            routers.push(RouterCounters::delta(&cur, &prev));
            if idx < self.prev.len() {
                self.prev[idx] = cur;
            } else {
                self.prev.push(cur);
            }
        }
        let snap = WindowSnapshot {
            window: self.windows + 1,
            cycle: now + 1,
            injected: injected - self.prev_injected,
            ejected: ejected - self.prev_ejected,
            in_flight: injected - ejected,
            routers,
        };
        self.prev_injected = injected;
        self.prev_ejected = ejected;
        self.windows += 1;
        if snap.motionless() {
            self.stalled += 1;
            self.max_stalled = self.max_stalled.max(self.stalled);
        } else {
            self.stalled = 0;
        }
        self.series_efficiency.push(snap.efficiency());
        self.series_flits.push(snap.flits());
        self.series_in_flight.push(snap.in_flight);
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(snap);
    }

    /// The most recent snapshot, if any window has closed.
    pub fn latest(&self) -> Option<&WindowSnapshot> {
        self.ring.back()
    }

    /// The retained snapshots, oldest first.
    pub fn ring(&self) -> impl Iterator<Item = &WindowSnapshot> {
        self.ring.iter()
    }

    /// Windows recorded so far (not bounded by the ring capacity).
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Consecutive motionless-with-flits-in-flight windows ending now.
    pub fn stalled_windows(&self) -> u64 {
        self.stalled
    }

    /// Longest motionless streak seen over the whole run.
    pub fn max_stalled_windows(&self) -> u64 {
        self.max_stalled
    }

    /// Whole-run summary series (one entry per window): matching
    /// efficiency, flits moved, flits in flight.
    pub fn series(&self) -> (&[f64], &[u64], &[u64]) {
        (
            &self.series_efficiency,
            &self.series_flits,
            &self.series_in_flight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(out_flits: u64, occupancy: u32) -> RouterCounters {
        RouterCounters {
            out_flits,
            occupancy,
            busy_vcs: occupancy.min(1),
            active: out_flits,
            ..RouterCounters::default()
        }
    }

    #[test]
    fn windows_difference_cumulative_counters() {
        let mut rec = FlightRecorder::new(10, 4);
        assert!(!rec.due(0));
        assert!(rec.due(9));
        rec.record(9, 5, 2, [counters(7, 3), counters(1, 0)].into_iter());
        rec.record(19, 9, 9, [counters(12, 0), counters(4, 0)].into_iter());
        let w1 = rec.ring().next().unwrap();
        assert_eq!(w1.window, 1);
        assert_eq!(w1.cycle, 10);
        assert_eq!((w1.injected, w1.ejected, w1.in_flight), (5, 2, 3));
        assert_eq!(w1.flits(), 8);
        let w2 = rec.latest().unwrap();
        assert_eq!(w2.window, 2);
        assert_eq!((w2.injected, w2.ejected, w2.in_flight), (4, 7, 0));
        assert_eq!(w2.flits(), 8); // (12-7) + (4-1)
        assert_eq!(w2.routers[0].occupancy, 0); // gauge, not differenced
    }

    #[test]
    fn ring_is_bounded_but_series_is_not() {
        let mut rec = FlightRecorder::new(5, 2);
        for k in 0..5u64 {
            rec.record(5 * k + 4, k + 1, k + 1, [counters(k + 1, 0)].into_iter());
        }
        assert_eq!(rec.windows(), 5);
        assert_eq!(rec.ring().count(), 2);
        assert_eq!(rec.latest().unwrap().window, 5);
        assert_eq!(rec.series().1.len(), 5);
    }

    #[test]
    fn watchdog_counts_consecutive_motionless_windows() {
        let mut rec = FlightRecorder::new(10, 8);
        // Window 1: motion (injection), flits left in flight.
        rec.record(9, 4, 0, [counters(4, 4)].into_iter());
        assert_eq!(rec.stalled_windows(), 0);
        // Windows 2-3: dead silence with 4 flits in flight.
        rec.record(19, 4, 0, [counters(4, 4)].into_iter());
        rec.record(29, 4, 0, [counters(4, 4)].into_iter());
        assert_eq!(rec.stalled_windows(), 2);
        assert!(rec.latest().unwrap().motionless());
        // Window 4: a flit moves — streak resets, max streak remembered.
        rec.record(39, 4, 1, [counters(5, 3)].into_iter());
        assert_eq!(rec.stalled_windows(), 0);
        assert_eq!(rec.max_stalled_windows(), 2);
    }

    #[test]
    fn drained_network_is_not_a_stall() {
        let mut rec = FlightRecorder::new(10, 4);
        rec.record(9, 3, 3, [counters(3, 0)].into_iter());
        rec.record(19, 3, 3, [counters(3, 0)].into_iter());
        // Nothing moved in window 2, but nothing is in flight either.
        assert_eq!(rec.stalled_windows(), 0);
    }

    #[test]
    fn efficiency_is_nan_without_samples() {
        let mut rec = FlightRecorder::new(10, 4);
        rec.record(9, 1, 0, [counters(1, 1)].into_iter());
        assert!(rec.latest().unwrap().efficiency().is_nan());
        let mut c = counters(2, 1);
        c.match_granted = 3;
        c.match_max = 4;
        rec.record(19, 2, 0, [c].into_iter());
        assert_eq!(rec.latest().unwrap().efficiency(), 0.75);
    }
}
