//! A tiny dependency-free JSON reader.
//!
//! The build environment has no crates.io access, so the workspace carries
//! its own minimal parser: strict RFC 8259 syntax, numbers as `f64`,
//! objects as ordered key/value vectors. It exists so that the bench
//! harness can read baseline `BENCH_*.json` files and tests can round-trip
//! the simulator's JSON summaries (including the NaN → `null` mapping)
//! without an external crate.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document (no trailing garbage).
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        skip_ws(b, &mut i);
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    /// Object member lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Member `key` as a number, mapping `null` (the JSON encoding of
    /// NaN/inf in this workspace) back to NaN. Missing keys and
    /// non-numbers are also NaN.
    pub fn num_or_nan(&self, key: &str) -> f64 {
        match self.get(key) {
            Some(JsonValue::Num(n)) => *n,
            _ => f64::NAN,
        }
    }
}

/// Checks that `s` is one well-formed JSON document (no extensions, no
/// trailing garbage). Used by tests to prove the Chrome trace and JSON
/// summaries are well-formed without an external parser.
pub fn validate_json(s: &str) -> Result<(), String> {
    JsonValue::parse(s).map(|_| ())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<JsonValue, String> {
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            let mut members = Vec::new();
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                skip_ws(b, i);
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                skip_ws(b, i);
                members.push((key, parse_value(b, i)?));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            let mut items = Vec::new();
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                skip_ws(b, i);
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => parse_string(b, i).map(JsonValue::Str),
        Some(b't') => parse_lit(b, i, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, i, "false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, i, "null").map(|()| JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        _ => Err(format!("unexpected byte at {i}")),
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string());
            }
            b'\\' => match b.get(*i + 1) {
                Some(&e @ (b'"' | b'\\' | b'/')) => {
                    out.push(e);
                    *i += 2;
                }
                Some(b'b') => {
                    out.push(0x08);
                    *i += 2;
                }
                Some(b'f') => {
                    out.push(0x0c);
                    *i += 2;
                }
                Some(b'n') => {
                    out.push(b'\n');
                    *i += 2;
                }
                Some(b'r') => {
                    out.push(b'\r');
                    *i += 2;
                }
                Some(b't') => {
                    out.push(b'\t');
                    *i += 2;
                }
                Some(b'u') => {
                    if b.len() < *i + 6 || !b[*i + 2..*i + 6].iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {i}"));
                    }
                    let code = std::str::from_utf8(&b[*i + 2..*i + 6])
                        .ok()
                        .and_then(|hex| u32::from_str_radix(hex, 16).ok())
                        .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                    // Surrogates are passed through as the replacement
                    // character; nothing in this workspace emits them.
                    let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                    let mut buf = [0u8; 4];
                    out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    *i += 6;
                }
                _ => return Err(format!("bad escape at byte {i}")),
            },
            0x00..=0x1f => return Err(format!("control character in string at byte {i}")),
            _ => {
                out.push(c);
                *i += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<JsonValue, String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("unparsable number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = JsonValue::parse(
            "{\"a\": [1, 2.5, -3e2, true, false, null, \"x\\ny\"], \"b\": {\"c\": 7}}",
        )
        .unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(a[3].as_bool(), Some(true));
        assert!(a[5].is_null());
        assert_eq!(a[6].as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn null_maps_to_nan() {
        let v = JsonValue::parse("{\"x\": null, \"y\": 4}").unwrap();
        assert!(v.num_or_nan("x").is_nan());
        assert!(v.num_or_nan("missing").is_nan());
        assert_eq!(v.num_or_nan("y"), 4.0);
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = JsonValue::parse("\"caf\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "{}extra",
            "{'a':1}",
            "nul",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
