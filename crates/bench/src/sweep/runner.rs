//! The sweep executor: bounded-parallel, cached, journaled, resumable.
//!
//! [`run_sweep`] expands a [`SweepSpec`] and satisfies each point from
//! the cheapest source available:
//!
//! 1. **journal skip** — the point is recorded complete in the journal
//!    and its result is in the cache: nothing runs;
//! 2. **cache hit** — the result exists in the content-addressed cache
//!    (written by another sweep, a figure binary, or an earlier schema-
//!    compatible run): the completion is journaled, nothing runs;
//! 3. **computed** — the point is simulated (via [`run_many`]'s worker
//!    pool), stored in the cache, then journaled.
//!
//! The journal append happens only after the cache store succeeds, so a
//! crash at any instant leaves the invariant "journaled ⇒ cached" intact
//! and the resumed run recomputes zero points.

use crate::figures::{direct_runner, SimRunner};
use crate::sweep::cache::ResultCache;
use crate::sweep::journal::{Journal, JournalHeader};
use crate::sweep::spec::{SweepPoint, SweepSpec};
use crate::sweep::SWEEP_SCHEMA;
use noc_obs::{
    sweep_manifest_json, window_jsonl, AnatomyHeader, ProgressMeter, SweepManifestPoint,
    TelemetryHeader,
};
use noc_sim::{
    run_many, run_sim_anatomy, run_sim_engine, run_sim_recorded_with, Engine, SimConfig, SimResult,
    TelemetryOptions,
};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Where and how a sweep runs.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Content-addressed result store (shared across sweeps).
    pub cache_dir: PathBuf,
    /// Journal + manifest directory.
    pub out_dir: PathBuf,
    /// Engine override for every point (`None` keeps per-point engines).
    pub engine: Option<Engine>,
    /// Suppress the per-point progress lines on stderr.
    pub quiet: bool,
    /// Refuse to start without an existing journal (`noc sweep resume`).
    pub require_journal: bool,
    /// Record a telemetry dump (`<digest>.telemetry.jsonl` in the cache
    /// directory) for every point this run computes; the manifest links
    /// each point to its dump.
    pub telemetry: bool,
    /// Record a latency-anatomy dump (`<digest>.anatomy.jsonl` in the
    /// cache directory) for every point this run computes; the manifest
    /// links each point to its dump.
    pub anatomy: bool,
}

impl SweepOptions {
    /// Options rooted at the repo's conventional result directories.
    pub fn default_dirs() -> SweepOptions {
        SweepOptions {
            cache_dir: PathBuf::from("results/cache"),
            out_dir: PathBuf::from("results/sweeps"),
            engine: None,
            quiet: false,
            require_journal: false,
            telemetry: false,
            anatomy: false,
        }
    }
}

/// File name (relative to the cache directory) of a point's telemetry dump.
fn telemetry_filename(digest: &str) -> String {
    format!("{digest}.telemetry.jsonl")
}

/// File name (relative to the cache directory) of a point's anatomy dump.
fn anatomy_filename(digest: &str) -> String {
    format!("{digest}.anatomy.jsonl")
}

/// Per-packet ledger rows retained per anatomy-enabled sweep point.
const SWEEP_ANATOMY_CAPACITY: usize = 1 << 16;
/// Slowest-packet waterfalls kept per anatomy-enabled sweep point.
const SWEEP_ANATOMY_TOP_K: usize = 8;

/// Simulates one point with the per-packet latency ledger attached and
/// writes the `noc-anatomy/v1` dump next to the cached result. Like
/// telemetry, the dump stays out of both the point digest and the cached
/// `SimResult` (the ledger is a pure observer), so anatomy and plain
/// sweeps share cache entries byte for byte.
fn compute_with_anatomy(
    point: &SweepPoint,
    engine: Engine,
    cache_dir: &Path,
    digest: &str,
) -> Result<SimResult, String> {
    let (r, col) = run_sim_anatomy(
        &point.cfg,
        point.warmup,
        point.measure,
        engine,
        SWEEP_ANATOMY_CAPACITY,
        SWEEP_ANATOMY_TOP_K,
    );
    let header = AnatomyHeader {
        digest: digest.to_string(),
        label: point.label.clone(),
        routers: point.cfg.topology.build().num_routers(),
        warmup: point.warmup,
        measure: point.measure,
        capacity: SWEEP_ANATOMY_CAPACITY as u64,
        top_k: SWEEP_ANATOMY_TOP_K as u64,
    };
    let path = cache_dir.join(anatomy_filename(digest));
    std::fs::write(&path, col.to_jsonl(&header))
        .map_err(|e| format!("anatomy: cannot write {}: {e}", path.display()))?;
    Ok(r)
}

/// Simulates one point with the flight recorder attached and writes the
/// `noc-telemetry/v1` dump next to the cached result. The dump stays out of
/// both the point digest and the cached `SimResult` (the summary is
/// stripped before the result is stored), so telemetry and plain sweeps
/// share cache entries byte for byte.
fn compute_with_telemetry(
    point: &SweepPoint,
    engine: Engine,
    cache_dir: &Path,
    digest: &str,
) -> Result<SimResult, String> {
    let topts = TelemetryOptions {
        // A watchdog trip would poison the whole sweep; sweep specs are
        // assumed deadlock-free and long stalls simply show in the dump.
        watchdog: None,
        ..TelemetryOptions::recording()
    };
    let header = TelemetryHeader {
        digest: digest.to_string(),
        label: point.label.clone(),
        window: topts.window,
        match_every: topts.match_every,
        routers: point.cfg.topology.build().num_routers(),
        warmup: point.warmup,
        measure: point.measure,
    };
    let mut text = header.to_json();
    text.push('\n');
    let (mut r, _rec) = run_sim_recorded_with(
        &point.cfg,
        point.warmup,
        point.measure,
        engine,
        topts,
        |snap| {
            text.push_str(&window_jsonl(snap));
            text.push('\n');
        },
    )
    .map_err(|trip| {
        format!(
            "telemetry: watchdog tripped with no watchdog set: {}",
            trip.describe()
        )
    })?;
    let path = cache_dir.join(telemetry_filename(digest));
    std::fs::write(&path, text)
        .map_err(|e| format!("telemetry: cannot write {}: {e}", path.display()))?;
    r.telemetry = None;
    Ok(r)
}

/// What a sweep run did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Sweep name.
    pub name: String,
    /// Digest of the expanded spec.
    pub spec_digest: String,
    /// Total points in the sweep.
    pub total: usize,
    /// Points simulated in this run.
    pub computed: usize,
    /// Points satisfied from the cache (journaled this run).
    pub cache_hits: usize,
    /// Points skipped because the journal already recorded them.
    pub journal_skips: usize,
    /// Wall-clock for the whole run, in milliseconds.
    pub wall_ms: u64,
    /// One result per point, in spec expansion order.
    pub results: Vec<SimResult>,
    /// Where the manifest was written.
    pub manifest_path: PathBuf,
    /// Where the journal lives.
    pub journal_path: PathBuf,
}

/// Runs (or resumes) a sweep. See the module docs for the source
/// hierarchy; the returned outcome carries per-source counts, so "resume
/// recomputed nothing" is checkable as `computed == 0`.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> Result<SweepOutcome, String> {
    let start = Instant::now();
    let points = spec.expand();
    let digests: Vec<String> = points.iter().map(|p| p.digest()).collect();
    let spec_digest = spec.digest();
    let cache = ResultCache::new(&opts.cache_dir)?;
    // The spec digest participates in the file names, so the same preset
    // at a different run window is a *new* sweep (own journal, own
    // manifest) rather than a refused resume; the header check below
    // still guards against tampered or collided files.
    let tag = &spec_digest[..12];
    let journal_path = opts.out_dir.join(format!("{}-{tag}.journal", spec.name));
    if opts.require_journal && !journal_path.exists() {
        return Err(format!(
            "resume: no journal at {} — start with `noc sweep run`",
            journal_path.display()
        ));
    }
    let header = JournalHeader {
        name: spec.name.clone(),
        spec_digest: spec_digest.clone(),
        points: points.len(),
    };
    let (journal, done) = Journal::open(&journal_path, &header)?;
    let meter = ProgressMeter::new(points.len());

    let outcomes: Vec<Result<(SimResult, &'static str, u64), String>> =
        run_many(points.len(), |i| {
            let point = &points[i];
            let digest = &digests[i];
            let journaled = done.contains(digest);
            let t0 = Instant::now();
            let (result, source): (SimResult, &'static str) = match cache.load(digest) {
                Some(r) if journaled => (r, "journal"),
                Some(r) => (r, "cache"),
                // A journaled-but-evicted point is recomputed like a miss;
                // re-journaling it is harmless (the done-set dedups).
                None => {
                    let engine = opts.engine.unwrap_or(point.engine);
                    let r = if opts.telemetry {
                        compute_with_telemetry(point, engine, &opts.cache_dir, digest)?
                    } else if opts.anatomy {
                        compute_with_anatomy(point, engine, &opts.cache_dir, digest)?
                    } else {
                        run_sim_engine(&point.cfg, point.warmup, point.measure, engine)
                    };
                    if opts.telemetry && opts.anatomy {
                        // Both observers requested: the anatomy dump comes
                        // from a second run, bit-identical because both
                        // layers are pure observers.
                        compute_with_anatomy(point, engine, &opts.cache_dir, digest)?;
                    }
                    cache.store(digest, &r)?;
                    (r, "computed")
                }
            };
            let wall_ms = t0.elapsed().as_millis() as u64;
            if source != "journal" {
                journal.append(digest, &point.label, source, wall_ms)?;
            }
            meter.tick();
            if !opts.quiet {
                eprintln!("[sweep {}] {} {}", spec.name, meter.line(), point.label);
            }
            Ok((result, source, wall_ms))
        });

    let mut results = Vec::with_capacity(points.len());
    let mut manifest_points = Vec::with_capacity(points.len());
    let (mut computed, mut cache_hits, mut journal_skips) = (0usize, 0usize, 0usize);
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let (result, source, wall_ms) = outcome?;
        match source {
            "computed" => computed += 1,
            "cache" => cache_hits += 1,
            _ => journal_skips += 1,
        }
        // Dumps from this run or any earlier telemetry-enabled run are
        // linked the same way: by presence on disk next to the cache entry.
        let dump = telemetry_filename(&digests[i]);
        let anatomy_dump = anatomy_filename(&digests[i]);
        manifest_points.push(SweepManifestPoint {
            label: points[i].label.clone(),
            digest: digests[i].clone(),
            source,
            wall_ms,
            telemetry: opts.cache_dir.join(&dump).is_file().then_some(dump),
            anatomy: opts
                .cache_dir
                .join(&anatomy_dump)
                .is_file()
                .then_some(anatomy_dump),
        });
        results.push(result);
    }

    let wall_ms = start.elapsed().as_millis() as u64;
    let manifest = sweep_manifest_json(
        &spec.name,
        SWEEP_SCHEMA,
        &spec_digest,
        computed,
        cache_hits,
        journal_skips,
        wall_ms,
        &manifest_points,
    );
    let manifest_path = opts
        .out_dir
        .join(format!("{}-{tag}.manifest.json", spec.name));
    std::fs::write(&manifest_path, manifest)
        .map_err(|e| format!("manifest: cannot write {}: {e}", manifest_path.display()))?;

    Ok(SweepOutcome {
        name: spec.name.clone(),
        spec_digest,
        total: points.len(),
        computed,
        cache_hits,
        journal_skips,
        wall_ms,
        results,
        manifest_path,
        journal_path,
    })
}

/// A `run_sim`-shaped closure backed by the content-addressed cache:
/// hits load, misses compute on `engine` and store. The figure renderers
/// take this to make their grid points *and* their adaptive
/// bisection/saturation probes resumable.
pub fn cached_runner(
    cache: ResultCache,
    engine: Engine,
) -> impl Fn(&SimConfig, u64, u64) -> SimResult + Sync {
    move |cfg, warmup, measure| {
        let digest = cfg.digest(warmup, measure, SWEEP_SCHEMA);
        if let Some(r) = cache.load(&digest) {
            return r;
        }
        let r = run_sim_engine(cfg, warmup, measure, engine);
        if let Err(e) = cache.store(&digest, &r) {
            // A read-only cache degrades to uncached, never to failure.
            eprintln!("warning: {e}");
        }
        r
    }
}

/// The runner a figure binary uses: plain `run_sim` normally, or the
/// cache at `$NOC_SWEEP_CACHE` when that variable names a directory —
/// which is how `noc sweep run --preset <fig>` makes the binaries' exact
/// output reproducible without re-simulating.
pub fn env_runner() -> Box<SimRunner> {
    match std::env::var("NOC_SWEEP_CACHE") {
        Ok(dir) if !dir.is_empty() => match ResultCache::new(Path::new(&dir)) {
            Ok(cache) => Box::new(cached_runner(cache, Engine::Sequential)),
            Err(e) => {
                eprintln!("warning: {e}; running uncached");
                Box::new(direct_runner())
            }
        },
        _ => Box::new(direct_runner()),
    }
}
