//! In-repo sweep presets covering the simulation-driven figures.
//!
//! Each preset expands to exactly the grid its legacy binary simulates,
//! with the same `NOC_WARMUP`/`NOC_MEASURE` environment overrides and
//! defaults, so `noc sweep run --preset fig13` populates the cache with
//! precisely the points `fig13` needs and the subsequent render is
//! all-hits. The `smoke` preset is CI-sized: two mesh points, sub-second.

use crate::env_usize;
use crate::points::DESIGN_POINTS;
use crate::sweep::spec::{SweepGrid, SweepSpec};
use noc_arbiter::ArbiterKind::RoundRobin;
use noc_core::{SpecMode, SwitchAllocatorKind};
use noc_sim::{TopologyKind, TrafficPattern};

/// The injection rates of the `smoke` preset (shared with its renderer).
pub const SMOKE_RATES: [f64; 2] = [0.05, 0.10];

/// Every preset name, in display order.
pub fn preset_names() -> &'static [&'static str] {
    &[
        "fig13",
        "fig14",
        "ablation-traffic",
        "ablation-speculation",
        "smoke",
    ]
}

/// The env-resolved (warmup, measure) window of a preset — the same
/// `NOC_WARMUP`/`NOC_MEASURE` lookup, with the same defaults, as the
/// preset's legacy binary.
pub fn preset_windows(name: &str) -> Option<(u64, u64)> {
    let (w, m) = match name {
        "fig13" | "fig14" => (3_000, 6_000),
        "ablation-traffic" | "ablation-speculation" => (2_000, 4_000),
        "smoke" => (200, 400),
        _ => return None,
    };
    Some((
        env_usize("NOC_WARMUP", w) as u64,
        env_usize("NOC_MEASURE", m) as u64,
    ))
}

/// Resolves a preset by name (windows come from [`preset_windows`]).
pub fn preset(name: &str) -> Option<SweepSpec> {
    let (warmup, measure) = preset_windows(name)?;
    Some(match name {
        "fig13" => fig13_spec(warmup, measure),
        "fig14" => fig14_spec(warmup, measure),
        "ablation-traffic" => ablation_traffic_spec(warmup, measure),
        "ablation-speculation" => ablation_speculation_spec(warmup, measure),
        "smoke" => smoke_spec(warmup, measure),
        _ => return None,
    })
}

/// Figure 13's grid: all six design points × the three switch-allocator
/// architectures × the per-point rate grid.
pub fn fig13_spec(warmup: u64, measure: u64) -> SweepSpec {
    let grids = DESIGN_POINTS
        .iter()
        .map(|p| SweepGrid {
            topology: vec![p.topology],
            vcs: vec![p.vcs_per_class],
            sa: vec![
                SwitchAllocatorKind::SepIf(RoundRobin),
                SwitchAllocatorKind::SepOf(RoundRobin),
                SwitchAllocatorKind::Wavefront,
            ],
            rates: p.rate_grid(),
            warmup,
            measure,
            ..SweepGrid::default()
        })
        .collect();
    SweepSpec {
        name: "fig13".into(),
        grids,
    }
}

/// Figure 14's grid: all six design points × the three speculation
/// schemes × the per-point rate grid.
pub fn fig14_spec(warmup: u64, measure: u64) -> SweepSpec {
    let grids = DESIGN_POINTS
        .iter()
        .map(|p| SweepGrid {
            topology: vec![p.topology],
            vcs: vec![p.vcs_per_class],
            spec_mode: SpecMode::ALL.to_vec(),
            rates: p.rate_grid(),
            warmup,
            measure,
            ..SweepGrid::default()
        })
        .collect();
    SweepSpec {
        name: "fig14".into(),
        grids,
    }
}

/// The traffic-pattern ablation: fbfly 2x2x2, four synthetic patterns,
/// sep_if vs wavefront.
pub fn ablation_traffic_spec(warmup: u64, measure: u64) -> SweepSpec {
    SweepSpec {
        name: "ablation-traffic".into(),
        grids: vec![SweepGrid {
            topology: vec![TopologyKind::FlattenedButterfly4x4],
            vcs: vec![2],
            pattern: vec![
                TrafficPattern::UniformRandom,
                TrafficPattern::BitComplement,
                TrafficPattern::Transpose,
                TrafficPattern::Tornado,
            ],
            sa: vec![
                SwitchAllocatorKind::SepIf(RoundRobin),
                SwitchAllocatorKind::Wavefront,
            ],
            rates: (1..=8).map(|i| 0.07 * i as f64).collect(),
            warmup,
            measure,
            ..SweepGrid::default()
        }],
    }
}

/// The speculation-efficiency ablation: conventional vs pessimistic
/// grant outcomes on mesh 2x1x1 and fbfly 2x2x4 at four load points.
pub fn ablation_speculation_spec(warmup: u64, measure: u64) -> SweepSpec {
    let grids = [
        (TopologyKind::Mesh8x8, 1usize),
        (TopologyKind::FlattenedButterfly4x4, 4),
    ]
    .into_iter()
    .map(|(topo, c)| SweepGrid {
        topology: vec![topo],
        vcs: vec![c],
        spec_mode: vec![SpecMode::Conventional, SpecMode::Pessimistic],
        rates: vec![0.05, 0.15, 0.25, 0.35],
        warmup,
        measure,
        ..SweepGrid::default()
    })
    .collect();
    SweepSpec {
        name: "ablation-speculation".into(),
        grids,
    }
}

/// The CI smoke preset: two mesh 2x1x1 points, sub-second.
pub fn smoke_spec(warmup: u64, measure: u64) -> SweepSpec {
    SweepSpec {
        name: "smoke".into(),
        grids: vec![SweepGrid {
            topology: vec![TopologyKind::Mesh8x8],
            vcs: vec![1],
            rates: SMOKE_RATES.to_vec(),
            warmup,
            measure,
            ..SweepGrid::default()
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sizes_match_their_binaries() {
        // fig13: 6 points × 3 allocators × 10 rates.
        assert_eq!(fig13_spec(100, 200).expand().len(), 180);
        // fig14: 6 points × 3 spec modes × 10 rates.
        assert_eq!(fig14_spec(100, 200).expand().len(), 180);
        // ablation-traffic: 4 patterns × 2 allocators × 8 rates.
        assert_eq!(ablation_traffic_spec(100, 200).expand().len(), 64);
        // ablation-speculation: 2 points × 2 modes × 4 rates.
        assert_eq!(ablation_speculation_spec(100, 200).expand().len(), 16);
        assert_eq!(smoke_spec(100, 200).expand().len(), 2);
    }

    #[test]
    fn every_name_resolves_and_unknowns_do_not() {
        for name in preset_names() {
            let spec = preset(name).expect("preset resolves");
            assert_eq!(&spec.name, name, "spec name matches preset name");
            assert!(preset_windows(name).is_some());
        }
        assert!(preset("fig99").is_none());
    }
}
