//! The sweep grammar: declarative grids over simulator configurations.
//!
//! A [`SweepSpec`] is a named list of [`SweepGrid`]s; each grid is a
//! cartesian product over configuration axes plus a shared run window
//! (warmup/measure) and engine. [`SweepSpec::expand`] flattens the spec
//! into a deterministic point list — same spec, same order, always — and
//! the spec digest is computed over the *expanded point digests*, so two
//! spec files that describe the same work (even with reordered JSON keys
//! or scalar-vs-array axes) are interchangeable for journal validation.

use crate::sweep::SWEEP_SCHEMA;
use noc_arbiter::ArbiterKind;
use noc_core::{AllocatorKind, SpecMode, SwitchAllocatorKind};
use noc_obs::JsonValue;
use noc_sim::{digest_pairs, Engine, SimConfig, TopologyKind, TrafficPattern};

/// A named collection of sweep grids.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Sweep name: names the journal and manifest files.
    pub name: String,
    /// The grids; points run in grid order, then axis order.
    pub grids: Vec<SweepGrid>,
}

/// One cartesian grid of configurations sharing a run window.
#[derive(Clone, Debug)]
pub struct SweepGrid {
    /// Topology axis.
    pub topology: Vec<TopologyKind>,
    /// VCs-per-class axis.
    pub vcs: Vec<usize>,
    /// VC-allocator axis.
    pub vca: Vec<AllocatorKind>,
    /// Sparse-VCA-organization axis.
    pub vca_sparse: Vec<bool>,
    /// Switch-allocator axis.
    pub sa: Vec<SwitchAllocatorKind>,
    /// Speculation-scheme axis.
    pub spec_mode: Vec<SpecMode>,
    /// Traffic-pattern axis.
    pub pattern: Vec<TrafficPattern>,
    /// Buffer-depth axis.
    pub buf_depth: Vec<usize>,
    /// Burst-size axis.
    pub burst: Vec<usize>,
    /// Payload-length axis.
    pub payload_flits: Vec<usize>,
    /// Injection-rate axis.
    pub rates: Vec<f64>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Warmup cycles per run.
    pub warmup: u64,
    /// Measurement cycles per run.
    pub measure: u64,
    /// Engine the points prefer (overridable at run time; not part of
    /// point identity — all engines are cycle-identical).
    pub engine: Engine,
}

impl Default for SweepGrid {
    fn default() -> Self {
        let base = SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2);
        SweepGrid {
            topology: vec![base.topology],
            vcs: vec![base.vcs_per_class],
            vca: vec![base.vca_kind],
            vca_sparse: vec![base.vca_sparse],
            sa: vec![base.sa_kind],
            spec_mode: vec![base.spec_mode],
            pattern: vec![base.pattern],
            buf_depth: vec![base.buf_depth],
            burst: vec![base.burst],
            payload_flits: vec![base.payload_flits],
            rates: vec![base.injection_rate],
            seeds: vec![base.seed],
            warmup: 3_000,
            measure: 6_000,
            engine: Engine::Sequential,
        }
    }
}

/// One fully resolved point of an expanded sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Human-readable label (journal/manifest display only; identity is
    /// the digest).
    pub label: String,
    /// The resolved configuration.
    pub cfg: SimConfig,
    /// Warmup cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Preferred engine.
    pub engine: Engine,
}

impl SweepPoint {
    /// The point's content digest under the sweep schema.
    pub fn digest(&self) -> String {
        self.cfg.digest(self.warmup, self.measure, SWEEP_SCHEMA)
    }
}

impl SweepGrid {
    /// Expands the cartesian product in deterministic axis order.
    pub fn expand(&self) -> Vec<SweepPoint> {
        let mut out = Vec::new();
        for &topology in &self.topology {
            for &vcs in &self.vcs {
                let base = SimConfig::paper_baseline(topology, vcs);
                for &vca_kind in &self.vca {
                    for &vca_sparse in &self.vca_sparse {
                        for &sa_kind in &self.sa {
                            for &spec_mode in &self.spec_mode {
                                for &pattern in &self.pattern {
                                    for &buf_depth in &self.buf_depth {
                                        for &burst in &self.burst {
                                            for &payload_flits in &self.payload_flits {
                                                for &injection_rate in &self.rates {
                                                    for &seed in &self.seeds {
                                                        let cfg = SimConfig {
                                                            vca_kind,
                                                            vca_sparse,
                                                            sa_kind,
                                                            spec_mode,
                                                            pattern,
                                                            buf_depth,
                                                            burst,
                                                            payload_flits,
                                                            injection_rate,
                                                            seed,
                                                            ..base.clone()
                                                        };
                                                        out.push(self.point(cfg));
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn point(&self, cfg: SimConfig) -> SweepPoint {
        let label = format!(
            "{} vca={} sa={} {} {} bd{} b{} pf{} r={} s={:x}",
            cfg.label(),
            cfg.vca_kind.label(),
            cfg.sa_kind.label(),
            cfg.spec_mode.label(),
            cfg.pattern.label(),
            cfg.buf_depth,
            cfg.burst,
            cfg.payload_flits,
            cfg.injection_rate,
            cfg.seed,
        );
        SweepPoint {
            label,
            cfg,
            warmup: self.warmup,
            measure: self.measure,
            engine: self.engine,
        }
    }
}

impl SweepSpec {
    /// Expands every grid, in order.
    pub fn expand(&self) -> Vec<SweepPoint> {
        self.grids.iter().flat_map(SweepGrid::expand).collect()
    }

    /// Content digest of the expanded point set (schema included via the
    /// per-point digests). Two specs that expand to the same points — in
    /// any order — share a digest, so journals validate across
    /// reformatted spec files.
    pub fn digest(&self) -> String {
        let pairs: Vec<(String, String)> = self
            .expand()
            .iter()
            .map(|p| ("point".to_string(), p.digest()))
            .collect();
        digest_pairs(&pairs)
    }

    /// Parses a spec from its JSON form:
    ///
    /// ```json
    /// {
    ///   "name": "my-sweep",
    ///   "grids": [
    ///     {"topology": "mesh", "vcs": [1, 2], "sa": ["sep_if_rr", "wf"],
    ///      "rates": [0.1, 0.2], "warmup": 3000, "measure": 6000}
    ///   ]
    /// }
    /// ```
    ///
    /// Every axis accepts a scalar or an array and falls back to the
    /// paper-baseline default when omitted. Unknown keys are rejected so
    /// a typo can't silently shrink a sweep.
    pub fn from_json(s: &str) -> Result<SweepSpec, String> {
        let v = JsonValue::parse(s).map_err(|e| format!("sweep spec: {e}"))?;
        SweepSpec::from_value(&v)
    }

    /// Parses a spec from an already-parsed JSON document — the entry
    /// point the `noc serve` daemon uses for specs embedded inside a
    /// request line (same grammar and validation as [`Self::from_json`]).
    pub fn from_value(v: &JsonValue) -> Result<SweepSpec, String> {
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("sweep spec: missing string field 'name'")?
            .to_string();
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(format!(
                "sweep spec: name '{name}' must be non-empty [A-Za-z0-9_-] (it names files)"
            ));
        }
        let grids_v = v
            .get("grids")
            .and_then(JsonValue::as_array)
            .ok_or("sweep spec: missing array field 'grids'")?;
        if grids_v.is_empty() {
            return Err("sweep spec: 'grids' is empty".to_string());
        }
        let grids = grids_v
            .iter()
            .enumerate()
            .map(|(i, g)| parse_grid(g).map_err(|e| format!("sweep spec: grids[{i}]: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepSpec { name, grids })
    }
}

const GRID_KEYS: [&str; 15] = [
    "topology",
    "vcs",
    "vca",
    "vca_sparse",
    "sa",
    "spec",
    "pattern",
    "buf_depth",
    "burst",
    "payload_flits",
    "rates",
    "seeds",
    "warmup",
    "measure",
    "engine",
];

fn parse_grid(g: &JsonValue) -> Result<SweepGrid, String> {
    let members = match g {
        JsonValue::Obj(m) => m,
        _ => return Err("grid must be an object".to_string()),
    };
    for (k, _) in members {
        if !GRID_KEYS.contains(&k.as_str()) {
            return Err(format!("unknown grid key '{k}'"));
        }
    }
    let mut grid = SweepGrid::default();
    if let Some(v) = axis(g, "topology")? {
        grid.topology = map_axis(&v, "topology", parse_topology)?;
    }
    if let Some(v) = axis(g, "vcs")? {
        grid.vcs = map_axis(&v, "vcs", parse_usize)?;
    }
    if let Some(v) = axis(g, "vca")? {
        grid.vca = map_axis(&v, "vca", parse_vca)?;
    }
    if let Some(v) = axis(g, "vca_sparse")? {
        grid.vca_sparse = map_axis(&v, "vca_sparse", |j| {
            j.as_bool().ok_or_else(|| "expected a boolean".to_string())
        })?;
    }
    if let Some(v) = axis(g, "sa")? {
        grid.sa = map_axis(&v, "sa", parse_sa)?;
    }
    if let Some(v) = axis(g, "spec")? {
        grid.spec_mode = map_axis(&v, "spec", parse_spec_mode)?;
    }
    if let Some(v) = axis(g, "pattern")? {
        grid.pattern = map_axis(&v, "pattern", parse_pattern)?;
    }
    if let Some(v) = axis(g, "buf_depth")? {
        grid.buf_depth = map_axis(&v, "buf_depth", parse_usize)?;
    }
    if let Some(v) = axis(g, "burst")? {
        grid.burst = map_axis(&v, "burst", parse_usize)?;
    }
    if let Some(v) = axis(g, "payload_flits")? {
        grid.payload_flits = map_axis(&v, "payload_flits", parse_usize)?;
    }
    if let Some(v) = axis(g, "rates")? {
        grid.rates = map_axis(&v, "rates", |j| {
            j.as_f64()
                .filter(|r| r.is_finite() && *r > 0.0)
                .ok_or_else(|| "expected a positive number".to_string())
        })?;
    }
    if let Some(v) = axis(g, "seeds")? {
        grid.seeds = map_axis(&v, "seeds", |j| parse_usize(j).map(|s| s as u64))?;
    }
    if let Some(w) = g.get("warmup") {
        grid.warmup = parse_usize(w).map_err(|e| format!("warmup: {e}"))? as u64;
    }
    if let Some(m) = g.get("measure") {
        grid.measure = parse_usize(m).map_err(|e| format!("measure: {e}"))? as u64;
    }
    if let Some(e) = g.get("engine") {
        let name = e.as_str().ok_or("engine: expected a string")?;
        grid.engine =
            Engine::parse(name).ok_or_else(|| format!("engine: unknown engine '{name}'"))?;
    }
    for (axis_name, empty) in [
        ("topology", grid.topology.is_empty()),
        ("vcs", grid.vcs.is_empty()),
        ("rates", grid.rates.is_empty()),
        ("seeds", grid.seeds.is_empty()),
    ] {
        if empty {
            return Err(format!("axis '{axis_name}' is empty"));
        }
    }
    Ok(grid)
}

/// Reads a grid member as a list: arrays pass through, scalars become a
/// one-element list, absent keys are `None`.
#[allow(clippy::type_complexity)]
fn axis<'a>(g: &'a JsonValue, key: &str) -> Result<Option<Vec<&'a JsonValue>>, String> {
    match g.get(key) {
        None => Ok(None),
        Some(JsonValue::Arr(items)) => {
            if items.is_empty() {
                return Err(format!("axis '{key}' is empty"));
            }
            Ok(Some(items.iter().collect()))
        }
        Some(v) => Ok(Some(vec![v])),
    }
}

fn map_axis<T>(
    items: &[&JsonValue],
    key: &str,
    f: impl Fn(&JsonValue) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    items
        .iter()
        .map(|v| f(v).map_err(|e| format!("{key}: {e}")))
        .collect()
}

fn parse_usize(v: &JsonValue) -> Result<usize, String> {
    let n = v.as_f64().ok_or("expected a number")?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(format!("expected a non-negative integer, got {n}"));
    }
    Ok(n as usize)
}

fn str_of(v: &JsonValue) -> Result<&str, String> {
    v.as_str().ok_or_else(|| "expected a string".to_string())
}

/// Topology names as the `noc` CLI spells them.
pub fn parse_topology(v: &JsonValue) -> Result<TopologyKind, String> {
    match str_of(v)? {
        "mesh" => Ok(TopologyKind::Mesh8x8),
        "fbfly" => Ok(TopologyKind::FlattenedButterfly4x4),
        "torus" => Ok(TopologyKind::Torus8x8),
        other => Err(format!("unknown topology '{other}'")),
    }
}

/// VC-allocator names as the `noc` CLI spells them.
pub fn parse_vca(v: &JsonValue) -> Result<AllocatorKind, String> {
    match str_of(v)? {
        "sep_if_rr" => Ok(AllocatorKind::SepIfRr),
        "sep_if_m" => Ok(AllocatorKind::SepIfMatrix),
        "sep_of_rr" => Ok(AllocatorKind::SepOfRr),
        "sep_of_m" => Ok(AllocatorKind::SepOfMatrix),
        "wf" => Ok(AllocatorKind::Wavefront),
        other => Err(format!("unknown allocator '{other}'")),
    }
}

/// Switch-allocator names as the `noc` CLI spells them.
pub fn parse_sa(v: &JsonValue) -> Result<SwitchAllocatorKind, String> {
    match str_of(v)? {
        "sep_if_rr" | "sep_if" => Ok(SwitchAllocatorKind::SepIf(ArbiterKind::RoundRobin)),
        "sep_if_m" => Ok(SwitchAllocatorKind::SepIf(ArbiterKind::Matrix)),
        "sep_of_rr" | "sep_of" => Ok(SwitchAllocatorKind::SepOf(ArbiterKind::RoundRobin)),
        "sep_of_m" => Ok(SwitchAllocatorKind::SepOf(ArbiterKind::Matrix)),
        "wf" => Ok(SwitchAllocatorKind::Wavefront),
        other => Err(format!("unknown switch allocator '{other}'")),
    }
}

/// Speculation-mode names as the `noc` CLI spells them.
pub fn parse_spec_mode(v: &JsonValue) -> Result<SpecMode, String> {
    match str_of(v)? {
        "nonspec" => Ok(SpecMode::NonSpeculative),
        "spec_gnt" | "conventional" => Ok(SpecMode::Conventional),
        "spec_req" | "pessimistic" => Ok(SpecMode::Pessimistic),
        other => Err(format!("unknown speculation mode '{other}'")),
    }
}

/// Traffic-pattern names as the `noc` CLI spells them.
pub fn parse_pattern(v: &JsonValue) -> Result<TrafficPattern, String> {
    let s = str_of(v)?;
    TrafficPattern::parse(s).ok_or_else(|| format!("unknown pattern '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_expands_to_one_baseline_point() {
        let pts = SweepGrid::default().expand();
        assert_eq!(pts.len(), 1);
        let base = SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2);
        assert_eq!(
            pts[0].digest(),
            base.digest(3_000, 6_000, SWEEP_SCHEMA),
            "default grid point is the paper baseline"
        );
        assert_eq!(pts[0].digest().len(), 32);
    }

    #[test]
    fn expansion_is_the_full_cartesian_product() {
        let grid = SweepGrid {
            topology: vec![TopologyKind::Mesh8x8, TopologyKind::Torus8x8],
            vcs: vec![1, 2],
            rates: vec![0.1, 0.2, 0.3],
            ..SweepGrid::default()
        };
        let pts = grid.expand();
        assert_eq!(pts.len(), 12);
        // Deterministic order: rates innermost-but-one, seeds innermost.
        assert!((pts[0].cfg.injection_rate - 0.1).abs() < 1e-12);
        assert!((pts[1].cfg.injection_rate - 0.2).abs() < 1e-12);
        assert_eq!(pts[0].cfg.topology, TopologyKind::Mesh8x8);
        assert_eq!(pts[6].cfg.topology, TopologyKind::Torus8x8);
        // All digests distinct.
        let mut digests: Vec<String> = pts.iter().map(SweepPoint::digest).collect();
        digests.sort();
        digests.dedup();
        assert_eq!(digests.len(), 12);
    }

    #[test]
    fn json_round_trip_and_key_order_independence() {
        let a = SweepSpec::from_json(
            r#"{"name":"t","grids":[{"topology":["mesh"],"vcs":2,"rates":[0.1,0.2],"warmup":100,"measure":200}]}"#,
        )
        .unwrap();
        let b = SweepSpec::from_json(
            r#"{"grids":[{"measure":200,"rates":[0.1,0.2],"warmup":100,"vcs":[2],"topology":"mesh"}],"name":"t"}"#,
        )
        .unwrap();
        assert_eq!(a.expand().len(), 2);
        assert_eq!(a.digest(), b.digest(), "scalar vs array, reordered keys");
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected() {
        for bad in [
            r#"{"name":"t","grids":[{"ratess":[0.1]}]}"#,
            r#"{"name":"t","grids":[{"rates":[-0.1]}]}"#,
            r#"{"name":"t","grids":[{"topology":"hypercube"}]}"#,
            r#"{"name":"t","grids":[{"engine":"warp"}]}"#,
            r#"{"name":"t","grids":[{"rates":[]}]}"#,
            r#"{"name":"t","grids":[]}"#,
            r#"{"name":"../evil","grids":[{}]}"#,
            r#"{"grids":[{}]}"#,
        ] {
            assert!(SweepSpec::from_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn spec_digest_covers_run_window() {
        let mk = |measure: u64| SweepSpec {
            name: "t".into(),
            grids: vec![SweepGrid {
                measure,
                ..SweepGrid::default()
            }],
        };
        assert_ne!(mk(100).digest(), mk(200).digest());
    }

    #[test]
    fn kind_names_match_the_cli_vocabulary() {
        let j = |s: &str| JsonValue::Str(s.to_string());
        assert_eq!(parse_vca(&j("wf")).unwrap(), AllocatorKind::Wavefront);
        assert_eq!(
            parse_sa(&j("sep_of_m")).unwrap(),
            SwitchAllocatorKind::SepOf(ArbiterKind::Matrix)
        );
        assert_eq!(
            parse_spec_mode(&j("pessimistic")).unwrap(),
            SpecMode::Pessimistic
        );
        assert_eq!(
            parse_pattern(&j("tornado")).unwrap(),
            TrafficPattern::Tornado
        );
        assert!(parse_sa(&j("maxsize")).is_err());
    }
}
