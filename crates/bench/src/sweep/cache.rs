//! Content-addressed result store.
//!
//! One file per simulated point, named `<digest>.json` where the digest
//! is [`SimConfig::digest`](noc_sim::SimConfig) over the resolved
//! configuration, run window, and sweep schema. Files hold
//! [`SimResult::to_json_full`] and round-trip bit-exactly through
//! [`SimResult::from_json`], so a cached point is indistinguishable from
//! a freshly computed one. Stores write to a temporary file and rename,
//! so a crash mid-write never leaves a truncated entry — a torn record
//! at worst leaves a `.tmp` file the next `clean` removes.
//!
//! The store path is safe under concurrent writers (multiple sweep
//! threads, racing processes, or the `noc serve` daemon sharing the
//! directory with a batch sweep): every writer stages through its own
//! uniquely named temp file, publication is first-wins, and the
//! directory entry is fsynced so a renamed result survives a crash.

use noc_sim::SimResult;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A directory of content-addressed simulation results.
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: &Path) -> Result<ResultCache, String> {
        fs::create_dir_all(dir)
            .map_err(|e| format!("cache: cannot create {}: {e}", dir.display()))?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a digest.
    pub fn path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Loads the result stored under `digest`, if present and readable.
    /// A corrupt entry reads as a miss (it will be recomputed and
    /// overwritten), never as an error.
    pub fn load(&self, digest: &str) -> Option<SimResult> {
        let text = fs::read_to_string(self.path(digest)).ok()?;
        SimResult::from_json(&text).ok()
    }

    /// Stores `result` under `digest` atomically (write + fsync + rename)
    /// with **first-wins** semantics under concurrent writers.
    ///
    /// Each writer stages through its own temp file — the name carries
    /// the process id plus a process-wide ticket, so two threads (or two
    /// processes) storing the same digest never interleave writes into a
    /// shared staging file and can never publish a torn entry. If a
    /// complete entry already exists by the time this writer is ready to
    /// publish, its staged copy is discarded: results are
    /// content-addressed, so the first published entry is as good as any
    /// later one. The file data is fsynced before the rename and the
    /// directory entry after it, so a published entry survives a crash —
    /// the durability half of the "journaled ⇒ cached" invariant.
    pub fn store(&self, digest: &str, result: &SimResult) -> Result<(), String> {
        // RELAXED: unique-ticket counter only; nothing is published through it.
        static TICKET: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".{digest}.{}-{}.tmp",
            std::process::id(),
            TICKET.fetch_add(1, Ordering::Relaxed)
        ));
        let path = self.path(digest);
        let mut file = fs::File::create(&tmp)
            .map_err(|e| format!("cache: cannot create {}: {e}", tmp.display()))?;
        file.write_all(result.to_json_full().as_bytes())
            .map_err(|e| format!("cache: cannot write {}: {e}", tmp.display()))?;
        file.sync_data()
            .map_err(|e| format!("cache: cannot sync {}: {e}", tmp.display()))?;
        drop(file);
        if path.exists() {
            // First-wins: a concurrent writer already published this
            // digest; keep its entry and drop our staged duplicate.
            let _ = fs::remove_file(&tmp);
            return Ok(());
        }
        fs::rename(&tmp, &path)
            .map_err(|e| format!("cache: cannot rename into {}: {e}", path.display()))?;
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Whether an entry exists for `digest` (without parsing it).
    pub fn contains(&self, digest: &str) -> bool {
        self.path(digest).exists()
    }

    /// Number of cache entries on disk.
    pub fn len(&self) -> usize {
        self.entries().count()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every cache entry (and stale `.tmp` files), returning the
    /// number of entries removed. Only files this cache wrote —
    /// 32-hex-digit `.json` names — are touched.
    pub fn clear(&self) -> Result<usize, String> {
        let mut removed = 0;
        let victims: Vec<PathBuf> = self.entries().collect();
        for p in victims {
            fs::remove_file(&p)
                .map_err(|e| format!("cache: cannot remove {}: {e}", p.display()))?;
            removed += 1;
        }
        if let Ok(rd) = fs::read_dir(&self.dir) {
            for entry in rd.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with('.') && name.ends_with(".tmp") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        Ok(removed)
    }

    /// Whether `digest` is present *and* parses — used by schedulers that
    /// must not promise a result they cannot later load.
    pub fn contains_valid(&self, digest: &str) -> bool {
        self.load(digest).is_some()
    }

    fn entries(&self) -> impl Iterator<Item = PathBuf> {
        fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n.strip_suffix(".json"))
                    .is_some_and(|stem| {
                        stem.len() == 32 && stem.bytes().all(|b| b.is_ascii_hexdigit())
                    })
            })
    }
}

/// Fsyncs a directory so renames and file creations inside it are
/// durable. On a crash without this, a freshly renamed cache entry or a
/// freshly created journal can vanish even though the file data itself
/// was fsynced — the directory entry is its own write.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), String> {
    fs::File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| format!("cannot fsync directory {}: {e}", dir.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{run_sim, SimConfig, TopologyKind};
    use std::sync::atomic::AtomicUsize;

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let d = std::env::temp_dir().join(format!(
            "noc-cache-test-{}-{tag}-{}",
            std::process::id(),
            // RELAXED: unique-name ticket only; nothing is published.
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_load_is_bit_exact() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::new(&dir).unwrap();
        let cfg = SimConfig {
            injection_rate: 0.1,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
        };
        let r = run_sim(&cfg, 50, 100);
        let d = cfg.digest(50, 100, "test/v1");
        assert!(!cache.contains(&d));
        cache.store(&d, &r).unwrap();
        assert!(cache.contains(&d));
        assert_eq!(cache.len(), 1);
        let loaded = cache.load(&d).expect("entry readable");
        assert_eq!(loaded.to_json_full(), r.to_json_full(), "bit-exact");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression for the fixed-tmp-name store race: with a shared
    /// `.{digest}.tmp` staging file, one writer's `fs::write` truncation
    /// could interleave with another's rename of the same path and
    /// publish a torn entry (store returns Ok but an immediate load
    /// misses), or the second rename could fail outright on the vanished
    /// temp file. With per-writer staging names and first-wins publish,
    /// every successful store is immediately loadable, from any number
    /// of concurrent writers.
    #[test]
    fn concurrent_stores_of_one_digest_never_publish_torn_entries() {
        let dir = tmp_dir("race");
        let cache = ResultCache::new(&dir).unwrap();
        // Two genuinely different payloads (different configs) stored
        // under one digest maximize the observable damage of any
        // interleaved write: a mix of the two would fail to parse or
        // fail the round-trip check below.
        let payloads: Vec<SimResult> = [0.05, 0.10]
            .iter()
            .map(|&rate| {
                let cfg = SimConfig {
                    injection_rate: rate,
                    ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
                };
                run_sim(&cfg, 50, 150)
            })
            .collect();
        let digest = "f00dfacef00dfacef00dfacef00dface";
        let jsons: Vec<String> = payloads.iter().map(SimResult::to_json_full).collect();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let cache = &cache;
                let payloads = &payloads;
                let jsons = &jsons;
                scope.spawn(move || {
                    for i in 0..25usize {
                        let which = (t + i) % payloads.len();
                        cache.store(digest, &payloads[which]).unwrap();
                        // A store that returned Ok must be immediately
                        // loadable and must round-trip to one of the
                        // exact payloads ever stored — never a torn mix.
                        let loaded = cache
                            .load(digest)
                            .expect("published entry reads back (no torn file)");
                        let text = loaded.to_json_full();
                        assert!(
                            jsons.contains(&text),
                            "loaded entry is a byte-exact stored payload"
                        );
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1, "exactly one published entry");
        let stale: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(stale.is_empty(), "no staged temp files leak: {stale:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses_and_clear_only_owns() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::new(&dir).unwrap();
        let d = "0123456789abcdef0123456789abcdef";
        fs::write(cache.path(d), "{not json").unwrap();
        assert!(cache.load(d).is_none(), "corrupt entry is a miss");
        assert_eq!(cache.len(), 1);
        // A foreign file is neither counted nor cleared.
        fs::write(dir.join("notes.json"), "{}").unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.clear().unwrap(), 1);
        assert!(dir.join("notes.json").exists(), "foreign file survives");
        let _ = fs::remove_dir_all(&dir);
    }
}
