//! Content-addressed result store.
//!
//! One file per simulated point, named `<digest>.json` where the digest
//! is [`SimConfig::digest`](noc_sim::SimConfig) over the resolved
//! configuration, run window, and sweep schema. Files hold
//! [`SimResult::to_json_full`] and round-trip bit-exactly through
//! [`SimResult::from_json`], so a cached point is indistinguishable from
//! a freshly computed one. Stores write to a temporary file and rename,
//! so a crash mid-write never leaves a truncated entry — a torn record
//! at worst leaves a `.tmp` file the next `clean` removes.

use noc_sim::SimResult;
use std::fs;
use std::path::{Path, PathBuf};

/// A directory of content-addressed simulation results.
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: &Path) -> Result<ResultCache, String> {
        fs::create_dir_all(dir)
            .map_err(|e| format!("cache: cannot create {}: {e}", dir.display()))?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a digest.
    pub fn path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Loads the result stored under `digest`, if present and readable.
    /// A corrupt entry reads as a miss (it will be recomputed and
    /// overwritten), never as an error.
    pub fn load(&self, digest: &str) -> Option<SimResult> {
        let text = fs::read_to_string(self.path(digest)).ok()?;
        SimResult::from_json(&text).ok()
    }

    /// Stores `result` under `digest` atomically (write + rename).
    pub fn store(&self, digest: &str, result: &SimResult) -> Result<(), String> {
        let tmp = self.dir.join(format!(".{digest}.tmp"));
        let path = self.path(digest);
        fs::write(&tmp, result.to_json_full())
            .map_err(|e| format!("cache: cannot write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &path)
            .map_err(|e| format!("cache: cannot rename into {}: {e}", path.display()))?;
        Ok(())
    }

    /// Whether an entry exists for `digest` (without parsing it).
    pub fn contains(&self, digest: &str) -> bool {
        self.path(digest).exists()
    }

    /// Number of cache entries on disk.
    pub fn len(&self) -> usize {
        self.entries().count()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every cache entry (and stale `.tmp` files), returning the
    /// number of entries removed. Only files this cache wrote —
    /// 32-hex-digit `.json` names — are touched.
    pub fn clear(&self) -> Result<usize, String> {
        let mut removed = 0;
        let victims: Vec<PathBuf> = self.entries().collect();
        for p in victims {
            fs::remove_file(&p)
                .map_err(|e| format!("cache: cannot remove {}: {e}", p.display()))?;
            removed += 1;
        }
        if let Ok(rd) = fs::read_dir(&self.dir) {
            for entry in rd.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with('.') && name.ends_with(".tmp") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        Ok(removed)
    }

    fn entries(&self) -> impl Iterator<Item = PathBuf> {
        fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n.strip_suffix(".json"))
                    .is_some_and(|stem| {
                        stem.len() == 32 && stem.bytes().all(|b| b.is_ascii_hexdigit())
                    })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{run_sim, SimConfig, TopologyKind};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let d = std::env::temp_dir().join(format!(
            "noc-cache-test-{}-{tag}-{}",
            std::process::id(),
            // RELAXED: unique-name ticket only; nothing is published.
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_load_is_bit_exact() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::new(&dir).unwrap();
        let cfg = SimConfig {
            injection_rate: 0.1,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1)
        };
        let r = run_sim(&cfg, 50, 100);
        let d = cfg.digest(50, 100, "test/v1");
        assert!(!cache.contains(&d));
        cache.store(&d, &r).unwrap();
        assert!(cache.contains(&d));
        assert_eq!(cache.len(), 1);
        let loaded = cache.load(&d).expect("entry readable");
        assert_eq!(loaded.to_json_full(), r.to_json_full(), "bit-exact");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses_and_clear_only_owns() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::new(&dir).unwrap();
        let d = "0123456789abcdef0123456789abcdef";
        fs::write(cache.path(d), "{not json").unwrap();
        assert!(cache.load(d).is_none(), "corrupt entry is a miss");
        assert_eq!(cache.len(), 1);
        // A foreign file is neither counted nor cleared.
        fs::write(dir.join("notes.json"), "{}").unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.clear().unwrap(), 1);
        assert!(dir.join("notes.json").exists(), "foreign file survives");
        let _ = fs::remove_dir_all(&dir);
    }
}
