//! Exact stdout reproductions of the simulation figure binaries.
//!
//! Each function builds the same text the corresponding `src/bin/`
//! binary prints, character for character, but takes the simulation
//! runner as a parameter — so the binaries call these with the
//! (optionally cache-backed) [`env_runner`](crate::sweep::env_runner),
//! and `noc sweep run --preset <name>` calls them with a
//! [`cached_runner`](crate::sweep::cached_runner) over a freshly
//! populated cache. Bit-identical output between the two paths is a
//! tested invariant, not an aspiration.

use crate::figures::{sa_latency_data_with, spec_latency_data_with, SimRunner};
use crate::fmt;
use crate::points::DESIGN_POINTS;
use crate::sweep::presets::SMOKE_RATES;
use noc_core::{SpecMode, SwitchAllocatorKind};
use noc_sim::sim::latency_curve_with;
use noc_sim::{SimConfig, TopologyKind, TrafficPattern};

macro_rules! w {
    ($out:expr, $($t:tt)*) => {{
        use std::fmt::Write as _;
        let _ = write!($out, $($t)*);
    }};
}
macro_rules! wl {
    ($out:expr) => {{
        use std::fmt::Write as _;
        let _ = writeln!($out);
    }};
    ($out:expr, $($t:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($out, $($t)*);
    }};
}

/// Renders a preset's figure text, or `None` for presets without a
/// figure (never: every preset renders). Windows resolve exactly as the
/// legacy binaries resolve them (see
/// [`preset_windows`](crate::sweep::presets::preset_windows)).
pub fn render_preset(name: &str, run: &SimRunner) -> Option<String> {
    let (warmup, measure) = crate::sweep::presets::preset_windows(name)?;
    Some(match name {
        "fig13" => fig13(run, warmup, measure),
        "fig14" => fig14(run, warmup, measure),
        "ablation-traffic" => ablation_traffic(run, warmup, measure),
        "ablation-speculation" => ablation_speculation(run, warmup, measure),
        "smoke" => smoke(run, warmup, measure),
        _ => return None,
    })
}

/// Figure 13 (`fig13` binary): latency vs injection rate for the three
/// switch-allocator architectures, all six design points.
pub fn fig13(run: &SimRunner, warmup: u64, measure: u64) -> String {
    let mut out = String::new();
    wl!(out, "warmup {warmup} / measure {measure} cycles per run\n");
    for point in &DESIGN_POINTS {
        wl!(
            out,
            "--- Figure 13({}): {} — latency (cycles) vs injection rate (flits/cycle) ---",
            point.tag,
            point.label()
        );
        let curves = sa_latency_data_with(point, warmup, measure, run);
        w!(out, "{:<8}", "rate");
        for r in &curves[0].results {
            w!(out, " {:>7.3}", r.offered);
        }
        wl!(out);
        for c in &curves {
            w!(out, "{:<8}", c.label);
            for r in &c.results {
                w!(
                    out,
                    " {:>7}",
                    if r.stable {
                        fmt(r.avg_latency)
                    } else {
                        "sat".into()
                    }
                );
            }
            wl!(
                out,
                "   | saturation ~{:.3}",
                c.refined_saturation_with(warmup, measure, run)
            );
        }
        let sat_if = curves[0].refined_saturation_with(warmup, measure, run);
        let sat_wf = curves[2].refined_saturation_with(warmup, measure, run);
        if sat_if > 0.0 {
            wl!(
                out,
                "wf vs sep_if saturation: {:+.1}%",
                (sat_wf / sat_if - 1.0) * 100.0
            );
        }
        wl!(out);
    }
    wl!(
        out,
        "paper reference points: wf ~= sep_if on mesh (<4% for 2x1x4);"
    );
    wl!(out, "wf +4% on fbfly 2x2x1; wf >+20% on fbfly 2x2x4.");
    out
}

/// Figure 14 (`fig14` binary): latency vs injection rate for the three
/// speculation schemes, all six design points.
pub fn fig14(run: &SimRunner, warmup: u64, measure: u64) -> String {
    let mut out = String::new();
    wl!(out, "warmup {warmup} / measure {measure} cycles per run\n");
    for point in &DESIGN_POINTS {
        wl!(
            out,
            "--- Figure 14({}): {} — latency (cycles) vs injection rate (flits/cycle) ---",
            point.tag,
            point.label()
        );
        let curves = spec_latency_data_with(point, warmup, measure, run);
        w!(out, "{:<9}", "rate");
        for r in &curves[0].results {
            w!(out, " {:>7.3}", r.offered);
        }
        wl!(out);
        for c in &curves {
            w!(out, "{:<9}", c.label);
            for r in &c.results {
                w!(
                    out,
                    " {:>7}",
                    if r.stable {
                        fmt(r.avg_latency)
                    } else {
                        "sat".into()
                    }
                );
            }
            wl!(
                out,
                "   | saturation ~{:.3}",
                c.refined_saturation_with(warmup, measure, run)
            );
        }
        // Summaries: nonspec is index 0, conventional 1, pessimistic 2.
        let (ns, conv, pess) = (&curves[0], &curves[1], &curves[2]);
        let zl_gain = (ns.min_rate_latency() - pess.min_rate_latency()) / ns.min_rate_latency();
        wl!(
            out,
            "zero-load latency gain from speculation: {:.1}%",
            zl_gain * 100.0
        );
        let (s_ns, s_conv, s_pess) = (
            ns.refined_saturation_with(warmup, measure, run),
            conv.refined_saturation_with(warmup, measure, run),
            pess.refined_saturation_with(warmup, measure, run),
        );
        if s_ns > 0.0 && s_conv > 0.0 {
            wl!(
                out,
                "saturation: spec vs nonspec {:+.1}%, pessimistic vs conventional {:+.1}%",
                (s_pess / s_ns - 1.0) * 100.0,
                (s_pess / s_conv - 1.0) * 100.0
            );
        }
        wl!(out);
    }
    wl!(
        out,
        "paper reference points: zero-load gain up to 23% (mesh) / 14% (fbfly);"
    );
    wl!(
        out,
        "spec saturation gain 14% (mesh 2x1x1), 6% (fbfly 2x2x1), <5% elsewhere;"
    );
    wl!(out, "pessimistic loses <4% throughput vs conventional.");
    out
}

/// The traffic-pattern ablation (`ablation_traffic` binary).
pub fn ablation_traffic(run: &SimRunner, warmup: u64, measure: u64) -> String {
    let mut out = String::new();
    let base = SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2);
    let rates: Vec<f64> = (1..=8).map(|i| 0.07 * i as f64).collect();
    for pattern in [
        TrafficPattern::UniformRandom,
        TrafficPattern::BitComplement,
        TrafficPattern::Transpose,
        TrafficPattern::Tornado,
    ] {
        wl!(out, "--- {} traffic, fbfly 2x2x2 ---", pattern.label());
        for (label, kind) in [
            (
                "sep_if",
                SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
            ),
            ("wf", SwitchAllocatorKind::Wavefront),
        ] {
            let cfg = SimConfig {
                pattern,
                sa_kind: kind,
                ..base.clone()
            };
            let curve = latency_curve_with(&cfg, &rates, warmup, measure, run);
            w!(out, "{label:<8}");
            for r in &curve {
                if r.stable {
                    w!(out, " {:>7.1}", r.avg_latency);
                } else {
                    w!(out, " {:>7}", "sat");
                }
            }
            let sat = curve
                .iter()
                .filter(|r| r.stable)
                .map(|r| r.offered)
                .fold(0.0, f64::max);
            wl!(out, "  | saturation ~{sat:.3}");
        }
        wl!(out);
    }
    wl!(
        out,
        "conclusion check: wf saturation >= sep_if saturation under every pattern."
    );
    out
}

/// The speculation-efficiency ablation (`ablation_speculation` binary).
pub fn ablation_speculation(run: &SimRunner, warmup: u64, measure: u64) -> String {
    let mut out = String::new();
    for (topo, c) in [
        (TopologyKind::Mesh8x8, 1usize),
        (TopologyKind::FlattenedButterfly4x4, 4),
    ] {
        let base = SimConfig::paper_baseline(topo, c);
        wl!(out, "--- {} — speculative grant outcomes ---", base.label());
        wl!(
            out,
            "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "mode",
            "rate",
            "clean",
            "masked",
            "invalid",
            "kill_rate"
        );
        for mode in [SpecMode::Conventional, SpecMode::Pessimistic] {
            for rate in [0.05, 0.15, 0.25, 0.35] {
                let cfg = SimConfig {
                    spec_mode: mode,
                    injection_rate: rate,
                    ..base.clone()
                };
                let r = run(&cfg, warmup, measure);
                let s = r.router_stats;
                let total = s.spec_grants + s.spec_masked + s.spec_invalid;
                let kill = (s.spec_masked + s.spec_invalid) as f64 / total.max(1) as f64;
                wl!(
                    out,
                    "{:<10} {:>6.2} {:>10} {:>10} {:>10} {:>9.1}%",
                    mode.label(),
                    rate,
                    s.spec_grants,
                    s.spec_masked,
                    s.spec_invalid,
                    kill * 100.0
                );
            }
        }
        wl!(out);
    }
    wl!(
        out,
        "expectation (§5.2): kill rates converge at low load; the pessimistic"
    );
    wl!(
        out,
        "scheme discards a growing fraction as the network approaches saturation."
    );
    out
}

/// The `smoke` preset's table: the two mesh points it sweeps.
pub fn smoke(run: &SimRunner, warmup: u64, measure: u64) -> String {
    let mut out = String::new();
    let base = SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1);
    wl!(out, "{:<6} {:>9} {:>11}", "rate", "latency", "throughput");
    for rate in SMOKE_RATES {
        let cfg = SimConfig {
            injection_rate: rate,
            ..base.clone()
        };
        let r = run(&cfg, warmup, measure);
        wl!(
            out,
            "{:<6.2} {:>9.2} {:>11.3}",
            rate,
            r.avg_latency,
            r.throughput
        );
    }
    out
}
