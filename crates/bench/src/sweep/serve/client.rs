//! The `noc client` side: send one request line, stream the response.

use noc_obs::serve::ServeEvent;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// What a completed request looked like from the client side.
#[derive(Clone, Debug, Default)]
pub struct ClientOutcome {
    /// Unique digests received.
    pub unique: usize,
    /// Points before dedup.
    pub total: usize,
    /// Points the daemon scheduled for this request.
    pub scheduled: usize,
    /// Points served from cache.
    pub cache_hits: usize,
    /// Points coalesced onto other requests' work.
    pub coalesced: usize,
    /// Daemon-side wall clock for the request, in milliseconds.
    pub wall_ms: u64,
    /// Digests in arrival order.
    pub digests: Vec<String>,
}

/// Sends `request_line` to the daemon at `addr` and consumes the
/// response stream, invoking `on_event` for every parsed line (with the
/// raw line alongside, so a CLI can tee the wire verbatim). Returns on
/// the terminal line: `done` yields the outcome, `status` yields a
/// default outcome (counters come through `on_event`), `error` becomes
/// this function's error.
pub fn request(
    addr: &str,
    request_line: &str,
    mut on_event: impl FnMut(&str, &ServeEvent),
) -> Result<ClientOutcome, String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("client: cannot connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(600)));
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("client: cannot clone stream: {e}"))?;
    writeln!(writer, "{}", request_line.trim())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("client: cannot send request: {e}"))?;
    let mut outcome = ClientOutcome::default();
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("client: read failed: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let event = ServeEvent::parse(&line)?;
        on_event(&line, &event);
        match &event {
            ServeEvent::Accepted { total, unique, .. } => {
                outcome.total = *total;
                outcome.unique = *unique;
            }
            ServeEvent::Result { digest, .. } => outcome.digests.push(digest.clone()),
            ServeEvent::Done {
                unique,
                total,
                scheduled,
                cache_hits,
                coalesced,
                wall_ms,
                ..
            } => {
                outcome.unique = *unique;
                outcome.total = *total;
                outcome.scheduled = *scheduled;
                outcome.cache_hits = *cache_hits;
                outcome.coalesced = *coalesced;
                outcome.wall_ms = *wall_ms;
                if outcome.digests.len() != *unique {
                    return Err(format!(
                        "client: daemon promised {unique} results, delivered {}",
                        outcome.digests.len()
                    ));
                }
                return Ok(outcome);
            }
            ServeEvent::Status { .. } => return Ok(outcome),
            ServeEvent::Error { message, .. } => {
                return Err(format!("client: daemon refused: {message}"))
            }
        }
    }
    Err("client: connection closed before a terminal line".to_string())
}
