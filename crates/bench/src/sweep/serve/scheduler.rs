//! The deduplicating sweep scheduler behind `noc serve`.
//!
//! Every submitted point is normalized to its content digest and
//! satisfied from the cheapest source:
//!
//! 1. **cache** — the digest is already in the content-addressed store
//!    (from any earlier sweep, figure binary, daemon run, or a previous
//!    daemon life): the result is sent back immediately, nothing runs;
//! 2. **coalesced** — another request is already computing (or queued to
//!    compute) the digest: this request subscribes to that in-flight
//!    work and receives the same result when it lands;
//! 3. **scheduled** — the digest is new: it joins this client's queue on
//!    the bounded worker pool.
//!
//! Workers drain queues **round-robin across clients**, so a client
//! asking for two points is not starved behind a client asking for two
//! hundred — each scheduling turn takes one point from the next client
//! that still has queued work. Completed computations are stored in the
//! cache *then* journaled *then* announced to subscribers, preserving
//! the "journaled ⇒ cached" invariant under `kill -9` at any instant:
//! after a restart every journaled digest is served as a cache hit and
//! the daemon recomputes nothing.

use crate::sweep::cache::ResultCache;
use crate::sweep::journal::Journal;
use crate::sweep::spec::SweepPoint;
use noc_sim::{run_sim_engine, Engine, SimResult};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// One satisfied point, delivered to every subscribed request.
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// The point's content digest.
    pub digest: String,
    /// Human-readable label.
    pub label: String,
    /// How the daemon satisfied it: `cache` or `computed`.
    pub source: &'static str,
    /// Wall-clock of the satisfying action, in milliseconds.
    pub wall_ms: u64,
    /// The result.
    pub result: SimResult,
}

/// How one request's points were classified at submit time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubmitSummary {
    /// Points submitted (before in-request dedup).
    pub total: usize,
    /// Unique digests — the number of outcomes the receiver will yield.
    pub unique: usize,
    /// Digests this request put on the worker queue.
    pub scheduled: usize,
    /// Digests served straight from the cache.
    pub cache_hits: usize,
    /// Digests coalesced onto another request's in-flight work.
    pub coalesced: usize,
}

/// Daemon-lifetime counters (the `status` response body).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Points simulated since the daemon started.
    pub computed: usize,
    /// Points served from the cache since the daemon started.
    pub cache_hits: usize,
    /// Subscriptions coalesced onto in-flight work.
    pub coalesced: usize,
    /// Digests currently queued or being computed.
    pub inflight: usize,
    /// Requests accepted since the daemon started.
    pub clients: usize,
}

struct Job {
    digest: String,
    point: SweepPoint,
    engine: Engine,
}

#[derive(Default)]
struct State {
    stop: bool,
    /// digest → subscribers waiting on its computation.
    inflight: HashMap<String, Vec<Sender<PointOutcome>>>,
    /// Per-client queues of pending jobs.
    queues: HashMap<u64, VecDeque<Job>>,
    /// Round-robin order over clients with non-empty queues.
    rr: VecDeque<u64>,
    computed: usize,
    cache_hits: usize,
    coalesced: usize,
    clients: u64,
}

impl State {
    /// Takes the next job in round-robin client order.
    fn pop_next(&mut self) -> Option<Job> {
        while let Some(client) = self.rr.pop_front() {
            if let Some(queue) = self.queues.get_mut(&client) {
                if let Some(job) = queue.pop_front() {
                    if queue.is_empty() {
                        self.queues.remove(&client);
                    } else {
                        self.rr.push_back(client);
                    }
                    return Some(job);
                }
                self.queues.remove(&client);
            }
        }
        None
    }
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    cache: ResultCache,
    journal: Journal,
}

/// A poisoned scheduler lock only means a worker panicked mid-update;
/// the counters may undercount but the daemon keeps serving.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The dedup scheduler plus its worker pool. Dropping it (after
/// [`Scheduler::shutdown`]) releases the journal lock.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `workers` compute threads over `cache` + `journal`.
    pub fn new(cache: ResultCache, journal: Journal, workers: usize) -> Scheduler {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            cache,
            journal,
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Registers one request's points. Returns the receiver its outcomes
    /// arrive on (exactly `unique` of them, in completion order — cache
    /// hits are already in the channel when this returns) and the
    /// classification summary.
    pub fn submit(
        &self,
        points: &[SweepPoint],
        engine_override: Option<Engine>,
    ) -> (Receiver<PointOutcome>, SubmitSummary) {
        let (tx, rx) = mpsc::channel();
        let mut summary = SubmitSummary {
            total: points.len(),
            ..SubmitSummary::default()
        };
        let mut seen = HashSet::new();
        let mut st = lock(&self.shared.state);
        let client = st.clients;
        st.clients += 1;
        for point in points {
            let digest = point.digest();
            if !seen.insert(digest.clone()) {
                continue;
            }
            summary.unique += 1;
            if let Some(subs) = st.inflight.get_mut(&digest) {
                subs.push(tx.clone());
                st.coalesced += 1;
                summary.coalesced += 1;
            } else if let Some(result) = self.shared.cache.load(&digest) {
                // Send cannot fail: we still hold the matching receiver.
                let _ = tx.send(PointOutcome {
                    digest,
                    label: point.label.clone(),
                    source: "cache",
                    wall_ms: 0,
                    result,
                });
                st.cache_hits += 1;
                summary.cache_hits += 1;
            } else {
                st.inflight.insert(digest.clone(), vec![tx.clone()]);
                st.queues.entry(client).or_default().push_back(Job {
                    digest,
                    point: point.clone(),
                    engine: engine_override.unwrap_or(point.engine),
                });
                summary.scheduled += 1;
            }
        }
        if summary.scheduled > 0 {
            st.rr.push_back(client);
            drop(st);
            self.shared.work.notify_all();
        }
        (rx, summary)
    }

    /// Daemon-lifetime counters.
    pub fn counters(&self) -> ServeCounters {
        let st = lock(&self.shared.state);
        ServeCounters {
            computed: st.computed,
            cache_hits: st.cache_hits,
            coalesced: st.coalesced,
            inflight: st.inflight.len(),
            clients: st.clients as usize,
        }
    }

    /// The journal file path (for status displays and tests).
    pub fn journal_path(&self) -> std::path::PathBuf {
        self.shared.journal.path().to_path_buf()
    }

    /// Stops the workers and waits for them to exit. In-flight
    /// computations finish (and are cached + journaled); queued work is
    /// abandoned — subscribers see their channel close.
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.shared.state);
            st.stop = true;
            // Abandoned queued jobs: dropping them closes their
            // subscribers' channels, so blocked handlers unblock.
            st.queues.clear();
            st.rr.clear();
            st.inflight.clear();
        }
        self.shared.work.notify_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut w = self
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *w)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.stop {
                    return;
                }
                if let Some(job) = st.pop_next() {
                    break job;
                }
                st = shared
                    .work
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let t0 = Instant::now();
        let result = run_sim_engine(
            &job.point.cfg,
            job.point.warmup,
            job.point.measure,
            job.engine,
        );
        let wall_ms = t0.elapsed().as_millis() as u64;
        // Store, then journal, then announce: a crash between any two
        // steps leaves "journaled ⇒ cached" intact, and a submit that
        // races the announcement finds the cache entry already durable.
        if let Err(e) = shared.cache.store(&job.digest, &result) {
            eprintln!("serve: warning: {e}");
        }
        if let Err(e) = shared
            .journal
            .append(&job.digest, &job.point.label, "computed", wall_ms)
        {
            eprintln!("serve: warning: {e}");
        }
        let subscribers = {
            let mut st = lock(&shared.state);
            st.computed += 1;
            st.inflight.remove(&job.digest).unwrap_or_default()
        };
        for tx in subscribers {
            // A subscriber whose client disconnected is simply gone.
            let _ = tx.send(PointOutcome {
                digest: job.digest.clone(),
                label: job.point.label.clone(),
                source: "computed",
                wall_ms,
                result: result.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::journal::JournalHeader;
    use crate::sweep::presets::smoke_spec;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let d = std::env::temp_dir().join(format!(
            "noc-sched-test-{}-{tag}-{}",
            std::process::id(),
            // RELAXED: unique-name ticket only; nothing is published.
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn scheduler(dir: &Path, workers: usize) -> Scheduler {
        let cache = ResultCache::new(&dir.join("cache")).unwrap();
        let header = JournalHeader {
            name: "test-serve".into(),
            spec_digest: "a".repeat(32),
            points: 0,
        };
        let (journal, _) = Journal::open(&dir.join("serve.journal"), &header).unwrap();
        Scheduler::new(cache, journal, workers)
    }

    /// Two overlapping submissions: the shared digests are computed once
    /// (second submitter coalesces or cache-hits, never schedules), and
    /// both receive every result.
    #[test]
    fn overlapping_submissions_share_work() {
        let dir = tmp_dir("overlap");
        let sched = scheduler(&dir, 2);
        let points = smoke_spec(50, 100).expand();
        assert_eq!(points.len(), 2);
        let (rx1, s1) = sched.submit(&points, None);
        let (rx2, s2) = sched.submit(&points, None);
        assert_eq!((s1.unique, s1.scheduled), (2, 2));
        assert_eq!(s2.unique, 2);
        assert_eq!(s2.scheduled, 0, "second submitter never schedules");
        assert_eq!(s2.coalesced + s2.cache_hits, 2);
        let a: Vec<PointOutcome> = rx1.iter().take(2).collect();
        let b: Vec<PointOutcome> = rx2.iter().take(2).collect();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.result.to_json_full(), y.result.to_json_full());
        }
        let c = sched.counters();
        assert_eq!(c.computed, 2, "each shared digest computed exactly once");
        assert_eq!(c.inflight, 0);
        // A third submission after completion is all cache hits.
        let (rx3, s3) = sched.submit(&points, None);
        assert_eq!(s3.cache_hits, 2);
        assert_eq!(rx3.iter().take(2).count(), 2);
        assert_eq!(sched.counters().computed, 2);
        sched.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// In-request duplicate points collapse to one outcome.
    #[test]
    fn duplicate_points_within_a_request_dedup() {
        let dir = tmp_dir("dup");
        let sched = scheduler(&dir, 1);
        let mut points = smoke_spec(50, 100).expand();
        points.push(points[0].clone());
        let (rx, s) = sched.submit(&points, None);
        assert_eq!((s.total, s.unique, s.scheduled), (3, 2, 2));
        assert_eq!(rx.iter().take(2).count(), 2);
        sched.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Round-robin fairness at the queue level (deterministic — no
    /// worker timing involved): a two-point client enqueued behind a
    /// six-point client gets every other scheduling turn, so its last
    /// point leaves the queue third, not eighth.
    #[test]
    fn round_robin_interleaves_clients() {
        let template = &smoke_spec(50, 100).expand()[0];
        let mut st = State::default();
        for (client, count) in [(0u64, 6usize), (1, 2)] {
            let queue: VecDeque<Job> = (0..count)
                .map(|i| Job {
                    digest: format!("c{client}-{i}"),
                    point: template.clone(),
                    engine: Engine::Sequential,
                })
                .collect();
            st.queues.insert(client, queue);
            st.rr.push_back(client);
        }
        let order: Vec<String> = std::iter::from_fn(|| st.pop_next().map(|j| j.digest)).collect();
        assert_eq!(
            order,
            [
                "c0-0", "c1-0", "c0-1", "c1-1", // alternating turns
                "c0-2", "c0-3", "c0-4", "c0-5", // then the long tail
            ]
        );
        assert!(st.queues.is_empty() && st.rr.is_empty());
    }
}
