//! The `noc serve` daemon: local TCP front end over the dedup scheduler.
//!
//! One connection carries one request: the client sends a single
//! `noc-serve/v1` JSON line, the daemon streams JSONL back (see
//! `noc_obs::serve` for the wire format) and closes. The accept loop is
//! nonblocking and polls a stop flag, each connection gets its own
//! handler thread, and all simulation happens on the scheduler's bounded
//! worker pool — so a hundred idle clients cost a hundred parked
//! threads, never a hundred concurrent simulations.
//!
//! Durability is the sweep machinery's: results land in the
//! content-addressed cache (atomic first-wins publish, fsynced file and
//! directory), completions in the fsynced `noc-serve.journal`, and the
//! journal's advisory lock makes daemon-vs-sweep and daemon-vs-daemon
//! collisions on one output directory a clean "already locked by pid"
//! refusal. After `kill -9`, a restarted daemon recovers the stale lock
//! and serves every previously computed digest from the cache —
//! recomputing nothing.

use crate::sweep::cache::ResultCache;
use crate::sweep::journal::{Journal, JournalHeader};
use crate::sweep::serve::proto::ServeRequest;
use crate::sweep::serve::scheduler::{Scheduler, ServeCounters};
use noc_obs::serve::{
    serve_accepted_line, serve_done_line, serve_error_line, serve_result_line, serve_status_line,
    SERVE_SCHEMA,
};
use noc_sim::digest_pairs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the daemon listens and where its state lives.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address; port 0 picks a free port (reported by
    /// [`Daemon::addr`]).
    pub addr: String,
    /// Content-addressed result store (shared with `noc sweep`).
    pub cache_dir: PathBuf,
    /// Journal directory.
    pub out_dir: PathBuf,
    /// Worker-pool width (simulations running concurrently).
    pub workers: usize,
    /// Suppress per-connection stderr notes.
    pub quiet: bool,
}

impl ServeOptions {
    /// Loopback on a free port, repo-conventional directories, and a
    /// worker per available core (capped at 8).
    pub fn default_dirs() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: PathBuf::from("results/cache"),
            out_dir: PathBuf::from("results/sweeps"),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            quiet: false,
        }
    }
}

/// The serve journal's fixed header. The daemon serves arbitrary specs,
/// so unlike a sweep journal it is not bound to one spec digest — the
/// header digests the schema tag instead, constant across restarts so
/// [`Journal::open`]'s header equality check accepts the reopened file.
fn serve_journal_header() -> JournalHeader {
    JournalHeader {
        name: "noc-serve".to_string(),
        spec_digest: digest_pairs(&[("schema".to_string(), SERVE_SCHEMA.to_string())]),
        points: 0,
    }
}

/// A running serve daemon. Dropping it without [`Daemon::shutdown`]
/// leaks the accept/handler/worker threads (the process-exit path);
/// shut down gracefully to release the journal lock in-process.
pub struct Daemon {
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Starts the daemon: opens cache + journal (taking the journal lock),
/// spins up the worker pool, binds the listener, and begins accepting.
pub fn start(opts: &ServeOptions) -> Result<Daemon, String> {
    let cache = ResultCache::new(&opts.cache_dir)?;
    let journal_path = opts.out_dir.join("noc-serve.journal");
    let (journal, done) = Journal::open(&journal_path, &serve_journal_header())?;
    let scheduler = Arc::new(Scheduler::new(cache, journal, opts.workers));
    let listener = TcpListener::bind(&opts.addr)
        .map_err(|e| format!("serve: cannot bind {}: {e}", opts.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("serve: no local addr: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("serve: cannot set nonblocking: {e}"))?;
    if !opts.quiet {
        eprintln!(
            "[serve] listening on {addr} — {} workers, {} journaled digests, cache {}",
            opts.workers,
            done.len(),
            opts.cache_dir.display()
        );
    }
    let stop = Arc::new(AtomicBool::new(false));
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let stop = Arc::clone(&stop);
        let handlers = Arc::clone(&handlers);
        let scheduler = Arc::clone(&scheduler);
        let quiet = opts.quiet;
        std::thread::spawn(move || accept_loop(&listener, &stop, &handlers, &scheduler, quiet))
    };
    Ok(Daemon {
        addr,
        scheduler,
        stop,
        accept: Some(accept),
        handlers,
    })
}

impl Daemon {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Daemon-lifetime counters.
    pub fn counters(&self) -> ServeCounters {
        self.scheduler.counters()
    }

    /// The serve journal path.
    pub fn journal_path(&self) -> PathBuf {
        self.scheduler.journal_path()
    }

    /// Blocks until the accept loop exits — i.e. forever, for a
    /// foreground `noc serve` (the process ends by signal).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: stop accepting, join connection handlers,
    /// stop the workers, release the journal lock. Returns the final
    /// counters.
    pub fn shutdown(mut self) -> ServeCounters {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut h = self
                .handlers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *h)
        };
        for h in handles {
            let _ = h.join();
        }
        let counters = self.scheduler.counters();
        self.scheduler.shutdown();
        counters
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    handlers: &Mutex<Vec<JoinHandle<()>>>,
    scheduler: &Arc<Scheduler>,
    quiet: bool,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let scheduler = Arc::clone(scheduler);
                let handle =
                    std::thread::spawn(move || handle_connection(stream, &scheduler, quiet));
                let mut h = handlers
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                // Reap finished handlers so a long-lived daemon does not
                // accumulate one parked JoinHandle per past connection.
                h.retain(|j| !j.is_finished());
                h.push(handle);
                if !quiet {
                    eprintln!("[serve] connection from {peer}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("[serve] accept error: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Serves one connection: read one request line, stream the response.
/// Write failures mean the client hung up — the handler just exits; any
/// computation already scheduled still completes and lands in the cache.
fn handle_connection(stream: TcpStream, scheduler: &Scheduler, quiet: bool) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[serve] cannot clone stream: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        let _ = writeln!(writer, "{}", serve_error_line("", "request: empty line"));
        return;
    }
    let request = match ServeRequest::parse(line.trim()) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(writer, "{}", serve_error_line("", &e));
            let _ = writer.flush();
            return;
        }
    };
    match request {
        ServeRequest::Status { id } => {
            let c = scheduler.counters();
            let _ = writeln!(
                writer,
                "{}",
                serve_status_line(
                    &id,
                    c.computed,
                    c.cache_hits,
                    c.coalesced,
                    c.inflight,
                    c.clients
                )
            );
            let _ = writer.flush();
        }
        ServeRequest::Sweep { id, spec, engine } => {
            let t0 = Instant::now();
            let points = spec.expand();
            let (rx, summary) = scheduler.submit(&points, engine);
            if !quiet {
                eprintln!(
                    "[serve] {id}: '{}' — {} points, {} unique ({} scheduled, {} cache, {} coalesced)",
                    spec.name,
                    summary.total,
                    summary.unique,
                    summary.scheduled,
                    summary.cache_hits,
                    summary.coalesced
                );
            }
            if writeln!(
                writer,
                "{}",
                serve_accepted_line(&id, summary.total, summary.unique)
            )
            .and_then(|()| writer.flush())
            .is_err()
            {
                return;
            }
            for _ in 0..summary.unique {
                let outcome = match rx.recv() {
                    Ok(o) => o,
                    Err(_) => {
                        // Workers shut down with this request's queued
                        // points abandoned.
                        let _ = writeln!(
                            writer,
                            "{}",
                            serve_error_line(&id, "daemon shutting down before completion")
                        );
                        let _ = writer.flush();
                        return;
                    }
                };
                if writeln!(
                    writer,
                    "{}",
                    serve_result_line(
                        &id,
                        &outcome.digest,
                        &outcome.label,
                        outcome.source,
                        outcome.wall_ms,
                        &outcome.result.to_json_full()
                    )
                )
                .and_then(|()| writer.flush())
                .is_err()
                {
                    return;
                }
            }
            let _ = writeln!(
                writer,
                "{}",
                serve_done_line(
                    &id,
                    summary.unique,
                    summary.total,
                    summary.scheduled,
                    summary.cache_hits,
                    summary.coalesced,
                    t0.elapsed().as_millis() as u64
                )
            );
            let _ = writer.flush();
        }
    }
}
