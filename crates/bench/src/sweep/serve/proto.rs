//! Daemon-side parsing of `noc-serve/v1` request lines.
//!
//! The wire framing (schema tag, line builders, client-side event
//! parser) lives in `noc_obs::serve`; this module turns an incoming
//! request line into a validated [`ServeRequest`] — resolving presets by
//! name and embedded specs through the full [`SweepSpec`] grammar, so a
//! malformed request is refused with the same diagnostics `noc sweep`
//! would print.

use crate::sweep::presets::preset;
use crate::sweep::spec::SweepSpec;
use noc_obs::serve::SERVE_SCHEMA;
use noc_obs::JsonValue;
use noc_sim::Engine;

/// A parsed, validated serve request.
#[derive(Debug)]
pub enum ServeRequest {
    /// Run (or fetch) every point of a sweep spec.
    Sweep {
        /// Client-chosen request id, echoed on every response line.
        id: String,
        /// The validated spec.
        spec: SweepSpec,
        /// Engine override for every point of this request.
        engine: Option<Engine>,
    },
    /// Report daemon-lifetime counters.
    Status {
        /// Client-chosen request id.
        id: String,
    },
}

impl ServeRequest {
    /// The request id (present on every variant).
    pub fn id(&self) -> &str {
        match self {
            ServeRequest::Sweep { id, .. } | ServeRequest::Status { id } => id,
        }
    }

    /// Parses one request line. Errors are client-facing: they become
    /// the `message` of an `error` response line.
    pub fn parse(line: &str) -> Result<ServeRequest, String> {
        let v = JsonValue::parse(line).map_err(|e| format!("request: {e}"))?;
        let schema = v.get("schema").and_then(JsonValue::as_str).unwrap_or("");
        if schema != SERVE_SCHEMA {
            return Err(format!(
                "request: schema '{schema}' is not {SERVE_SCHEMA} — client and daemon disagree"
            ));
        }
        let id = v
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or("request: missing string field 'id'")?
            .to_string();
        if id.len() > 64 {
            return Err("request: 'id' longer than 64 bytes".to_string());
        }
        let engine = match v.get("engine") {
            None => None,
            Some(e) => {
                let name = e.as_str().ok_or("request: 'engine' must be a string")?;
                Some(
                    Engine::parse(name)
                        .ok_or_else(|| format!("request: unknown engine '{name}'"))?,
                )
            }
        };
        match v.get("type").and_then(JsonValue::as_str) {
            Some("sweep") => {
                let spec_v = v.get("spec").ok_or("request: sweep without 'spec'")?;
                let spec = SweepSpec::from_value(spec_v)?;
                Ok(ServeRequest::Sweep { id, spec, engine })
            }
            Some("preset") => {
                let name = v
                    .get("preset")
                    .and_then(JsonValue::as_str)
                    .ok_or("request: preset without string field 'preset'")?;
                let spec =
                    preset(name).ok_or_else(|| format!("request: unknown preset '{name}'"))?;
                Ok(ServeRequest::Sweep { id, spec, engine })
            }
            Some("status") => Ok(ServeRequest::Status { id }),
            other => Err(format!("request: unknown type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_obs::serve::{
        serve_preset_request_line, serve_status_request_line, serve_sweep_request_line,
    };

    #[test]
    fn sweep_requests_parse_through_the_full_spec_grammar() {
        let line = serve_sweep_request_line(
            "c1",
            r#"{"name":"t","grids":[{"topology":"mesh","vcs":1,"rates":[0.05],"warmup":10,"measure":20}]}"#,
            Some("seq"),
        );
        match ServeRequest::parse(&line).unwrap() {
            ServeRequest::Sweep { id, spec, engine } => {
                assert_eq!(id, "c1");
                assert_eq!(spec.expand().len(), 1);
                assert_eq!(engine, Some(Engine::Sequential));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn preset_and_status_requests_resolve() {
        let line = serve_preset_request_line("p", "smoke", None);
        match ServeRequest::parse(&line).unwrap() {
            ServeRequest::Sweep { spec, engine, .. } => {
                assert_eq!(spec.name, "smoke");
                assert_eq!(spec.expand().len(), 2);
                assert_eq!(engine, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            ServeRequest::parse(&serve_status_request_line("s")).unwrap(),
            ServeRequest::Status { .. }
        ));
    }

    #[test]
    fn bad_requests_are_refused_with_client_facing_messages() {
        for (line, needle) in [
            ("not json", "request:"),
            (
                r#"{"schema":"noc-sweep/v1","type":"status","id":"x"}"#,
                "schema",
            ),
            (
                r#"{"schema":"noc-serve/v1","type":"status"}"#,
                "missing string field 'id'",
            ),
            (
                r#"{"schema":"noc-serve/v1","type":"preset","id":"x","preset":"fig99"}"#,
                "unknown preset",
            ),
            (
                r#"{"schema":"noc-serve/v1","type":"sweep","id":"x","spec":{"name":"t","grids":[{"ratess":[0.1]}]}}"#,
                "unknown grid key",
            ),
            (
                r#"{"schema":"noc-serve/v1","type":"sweep","id":"x","engine":"warp","spec":{"name":"t","grids":[{}]}}"#,
                "unknown engine",
            ),
            (
                r#"{"schema":"noc-serve/v1","type":"frobnicate","id":"x"}"#,
                "unknown type",
            ),
        ] {
            let err = ServeRequest::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }
}
