//! Sweep-as-a-service (`noc serve` / `noc client`).
//!
//! The batch sweep machinery — content-addressed cache, fsynced journal,
//! deterministic spec expansion — already makes any two runs of the same
//! point interchangeable. This module puts a daemon in front of it so
//! *concurrent* consumers share that property live: N clients hammering
//! overlapping grids over local TCP, every unique `SimConfig` digest
//! simulated at most once, ever, across requests, restarts, and
//! `kill -9`.
//!
//! Layering:
//!
//! - [`proto`]: daemon-side request parsing ([`ServeRequest`]) — the
//!   wire format itself is `noc_obs::serve` (`noc-serve/v1`).
//! - [`scheduler`]: the dedup core — cache-hit / coalesce / schedule
//!   classification, per-client queues drained round-robin by a bounded
//!   worker pool, completions stored → journaled → announced.
//! - [`daemon`]: nonblocking TCP accept loop + per-connection handler
//!   threads streaming JSONL responses.
//! - [`client`]: one-request client used by `noc client` and the tests.
//! - [`selftest`]: the built-in load driver (`noc serve --selftest N`).

pub mod client;
pub mod daemon;
pub mod proto;
pub mod scheduler;
pub mod selftest;

pub use client::{request, ClientOutcome};
pub use daemon::{start, Daemon, ServeOptions};
pub use proto::ServeRequest;
pub use scheduler::{PointOutcome, Scheduler, ServeCounters, SubmitSummary};
pub use selftest::run_selftest;
