//! `noc serve --selftest N`: the built-in load driver.
//!
//! Fires `N` concurrent clients at an in-process daemon, each requesting
//! the smoke preset's grid plus one client-unique rate — so every pair
//! of clients overlaps on the smoke points and differs on one. The test
//! then asserts the daemon's computed-point counter equals the number of
//! unique digests across all requests (every shared point computed
//! exactly once), restarts the daemon over the same directories, replays
//! the union of every grid, and asserts zero recomputation.

use crate::sweep::presets::{preset_windows, SMOKE_RATES};
use crate::sweep::serve::client::{request, ClientOutcome};
use crate::sweep::serve::daemon::{start, ServeOptions};
use crate::sweep::spec::SweepSpec;
use noc_obs::serve::serve_sweep_request_line;
use std::collections::HashSet;
use std::path::Path;

/// The client-unique extra injection rate for client `i`. Divides so the
/// double's shortest decimal form (what lands in the request JSON)
/// parses back to the identical double — the wire round-trip preserves
/// digests.
fn extra_rate(i: usize) -> f64 {
    (i as f64 + 1.0) / 100.0
}

/// The selftest sweep spec as request-line JSON: smoke's grid plus
/// `extras`.
fn spec_json(warmup: u64, measure: u64, extras: &[f64]) -> String {
    let rates: Vec<String> = SMOKE_RATES
        .iter()
        .chain(extras.iter())
        .map(|r| format!("{r}"))
        .collect();
    format!(
        "{{\"name\":\"selftest\",\"grids\":[{{\"topology\":\"mesh\",\"vcs\":1,\"rates\":[{}],\"warmup\":{warmup},\"measure\":{measure}}}]}}",
        rates.join(",")
    )
}

fn check_client(i: usize, outcome: &ClientOutcome, want_unique: usize) -> Result<(), String> {
    if outcome.unique != want_unique {
        return Err(format!(
            "selftest: client {i} got {} unique points, wanted {want_unique}",
            outcome.unique
        ));
    }
    let accounted = outcome.scheduled + outcome.cache_hits + outcome.coalesced;
    if accounted != outcome.unique {
        return Err(format!(
            "selftest: client {i} accounting leak: {} scheduled + {} cache + {} coalesced != {} unique",
            outcome.scheduled, outcome.cache_hits, outcome.coalesced, outcome.unique
        ));
    }
    Ok(())
}

/// Runs the two-phase selftest against fresh daemon instances over
/// `cache_dir`/`out_dir`. Prints one summary line per phase on success.
pub fn run_selftest(
    clients: usize,
    cache_dir: &Path,
    out_dir: &Path,
    workers: usize,
) -> Result<(), String> {
    let clients = clients.max(1);
    let (warmup, measure) = preset_windows("smoke").ok_or("selftest: smoke preset missing")?;
    let specs: Vec<String> = (0..clients)
        .map(|i| spec_json(warmup, measure, &[extra_rate(i)]))
        .collect();
    // The ground truth the daemon's counter must match: unique digests
    // across all requests, computed independently of the daemon.
    let mut expected = HashSet::new();
    for s in &specs {
        for p in SweepSpec::from_json(s)?.expand() {
            expected.insert(p.digest());
        }
    }
    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: cache_dir.to_path_buf(),
        out_dir: out_dir.to_path_buf(),
        workers,
        quiet: true,
    };

    // Phase 1: N concurrent overlapping clients against a fresh daemon.
    let daemon = start(&opts)?;
    let addr = daemon.addr().to_string();
    let outcomes: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let addr = addr.as_str();
                scope.spawn(move || {
                    let line = serve_sweep_request_line(&format!("selftest-{i}"), spec, None);
                    request(addr, &line, |_, _| {})
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("selftest: client thread panicked".to_string()))
            })
            .collect()
    });
    let per_point = SMOKE_RATES.len() + 1;
    for (i, outcome) in outcomes.iter().enumerate() {
        let outcome = outcome.as_ref().map_err(|e| format!("client {i}: {e}"))?;
        check_client(i, outcome, per_point)?;
    }
    let counters = daemon.shutdown();
    if counters.computed != expected.len() {
        return Err(format!(
            "selftest: dedup FAILED — computed {} points for {} unique digests \
             (shared points were recomputed)",
            counters.computed,
            expected.len()
        ));
    }
    println!(
        "serve selftest: {clients} clients x {per_point} points, {} unique digests, computed={} — dedup OK",
        expected.len(),
        counters.computed
    );

    // Phase 2: restart over the same directories, replay the union of
    // every grid in one request — everything must come from the cache.
    let extras: Vec<f64> = (0..clients).map(extra_rate).collect();
    let union = spec_json(warmup, measure, &extras);
    let daemon = start(&opts)?;
    let addr = daemon.addr().to_string();
    let line = serve_sweep_request_line("selftest-union", &union, None);
    let outcome = request(&addr, &line, |_, _| {})?;
    let counters = daemon.shutdown();
    if counters.computed != 0 || outcome.cache_hits != outcome.unique {
        return Err(format!(
            "selftest: restart FAILED — recomputed {} points, {} of {} from cache \
             (wanted 0 recomputed, all cached)",
            counters.computed, outcome.cache_hits, outcome.unique
        ));
    }
    println!(
        "serve selftest: restart served {} points with 0 recomputed — resume OK",
        outcome.unique
    );
    Ok(())
}
