//! Resumable experiment sweeps (`noc sweep`).
//!
//! A sweep is a declarative grid over simulator configurations —
//! topology × allocator × speculation × traffic × rate × seed — that runs
//! with bounded parallelism, caches every point by content digest, and
//! journals completions so an interrupted sweep resumes with **zero
//! recomputation**. The figure binaries (`fig13`, `fig14`, the
//! simulation ablations) are thin wrappers over the same machinery, so a
//! preset sweep and a legacy binary produce bit-identical stdout.
//!
//! Layering:
//!
//! - [`spec`]: the sweep grammar — [`SweepSpec`] / [`SweepGrid`] with a
//!   deterministic cartesian [`SweepSpec::expand`], JSON parsing, and a
//!   spec-level content digest.
//! - [`cache`]: the content-addressed result store. One JSON file per
//!   point, keyed by `SimConfig::digest` (config + run window + schema),
//!   written atomically, round-tripping [`SimResult`] bit-exactly.
//! - [`journal`]: the crash-safe completion log — an append-only JSONL
//!   file, fsynced per record, validated against the spec digest on
//!   resume.
//! - [`runner`]: [`run_sweep`] — journal-skip / cache-hit / compute
//!   accounting, `run_many` parallelism, progress + ETA on stderr, and a
//!   manifest export; plus [`cached_runner`]/[`env_runner`] which give the
//!   figure renderers a cache-backed `run_sim`.
//! - [`presets`]: the in-repo sweeps covering the simulation figures and
//!   ablations, plus a CI-sized `smoke` preset.
//! - [`render`]: exact stdout reproductions of the legacy figure
//!   binaries, parameterized by runner.
//! - [`serve`]: sweep-as-a-service — the `noc serve` daemon deduplicating
//!   concurrent clients' overlapping grids against the same cache and
//!   journal.

pub mod cache;
pub mod journal;
pub mod presets;
pub mod render;
pub mod runner;
pub mod serve;
pub mod spec;

pub use cache::ResultCache;
pub use journal::{Journal, JournalHeader};
pub use presets::{preset, preset_names, preset_windows};
pub use runner::{cached_runner, env_runner, run_sweep, SweepOptions, SweepOutcome};
pub use spec::{SweepGrid, SweepPoint, SweepSpec};

/// Cache/journal schema version. Participates in every point digest, so
/// bumping it invalidates all cached results and journals at once — do
/// that whenever simulator semantics or the result format change.
pub const SWEEP_SCHEMA: &str = "noc-sweep/v1";

/// Escapes a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
