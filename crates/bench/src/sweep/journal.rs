//! Crash-safe sweep completion journal.
//!
//! An append-only JSONL file: the first line is a header binding the
//! journal to a sweep name, spec digest, and point count; every later
//! line records one completed point. Records are flushed and fsynced as
//! they are appended, so after a crash the journal holds exactly the
//! points whose results were durably cached — a resumed sweep re-runs
//! nothing. A torn final line (the one write a crash can interrupt) is
//! ignored on load.
//!
//! The header validation is strict: resuming a journal whose spec digest
//! does not match the current spec is an error, not a silent partial
//! reuse — results remain shareable through the content-addressed cache
//! regardless, so nothing is lost by refusing.

use crate::sweep::json_escape;
use noc_obs::JsonValue;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The identity a journal is bound to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// Sweep name.
    pub name: String,
    /// Digest of the expanded sweep spec.
    pub spec_digest: String,
    /// Number of points in the sweep.
    pub points: usize,
}

impl JournalHeader {
    fn to_line(&self) -> String {
        format!(
            "{{\"schema\":\"noc-sweep-journal/v1\",\"name\":\"{}\",\"spec_digest\":\"{}\",\"points\":{}}}",
            json_escape(&self.name),
            json_escape(&self.spec_digest),
            self.points
        )
    }

    fn parse(line: &str) -> Option<JournalHeader> {
        let v = JsonValue::parse(line).ok()?;
        if v.get("schema")?.as_str()? != "noc-sweep-journal/v1" {
            return None;
        }
        Some(JournalHeader {
            name: v.get("name")?.as_str()?.to_string(),
            spec_digest: v.get("spec_digest")?.as_str()?.to_string(),
            points: v.get("points")?.as_f64()? as usize,
        })
    }
}

/// An open, appendable sweep journal.
#[derive(Debug)]
pub struct Journal {
    writer: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl Journal {
    /// Opens the journal at `path`, creating it with `header` if absent.
    /// Returns the journal and the set of point digests already recorded
    /// as complete. An existing journal must carry the same header
    /// (name, spec digest, point count); otherwise this errors with a
    /// hint to `noc sweep clean` or rename the sweep.
    pub fn open(path: &Path, header: &JournalHeader) -> Result<(Journal, HashSet<String>), String> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("journal: cannot create {}: {e}", parent.display()))?;
        }
        let mut done = HashSet::new();
        let exists = path.exists();
        if exists {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("journal: cannot read {}: {e}", path.display()))?;
            let mut lines = text.lines();
            let head = lines
                .next()
                .and_then(JournalHeader::parse)
                .ok_or_else(|| format!("journal: {} has no valid header", path.display()))?;
            if head != *header {
                return Err(format!(
                    "journal: {} was written by a different sweep \
                     (name '{}', spec {}, {} points; current: name '{}', spec {}, {} points) — \
                     run `noc sweep clean` or use a different sweep name",
                    path.display(),
                    head.name,
                    head.spec_digest,
                    head.points,
                    header.name,
                    header.spec_digest,
                    header.points
                ));
            }
            for line in lines {
                // Skip anything unparseable — at most the torn final
                // record of a crashed run; its result is either in the
                // cache (hit) or recomputed (miss), both correct.
                if let Ok(v) = JsonValue::parse(line) {
                    if let Some(d) = v.get("digest").and_then(JsonValue::as_str) {
                        done.insert(d.to_string());
                    }
                }
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("journal: cannot open {}: {e}", path.display()))?;
        if !exists {
            writeln!(file, "{}", header.to_line())
                .map_err(|e| format!("journal: cannot write header: {e}"))?;
            file.sync_data()
                .map_err(|e| format!("journal: cannot sync header: {e}"))?;
        }
        Ok((
            Journal {
                writer: Mutex::new(BufWriter::new(file)),
                path: path.to_path_buf(),
            },
            done,
        ))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed-point record durably (flush + fsync before
    /// returning). `source` records how the point was satisfied
    /// (`computed` or `cache`).
    pub fn append(
        &self,
        digest: &str,
        label: &str,
        source: &str,
        wall_ms: u64,
    ) -> Result<(), String> {
        let line = format!(
            "{{\"digest\":\"{}\",\"label\":\"{}\",\"source\":\"{}\",\"wall_ms\":{}}}",
            json_escape(digest),
            json_escape(label),
            json_escape(source),
            wall_ms
        );
        let mut w = self
            .writer
            .lock()
            .map_err(|_| "journal: writer poisoned".to_string())?;
        writeln!(w, "{line}").map_err(|e| format!("journal: append failed: {e}"))?;
        w.flush()
            .map_err(|e| format!("journal: flush failed: {e}"))?;
        w.get_ref()
            .sync_data()
            .map_err(|e| format!("journal: sync failed: {e}"))?;
        Ok(())
    }
}

/// Reads a journal's header and completed-point count without opening it
/// for writing (used by `noc sweep status`).
pub fn read_status(path: &Path) -> Option<(JournalHeader, usize)> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header = JournalHeader::parse(lines.next()?)?;
    let done = lines.filter(|l| JsonValue::parse(l).is_ok()).count();
    Some((header, done))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "noc-journal-test-{}-{tag}-{}.journal",
            std::process::id(),
            // RELAXED: unique-name ticket only; nothing is published.
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn header() -> JournalHeader {
        JournalHeader {
            name: "t".into(),
            spec_digest: "d".repeat(32),
            points: 3,
        }
    }

    #[test]
    fn append_then_reopen_recovers_done_set() {
        let path = tmp_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let (j, done) = Journal::open(&path, &header()).unwrap();
            assert!(done.is_empty());
            j.append("aa", "point a", "computed", 12).unwrap();
            j.append("bb", "point b", "cache", 0).unwrap();
        }
        let (_, done) = Journal::open(&path, &header()).unwrap();
        assert_eq!(done.len(), 2);
        assert!(done.contains("aa") && done.contains("bb"));
        let (head, n) = read_status(&path).unwrap();
        assert_eq!(head, header());
        assert_eq!(n, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_ignored() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (j, _) = Journal::open(&path, &header()).unwrap();
            j.append("aa", "point a", "computed", 1).unwrap();
        }
        // Simulate a crash mid-append: a truncated record with no newline.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"digest\":\"cc\",\"lab").unwrap();
        drop(f);
        let (_, done) = Journal::open(&path, &header()).unwrap();
        assert_eq!(done.len(), 1, "torn record does not count as done");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_header_is_refused() {
        let path = tmp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        let (_, _) = Journal::open(&path, &header()).unwrap();
        let other = JournalHeader {
            spec_digest: "e".repeat(32),
            ..header()
        };
        let err = Journal::open(&path, &other).unwrap_err();
        assert!(err.contains("different sweep"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
