//! Crash-safe sweep completion journal.
//!
//! An append-only JSONL file: the first line is a header binding the
//! journal to a sweep name, spec digest, and point count; every later
//! line records one completed point. Records are flushed and fsynced as
//! they are appended, so after a crash the journal holds exactly the
//! points whose results were durably cached — a resumed sweep re-runs
//! nothing. A torn final line (the one write a crash can interrupt) is
//! ignored on load.
//!
//! The header validation is strict: resuming a journal whose spec digest
//! does not match the current spec is an error, not a silent partial
//! reuse — results remain shareable through the content-addressed cache
//! regardless, so nothing is lost by refusing.
//!
//! A journal is **single-writer by construction**: [`Journal::open`]
//! takes an advisory `<journal>.lock` file naming the holder's pid, so a
//! second `noc sweep run` (or a sweep racing the `noc serve` daemon)
//! against the same journal fails fast with "already locked by pid N"
//! instead of interleaving appends past the torn-tail tolerance. A lock
//! left behind by `kill -9` is recovered automatically once its pid is
//! gone. Durability is likewise explicit: the parent directory is
//! fsynced after the journal file (and its lock) are created, so a crash
//! cannot erase a journal whose records were already fsynced.

use crate::sweep::cache::sync_dir;
use crate::sweep::json_escape;
use noc_obs::JsonValue;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The identity a journal is bound to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// Sweep name.
    pub name: String,
    /// Digest of the expanded sweep spec.
    pub spec_digest: String,
    /// Number of points in the sweep.
    pub points: usize,
}

impl JournalHeader {
    fn to_line(&self) -> String {
        format!(
            "{{\"schema\":\"noc-sweep-journal/v1\",\"name\":\"{}\",\"spec_digest\":\"{}\",\"points\":{}}}",
            json_escape(&self.name),
            json_escape(&self.spec_digest),
            self.points
        )
    }

    fn parse(line: &str) -> Option<JournalHeader> {
        let v = JsonValue::parse(line).ok()?;
        if v.get("schema")?.as_str()? != "noc-sweep-journal/v1" {
            return None;
        }
        Some(JournalHeader {
            name: v.get("name")?.as_str()?.to_string(),
            spec_digest: v.get("spec_digest")?.as_str()?.to_string(),
            points: v.get("points")?.as_f64()? as usize,
        })
    }
}

/// An exclusive advisory lock on a journal file, held for the lifetime
/// of the owning [`Journal`] and released (the lock file removed) on
/// drop. The lock file sits next to the journal as `<journal>.lock` and
/// holds the owner's pid, so the refusal message can name the writer
/// that is in the way.
#[derive(Debug)]
pub struct JournalLock {
    path: PathBuf,
}

impl JournalLock {
    /// Takes the lock for `journal_path`, recovering locks whose owner
    /// pid no longer exists (a `kill -9`'d sweep or daemon).
    pub fn acquire(journal_path: &Path) -> Result<JournalLock, String> {
        let mut name = journal_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        name.push_str(".lock");
        let path = journal_path.with_file_name(name);
        // Two attempts: the second runs only after a stale lock (dead
        // owner) was removed, so a live competitor still refuses.
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    let _ = f.sync_data();
                    if let Some(parent) = path.parent() {
                        let _ = sync_dir(parent);
                    }
                    return Ok(JournalLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match lock_holder(&path) {
                        Some(pid) if pid_alive(pid) => {
                            return Err(format!(
                                "journal: {} is already locked by pid {pid} — another sweep or \
                                 serve daemon is writing it; wait for it to finish (or remove {} \
                                 if that pid is not a noc process)",
                                journal_path.display(),
                                path.display()
                            ));
                        }
                        Some(_) => {
                            // Stale: the owner died without cleanup.
                            let _ = std::fs::remove_file(&path);
                        }
                        None => {
                            // Unreadable or empty: either a writer in the
                            // instant between create and pid write, or the
                            // debris of a crash in that instant. Give the
                            // writer time to identify itself; still-empty
                            // means debris.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            match lock_holder(&path) {
                                Some(pid) if pid_alive(pid) => {
                                    return Err(format!(
                                        "journal: {} is already locked by pid {pid}",
                                        journal_path.display()
                                    ));
                                }
                                _ => {
                                    let _ = std::fs::remove_file(&path);
                                }
                            }
                        }
                    }
                }
                Err(e) => {
                    return Err(format!(
                        "journal: cannot create lock {}: {e}",
                        path.display()
                    ))
                }
            }
        }
        Err(format!(
            "journal: {} lock contended — retry once the competing writer exits",
            journal_path.display()
        ))
    }
}

impl Drop for JournalLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The pid recorded in a lock file, if it parses.
fn lock_holder(path: &Path) -> Option<u32> {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

/// Whether a pid currently names a live process. On non-Linux hosts this
/// is conservatively `true` (locks are never stolen).
fn pid_alive(pid: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        Path::new("/proc").join(pid.to_string()).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

/// An open, appendable sweep journal. Holds the advisory lock for its
/// whole lifetime — dropping the journal releases it.
#[derive(Debug)]
pub struct Journal {
    writer: Mutex<BufWriter<File>>,
    path: PathBuf,
    _lock: JournalLock,
}

impl Journal {
    /// Opens the journal at `path`, creating it with `header` if absent.
    /// Returns the journal and the set of point digests already recorded
    /// as complete. An existing journal must carry the same header
    /// (name, spec digest, point count); otherwise this errors with a
    /// hint to `noc sweep clean` or rename the sweep.
    pub fn open(path: &Path, header: &JournalHeader) -> Result<(Journal, HashSet<String>), String> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("journal: cannot create {}: {e}", parent.display()))?;
        }
        let lock = JournalLock::acquire(path)?;
        let mut done = HashSet::new();
        let exists = path.exists();
        if exists {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("journal: cannot read {}: {e}", path.display()))?;
            let mut lines = text.lines();
            let head = lines
                .next()
                .and_then(JournalHeader::parse)
                .ok_or_else(|| format!("journal: {} has no valid header", path.display()))?;
            if head != *header {
                return Err(format!(
                    "journal: {} was written by a different sweep \
                     (name '{}', spec {}, {} points; current: name '{}', spec {}, {} points) — \
                     run `noc sweep clean` or use a different sweep name",
                    path.display(),
                    head.name,
                    head.spec_digest,
                    head.points,
                    header.name,
                    header.spec_digest,
                    header.points
                ));
            }
            for line in lines {
                // Skip anything unparseable — at most the torn final
                // record of a crashed run; its result is either in the
                // cache (hit) or recomputed (miss), both correct.
                if let Ok(v) = JsonValue::parse(line) {
                    if let Some(d) = v.get("digest").and_then(JsonValue::as_str) {
                        done.insert(d.to_string());
                    }
                }
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("journal: cannot open {}: {e}", path.display()))?;
        if !exists {
            writeln!(file, "{}", header.to_line())
                .map_err(|e| format!("journal: cannot write header: {e}"))?;
            file.sync_data()
                .map_err(|e| format!("journal: cannot sync header: {e}"))?;
            // The file data is durable; make its directory entry durable
            // too, or a crash can erase the whole journal (and with it
            // the record of freshly renamed cache entries).
            if let Some(parent) = path.parent() {
                sync_dir(parent)?;
            }
        }
        Ok((
            Journal {
                writer: Mutex::new(BufWriter::new(file)),
                path: path.to_path_buf(),
                _lock: lock,
            },
            done,
        ))
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed-point record durably (flush + fsync before
    /// returning). `source` records how the point was satisfied
    /// (`computed` or `cache`).
    pub fn append(
        &self,
        digest: &str,
        label: &str,
        source: &str,
        wall_ms: u64,
    ) -> Result<(), String> {
        let line = format!(
            "{{\"digest\":\"{}\",\"label\":\"{}\",\"source\":\"{}\",\"wall_ms\":{}}}",
            json_escape(digest),
            json_escape(label),
            json_escape(source),
            wall_ms
        );
        let mut w = self
            .writer
            .lock()
            .map_err(|_| "journal: writer poisoned".to_string())?;
        writeln!(w, "{line}").map_err(|e| format!("journal: append failed: {e}"))?;
        w.flush()
            .map_err(|e| format!("journal: flush failed: {e}"))?;
        w.get_ref()
            .sync_data()
            .map_err(|e| format!("journal: sync failed: {e}"))?;
        Ok(())
    }
}

/// Reads a journal's header and completed-point count without opening it
/// for writing (used by `noc sweep status`).
pub fn read_status(path: &Path) -> Option<(JournalHeader, usize)> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header = JournalHeader::parse(lines.next()?)?;
    let done = lines.filter(|l| JsonValue::parse(l).is_ok()).count();
    Some((header, done))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "noc-journal-test-{}-{tag}-{}.journal",
            std::process::id(),
            // RELAXED: unique-name ticket only; nothing is published.
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn header() -> JournalHeader {
        JournalHeader {
            name: "t".into(),
            spec_digest: "d".repeat(32),
            points: 3,
        }
    }

    #[test]
    fn append_then_reopen_recovers_done_set() {
        let path = tmp_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let (j, done) = Journal::open(&path, &header()).unwrap();
            assert!(done.is_empty());
            j.append("aa", "point a", "computed", 12).unwrap();
            j.append("bb", "point b", "cache", 0).unwrap();
        }
        let (_, done) = Journal::open(&path, &header()).unwrap();
        assert_eq!(done.len(), 2);
        assert!(done.contains("aa") && done.contains("bb"));
        let (head, n) = read_status(&path).unwrap();
        assert_eq!(head, header());
        assert_eq!(n, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_ignored() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (j, _) = Journal::open(&path, &header()).unwrap();
            j.append("aa", "point a", "computed", 1).unwrap();
        }
        // Simulate a crash mid-append: a truncated record with no newline.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"digest\":\"cc\",\"lab").unwrap();
        drop(f);
        let (_, done) = Journal::open(&path, &header()).unwrap();
        assert_eq!(done.len(), 1, "torn record does not count as done");
        let _ = std::fs::remove_file(&path);
    }

    /// Regression for concurrent-writer interleaving: nothing used to
    /// stop two `noc sweep run` processes (or a sweep racing the serve
    /// daemon) from appending to one journal. A second open while a
    /// writer holds the journal must now fail fast, naming the holder.
    #[test]
    fn second_writer_is_refused_while_lock_is_held() {
        let path = tmp_path("locked");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = Journal::open(&path, &header()).unwrap();
        let err = Journal::open(&path, &header()).unwrap_err();
        assert!(
            err.contains(&format!("already locked by pid {}", std::process::id())),
            "refusal names the holder: {err}"
        );
        // The refused open must not have damaged the held journal.
        journal.append("aa", "point a", "computed", 1).unwrap();
        drop(journal);
        // Release unlocks: a fresh writer proceeds and sees the record.
        let (_, done) = Journal::open(&path, &header()).unwrap();
        assert_eq!(done.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    /// A lock whose owner died (`kill -9`) is debris, not a writer: it
    /// is recovered and the journal opens normally.
    #[test]
    fn stale_lock_from_a_dead_pid_is_recovered() {
        let path = tmp_path("stale");
        let _ = std::fs::remove_file(&path);
        let mut name = path.file_name().unwrap().to_string_lossy().into_owned();
        name.push_str(".lock");
        let lock_path = path.with_file_name(name);
        // No real process gets pid 0 on Linux (it is the idle/swapper
        // slot), so this lock's owner is definitionally gone.
        std::fs::write(&lock_path, "0").unwrap();
        let (j, done) = Journal::open(&path, &header()).unwrap();
        assert!(done.is_empty());
        drop(j);
        assert!(!lock_path.exists(), "lock released on drop");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_header_is_refused() {
        let path = tmp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        let (_, _) = Journal::open(&path, &header()).unwrap();
        let other = JournalHeader {
            spec_digest: "e".repeat(32),
            ..header()
        };
        let err = Journal::open(&path, &other).unwrap_err();
        assert!(err.contains("different sweep"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
