#![forbid(unsafe_code)]
//! Shared infrastructure for the figure-regeneration binaries.
//!
//! Every table/figure in the paper's evaluation has a binary in
//! `src/bin/` (`fig04` … `fig14`) that regenerates its data series; the
//! functions here compute those series so that integration tests can check
//! them without re-parsing stdout. See `DESIGN.md` §4 for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured results.

pub mod figures;
pub mod harness;
pub mod points;
pub mod sweep;

pub use harness::{
    compare_baseline, parse_report, report_filename, run_bench, workload_matrix, BaselineSummary,
    BenchParams, BenchReport, WorkloadResult,
};
pub use points::{DesignPoint, DESIGN_POINTS};

/// Reads an environment-variable override for experiment sizing, so the
/// full paper-scale runs (`NOC_TRIALS=10000`, `NOC_MEASURE=10000`, …) and
/// quick smoke runs use the same binaries.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Formats an `f64` that may be NaN (unsaturated/no-data points).
pub fn fmt(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}
