//! Self-profiling perf-regression harness behind `noc bench`.
//!
//! Runs a fixed workload matrix (both evaluated topologies at three load
//! points each), measures simulator throughput in cycles/sec on the
//! *default* (uninstrumented) path, attributes wall time to the router
//! pipeline phases with a separate profiled run, and emits one
//! machine-readable report. A committed baseline report turns any later
//! run into a pass/fail regression check (`compare_baseline`).
//!
//! # Report schema (`noc-bench/v1`)
//!
//! ```json
//! {
//!   "schema": "noc-bench/v1",
//!   "created_unix": 1754500000,
//!   "quick": true,
//!   "warmup": 500,
//!   "measure": 1500,
//!   "reps": 1,
//!   "workloads": [
//!     {
//!       "name": "mesh8x8_c2_r0.05",
//!       "offered": 0.05,
//!       "avg_latency": 21.4,
//!       "latency_p99": 44.0,
//!       "throughput": 0.05,
//!       "cycles": 2000,
//!       "wall_nanos": 104000000,
//!       "cycles_per_sec": 19230769.2,
//!       "profile": { ... see `noc_obs::Profiler::to_json` ... }
//!     }
//!   ]
//! }
//! ```
//!
//! `cycles_per_sec` is the median over `reps` timed runs of the default
//! path (no tracing, no profiling), so the number a baseline locks in is
//! the one users actually experience. The `profile` object comes from one
//! extra instrumented run and is informational: it shows *where* the time
//! goes (route / vc_alloc / sw_alloc / traversal / credit shares), which
//! is the first thing to look at when a regression check fails.

use noc_obs::{JsonValue, Profiler};
use noc_sim::{run_sim_engine, run_sim_profiled, Engine, SimConfig, SimResult, TopologyKind};
use std::fmt::Write as _;
use std::time::Instant;

/// Report schema identifier; bump on breaking layout changes.
pub const SCHEMA: &str = "noc-bench/v1";

/// Sizing of one bench pass.
#[derive(Clone, Copy, Debug)]
pub struct BenchParams {
    /// Use the CI-sized quick matrix (shorter runs).
    pub quick: bool,
    /// Warmup cycles per run.
    pub warmup: u64,
    /// Measured cycles per run.
    pub measure: u64,
    /// Timed repetitions per workload (median wins).
    pub reps: usize,
    /// Cycle-loop engine driving the timed runs. All engines produce
    /// identical simulation results; this picks whose *speed* the report
    /// records.
    pub engine: Engine,
}

impl BenchParams {
    /// Full-size parameters: 2000 + 6000 cycles, median of 3 runs.
    pub fn full() -> Self {
        BenchParams {
            quick: false,
            warmup: 2_000,
            measure: 6_000,
            reps: 3,
            engine: Engine::Sequential,
        }
    }

    /// CI-sized parameters: 500 + 1500 cycles. Median of 3 reps — short
    /// runs are noisy on shared CI machines, and a single outlier must
    /// not trip the regression gate.
    pub fn quick() -> Self {
        BenchParams {
            quick: true,
            warmup: 500,
            measure: 1_500,
            reps: 3,
            engine: Engine::Sequential,
        }
    }
}

/// The fixed workload matrix: each evaluated topology at load points
/// below, near, and at the knee of the latency curve, plus a heavy 0.4
/// mesh point where the parallel engine's speedup is measured (at high
/// load nearly every router is busy every cycle, so this is the
/// compute-bound case sharding helps most).
pub fn workload_matrix() -> Vec<(String, SimConfig)> {
    let mut out = Vec::new();
    for (tag, topo, rates) in [
        (
            "mesh8x8",
            TopologyKind::Mesh8x8,
            &[0.05, 0.15, 0.25, 0.4][..],
        ),
        (
            "fbfly4x4",
            TopologyKind::FlattenedButterfly4x4,
            &[0.10, 0.20, 0.30][..],
        ),
    ] {
        for &rate in rates {
            let cfg = SimConfig {
                injection_rate: rate,
                ..SimConfig::paper_baseline(topo, 2)
            };
            out.push((format!("{tag}_c2_r{rate}"), cfg));
        }
    }
    out
}

/// One workload's measurements.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Stable workload name (the key `compare_baseline` matches on).
    pub name: String,
    /// Summary of the last timed run.
    pub result: SimResult,
    /// Simulated cycles per timed run.
    pub cycles: u64,
    /// Median wall time of the timed default-path runs, nanoseconds.
    pub wall_nanos: u64,
    /// Median simulated cycles per wall-clock second (the regression
    /// metric).
    pub cycles_per_sec: f64,
    /// Phase attribution from the separate profiled run.
    pub profile: Profiler,
}

/// A complete bench pass.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Unix timestamp of the run (seconds).
    pub created_unix: u64,
    /// Parameters the pass ran with.
    pub params: BenchParams,
    /// Per-workload measurements, in matrix order.
    pub workloads: Vec<WorkloadResult>,
}

/// Canonical report filename for a timestamp: `BENCH_<unix>.json`.
pub fn report_filename(created_unix: u64) -> String {
    format!("BENCH_{created_unix}.json")
}

/// Runs the full workload matrix with `params`, reporting progress lines
/// through `progress` (pass `|_| {}` for silence).
pub fn run_bench(params: &BenchParams, mut progress: impl FnMut(&str)) -> BenchReport {
    let created_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let cycles = params.warmup + params.measure;
    let mut workloads = Vec::new();
    for (name, cfg) in workload_matrix() {
        let mut times = Vec::new();
        let t0 = Instant::now();
        let mut result = run_sim_engine(&cfg, params.warmup, params.measure, params.engine);
        times.push(t0.elapsed().as_nanos() as u64);
        for _ in 1..params.reps.max(1) {
            let t0 = Instant::now();
            result = run_sim_engine(&cfg, params.warmup, params.measure, params.engine);
            times.push(t0.elapsed().as_nanos() as u64);
        }
        times.sort_unstable();
        let wall_nanos = times[times.len() / 2];
        let (_, profile) = run_sim_profiled(&cfg, params.warmup, params.measure);
        let cycles_per_sec = cycles as f64 / (wall_nanos as f64 * 1e-9);
        progress(&format!(
            "{name}: {:.2} Mcycles/sec ({} reps)",
            cycles_per_sec / 1e6,
            times.len()
        ));
        workloads.push(WorkloadResult {
            name,
            result,
            cycles,
            wall_nanos,
            cycles_per_sec,
            profile,
        });
    }
    BenchReport {
        schema: SCHEMA.to_string(),
        created_unix,
        params: *params,
        workloads,
    }
}

impl BenchReport {
    /// Serializes the report in the `noc-bench/v1` schema.
    pub fn to_json(&self) -> String {
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"schema\":\"{}\",\"created_unix\":{},\"quick\":{},\
             \"warmup\":{},\"measure\":{},\"reps\":{},\"engine\":\"{}\",\"workloads\":[",
            self.schema,
            self.created_unix,
            self.params.quick,
            self.params.warmup,
            self.params.measure,
            self.params.reps,
            self.params.engine.label()
        );
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"offered\":{},\"avg_latency\":{},\"latency_p99\":{},\
                 \"throughput\":{},\"cycles\":{},\"wall_nanos\":{},\"cycles_per_sec\":{},\
                 \"profile\":{}}}",
                w.name,
                num(w.result.offered),
                num(w.result.avg_latency),
                num(w.result.latency_p99),
                num(w.result.throughput),
                w.cycles,
                w.wall_nanos,
                num(w.cycles_per_sec),
                w.profile.to_json()
            );
        }
        out.push_str("]}");
        out
    }
}

/// The subset of a report a regression check needs: workload name →
/// cycles/sec, plus the metadata that decides comparability.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineSummary {
    /// Schema of the parsed report.
    pub schema: String,
    /// Timestamp of the parsed report.
    pub created_unix: u64,
    /// Whether it was a quick pass.
    pub quick: bool,
    /// Engine label the report's timings were taken on (`"seq"` for
    /// reports written before the field existed).
    pub engine: String,
    /// `(workload name, cycles_per_sec)` in file order.
    pub workloads: Vec<(String, f64)>,
}

/// Parses a `noc-bench/v1` report (typically a committed baseline).
pub fn parse_report(json: &str) -> Result<BaselineSummary, String> {
    let v = JsonValue::parse(json)?;
    let schema = v
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("report has no schema field")?
        .to_string();
    if schema != SCHEMA {
        return Err(format!(
            "unsupported bench schema '{schema}' (want {SCHEMA})"
        ));
    }
    let created_unix = v
        .get("created_unix")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0) as u64;
    let quick = v.get("quick").and_then(JsonValue::as_bool).unwrap_or(false);
    let engine = v
        .get("engine")
        .and_then(JsonValue::as_str)
        .unwrap_or("seq")
        .to_string();
    let mut workloads = Vec::new();
    for w in v
        .get("workloads")
        .and_then(JsonValue::as_array)
        .ok_or("report has no workloads array")?
    {
        let name = w
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("workload without a name")?
            .to_string();
        let cps = w.num_or_nan("cycles_per_sec");
        workloads.push((name, cps));
    }
    Ok(BaselineSummary {
        schema,
        created_unix,
        quick,
        engine,
        workloads,
    })
}

/// Compares a fresh report against a baseline: every workload present in
/// both must be no more than `tolerance_pct` percent slower (by
/// cycles/sec) than the baseline. Returns one human-readable line per
/// compared workload on pass, or the list of regressions on failure.
/// Workloads missing from either side are skipped (the matrix may grow),
/// but comparing zero workloads is an error.
pub fn compare_baseline(
    current: &BenchReport,
    baseline: &BaselineSummary,
    tolerance_pct: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for w in &current.workloads {
        let Some((_, base)) = baseline.workloads.iter().find(|(n, _)| *n == w.name) else {
            continue;
        };
        if !base.is_finite() || *base <= 0.0 || !w.cycles_per_sec.is_finite() {
            continue;
        }
        compared += 1;
        let delta_pct = (w.cycles_per_sec / base - 1.0) * 100.0;
        let line = format!(
            "{}: {:.2} Mcycles/sec vs baseline {:.2} ({:+.1}%)",
            w.name,
            w.cycles_per_sec / 1e6,
            base / 1e6,
            delta_pct
        );
        if delta_pct < -tolerance_pct {
            regressions.push(line);
        } else {
            lines.push(line);
        }
    }
    if compared == 0 {
        return Err(vec![
            "no common workloads between report and baseline".to_string()
        ]);
    }
    if regressions.is_empty() {
        Ok(lines)
    } else {
        Err(regressions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_both_topologies_plus_heavy_mesh_point() {
        let m = workload_matrix();
        assert_eq!(m.len(), 7);
        assert_eq!(m.iter().filter(|(n, _)| n.starts_with("mesh")).count(), 4);
        assert_eq!(m.iter().filter(|(n, _)| n.starts_with("fbfly")).count(), 3);
        assert!(m.iter().any(|(n, _)| n == "mesh8x8_c2_r0.4"));
        let names: std::collections::HashSet<_> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 7, "workload names must be unique keys");
    }

    #[test]
    fn filename_embeds_timestamp() {
        assert_eq!(report_filename(17), "BENCH_17.json");
    }
}
