//! Figure 4: the VC transition matrix for the flattened butterfly with
//! 2x2x4 VCs — 96 of 256 transitions legal, each VC confined to at most 8
//! successors in its own message-class quadrant.

// Panicking on setup failure is the right behaviour outside library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc_core::VcAllocSpec;

fn main() {
    let spec = VcAllocSpec::fbfly(4);
    let t = spec.transition_matrix();
    let v = spec.total_vcs();
    println!(
        "Figure 4: VC transition matrix (fbfly, {} VCs)",
        spec.label()
    );
    println!("rows = input VCs, cols = output VCs; '#' = legal transition\n");
    print!("        ");
    for ov in 0..v {
        print!("{}", ov % 10);
    }
    println!();
    for iv in 0..v {
        let (m, r, c) = spec.vc_class(iv);
        print!("vc{iv:2} {m}{r}{c} ");
        for ov in 0..v {
            print!("{}", if t.get(iv, ov) { '#' } else { '.' });
        }
        println!();
    }
    println!();
    println!(
        "legal transitions: {} of {} (paper: 96 of 256)",
        spec.legal_transition_count(),
        v * v
    );
    let max_succ = (0..v).map(|iv| t.row(iv).count_ones()).max().unwrap();
    let max_pred = (0..v).map(|ov| t.col(ov).count_ones()).max().unwrap();
    println!("max successors per VC: {max_succ} (paper: 8)");
    println!("max predecessors per VC: {max_pred} (paper: 8)");
}
