//! Figure 10: switch allocator area vs delay — five architectures × three
//! speculation schemes per design point, plus the §5.3.1 delay headline.

use noc_bench::figures::{pessimistic_delay_saving, sw_cost_data};
use noc_bench::DESIGN_POINTS;

fn main() {
    let mut all = Vec::new();
    for point in &DESIGN_POINTS {
        println!(
            "--- Figure 10({}): {} — area (um^2) vs delay (ns) ---",
            point.tag,
            point.label()
        );
        println!(
            "{:<10} {:>24} {:>24} {:>24}",
            "variant", "nonspec ns/um2", "pessimistic ns/um2", "conventional ns/um2"
        );
        let data = sw_cost_data(point);
        for p in &data {
            print!("{:<10}", p.variant);
            for m in &p.modes {
                match m {
                    Ok(r) => print!(" {:>11.3} {:>12.0}", r.delay_ns, r.area_um2),
                    Err(_) => print!(" {:>11} {:>12}", "OOM", "OOM"),
                }
            }
            println!();
        }
        println!();
        all.push(data);
    }
    println!(
        "pessimistic vs conventional speculation delay saving: up to {:.0}% (paper: up to 23%)",
        pessimistic_delay_saving(&all)
    );
}
