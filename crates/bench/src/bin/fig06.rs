//! Figure 6: VC allocator power vs delay for all six design points.

use noc_bench::figures::vc_cost_data;
use noc_bench::DESIGN_POINTS;

fn main() {
    for point in &DESIGN_POINTS {
        println!(
            "--- Figure 6({}): {} — power (mW) vs delay (ns) ---",
            point.tag,
            point.label()
        );
        println!(
            "{:<10} {:>10} {:>11} {:>10} {:>11}",
            "variant", "dense_ns", "dense_mW", "sparse_ns", "sparse_mW"
        );
        for p in vc_cost_data(point) {
            let (dd, dp) = match &p.dense {
                Ok(r) => (format!("{:.3}", r.delay_ns), format!("{:.2}", r.power_mw)),
                Err(_) => ("OOM".into(), "OOM".into()),
            };
            let (sd, sp) = match &p.sparse {
                Ok(r) => (format!("{:.3}", r.delay_ns), format!("{:.2}", r.power_mw)),
                Err(_) => ("OOM".into(), "OOM".into()),
            };
            println!(
                "{:<10} {:>10} {:>11} {:>10} {:>11}",
                p.variant, dd, dp, sd, sp
            );
        }
        println!();
    }
}
