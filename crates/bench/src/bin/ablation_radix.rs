//! Ablation: radix and VC scaling of switch-allocator cost and quality.
//!
//! §1 faults prior work for not evaluating "how performance and cost of
//! the proposed mechanisms scale with the network radix and the number of
//! VCs"; this sweep provides exactly that for the three switch-allocator
//! architectures.

// Panicking on setup failure is the right behaviour outside library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc_bench::env_usize;
use noc_core::SwitchAllocatorKind;
use noc_hw::builders::sw_alloc::switch_allocator_netlist;
use noc_hw::Synthesizer;
use noc_quality::{sw_quality_curve, SwQualityConfig};

fn main() {
    use noc_arbiter::ArbiterKind::RoundRobin;
    let kinds = [
        ("sep_if", SwitchAllocatorKind::SepIf(RoundRobin)),
        ("sep_of", SwitchAllocatorKind::SepOf(RoundRobin)),
        ("wf", SwitchAllocatorKind::Wavefront),
    ];
    let synth = Synthesizer::unlimited();
    println!("synthesis cost vs radix (V = 4):");
    println!(
        "{:<8} {:>4} {:>9} {:>11} {:>9}",
        "variant", "P", "delay_ns", "area_um2", "power_mW"
    );
    for p in [5usize, 8, 10, 12, 16] {
        for (label, kind) in &kinds {
            let r = synth.run(switch_allocator_netlist(*kind, p, 4)).unwrap();
            println!(
                "{:<8} {:>4} {:>9.3} {:>11.0} {:>9.2}",
                label, p, r.delay_ns, r.area_um2, r.power_mw
            );
        }
    }
    println!("\nsynthesis cost vs VCs (P = 10):");
    println!(
        "{:<8} {:>4} {:>9} {:>11} {:>9}",
        "variant", "V", "delay_ns", "area_um2", "power_mW"
    );
    for v in [2usize, 4, 8, 16] {
        for (label, kind) in &kinds {
            let r = synth.run(switch_allocator_netlist(*kind, 10, v)).unwrap();
            println!(
                "{:<8} {:>4} {:>9.3} {:>11.0} {:>9.2}",
                label, v, r.delay_ns, r.area_um2, r.power_mw
            );
        }
    }
    let trials = env_usize("NOC_TRIALS", 1500);
    println!("\nmatching quality at rate 0.5 vs radix (V = 4, {trials} trials):");
    print!("{:<8}", "variant");
    let radii = [5usize, 8, 10, 12, 16];
    for p in radii {
        print!(" {:>7}", format!("P={p}"));
    }
    println!();
    for (label, kind) in &kinds {
        print!("{label:<8}");
        for p in radii {
            let cfg = SwQualityConfig {
                ports: p,
                vcs: 4,
                trials,
                seed: 9,
            };
            let q = sw_quality_curve(&cfg, *kind, &[0.5]).points[0].quality();
            print!(" {q:>7.3}");
        }
        println!();
    }
    println!("\nobservations: the wavefront quality advantage persists (and widens");
    println!("slightly) with radix, while its delay and area scale away from the");
    println!("separable designs — the cost/quality tension of §6's conclusion.");
}
