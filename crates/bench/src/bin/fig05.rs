//! Figure 5: VC allocator area vs delay for all six design points, dense
//! (un-optimized) and sparse (§4.2) variants, plus the §4.3.1 savings
//! headline.

use noc_bench::figures::{sparse_savings, vc_cost_data};
use noc_bench::DESIGN_POINTS;

fn main() {
    let mut all = Vec::new();
    for point in &DESIGN_POINTS {
        println!(
            "--- Figure 5({}): {} — area (um^2) vs delay (ns) ---",
            point.tag,
            point.label()
        );
        println!(
            "{:<10} {:>10} {:>12} {:>10} {:>12}",
            "variant", "dense_ns", "dense_um2", "sparse_ns", "sparse_um2"
        );
        let data = vc_cost_data(point);
        for p in &data {
            let (dd, da) = match &p.dense {
                Ok(r) => (format!("{:.3}", r.delay_ns), format!("{:.0}", r.area_um2)),
                Err(_) => ("OOM".into(), "OOM".into()),
            };
            let (sd, sa) = match &p.sparse {
                Ok(r) => (format!("{:.3}", r.delay_ns), format!("{:.0}", r.area_um2)),
                Err(_) => ("OOM".into(), "OOM".into()),
            };
            println!(
                "{:<10} {:>10} {:>12} {:>10} {:>12}",
                p.variant, dd, da, sd, sa
            );
        }
        println!();
        all.push(data);
    }
    let (d, a, p) = sparse_savings(&all);
    println!(
        "sparse VC allocation savings across synthesizable points (paper: up to 41% / 90% / 83%):"
    );
    println!("  delay: up to {d:.0}%   area: up to {a:.0}%   power: up to {p:.0}%");
}
