//! Extension: torus dateline routing (§4.2's other resource-class
//! example). Compares the 8x8 torus against the 8x8 mesh at equal VC
//! budget, and reports the sparse-VCA savings available under the torus's
//! all-transitions resource-class relation (message-class split only).

use noc_bench::env_usize;
use noc_bench::sweep::env_runner;
use noc_core::{AllocatorKind, VcAllocSpec};
use noc_hw::builders::vc_alloc::synthesize_vc_allocator;
use noc_hw::Synthesizer;
use noc_sim::sim::{latency_curve_with, saturation_rate_with};
use noc_sim::{SimConfig, TopologyKind};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 2000) as u64;
    let measure = env_usize("NOC_MEASURE", 4000) as u64;
    let run = env_runner();

    println!("network comparison (2 VCs per class, uniform random):");
    println!("{:<8} {:>10} {:>12}", "topology", "zero-load", "saturation");
    for topo in [TopologyKind::Mesh8x8, TopologyKind::Torus8x8] {
        let base = SimConfig::paper_baseline(topo, 2);
        let zl = latency_curve_with(&base, &[0.01], warmup, measure, &*run)[0].avg_latency;
        let sat = saturation_rate_with(&base, warmup, measure, &*run);
        println!("{:<8} {:>10.2} {:>12.3}", topo.label(), zl, sat);
    }

    println!(
        "\nsparse VC allocation on the torus class structure (2x2xC, all rc transitions legal):"
    );
    let synth = Synthesizer::default();
    for c in [1usize, 2] {
        let spec = VcAllocSpec::torus(c);
        {
            let kind = AllocatorKind::SepIfRr;
            let dense = synthesize_vc_allocator(&synth, &spec, kind, false);
            let sparse = synthesize_vc_allocator(&synth, &spec, kind, true);
            if let (Ok(d), Ok(s)) = (dense, sparse) {
                println!(
                    "  {} {}: dense {:.3} ns / {:.0} um2 -> sparse {:.3} ns / {:.0} um2 ({:.0}% area saved)",
                    spec.label(),
                    kind.label(),
                    d.delay_ns,
                    d.area_um2,
                    s.delay_ns,
                    s.area_um2,
                    100.0 * (1.0 - s.area_um2 / d.area_um2)
                );
            }
        }
        // Compare with the fbfly relation at the same size, where the
        // one-way rc order allows the §4.2 restriction too.
        let fb = VcAllocSpec::fbfly(c).with_ports(5);
        let dense = synthesize_vc_allocator(&synth, &fb, AllocatorKind::SepIfRr, false);
        let sparse = synthesize_vc_allocator(&synth, &fb, AllocatorKind::SepIfRr, true);
        if let (Ok(d), Ok(s)) = (dense, sparse) {
            println!(
                "  one-way relation, same size:       dense {:.3} ns / {:.0} um2 -> sparse {:.3} ns / {:.0} um2 ({:.0}% area saved)",
                d.delay_ns, d.area_um2, s.delay_ns, s.area_um2,
                100.0 * (1.0 - s.area_um2 / d.area_um2)
            );
        }
    }
    println!("\nthe torus relation saves only the message-class split; the acyclic");
    println!("fbfly/dateline-style relation additionally prunes predecessor classes.");
}
