//! Figure 14: average packet latency vs injection rate for the three
//! speculative switch-allocation schemes, plus the §5.3.3 zero-load and
//! saturation summaries.
//!
//! `NOC_WARMUP`/`NOC_MEASURE` override the per-run cycle counts; see
//! `fig13` for the `NOC_SWEEP_CACHE` cache-backed mode.

use noc_bench::env_usize;
use noc_bench::sweep::{env_runner, render};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 3000) as u64;
    let measure = env_usize("NOC_MEASURE", 6000) as u64;
    print!("{}", render::fig14(&*env_runner(), warmup, measure));
}
