//! Figure 14: average packet latency vs injection rate for the three
//! speculative switch-allocation schemes, plus the §5.3.3 zero-load and
//! saturation summaries.

use noc_bench::figures::spec_latency_data;
use noc_bench::{env_usize, fmt, DESIGN_POINTS};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 3000) as u64;
    let measure = env_usize("NOC_MEASURE", 6000) as u64;
    println!("warmup {warmup} / measure {measure} cycles per run\n");
    for point in &DESIGN_POINTS {
        println!(
            "--- Figure 14({}): {} — latency (cycles) vs injection rate (flits/cycle) ---",
            point.tag,
            point.label()
        );
        let curves = spec_latency_data(point, warmup, measure);
        print!("{:<9}", "rate");
        for r in &curves[0].results {
            print!(" {:>7.3}", r.offered);
        }
        println!();
        for c in &curves {
            print!("{:<9}", c.label);
            for r in &c.results {
                print!(
                    " {:>7}",
                    if r.stable {
                        fmt(r.avg_latency)
                    } else {
                        "sat".into()
                    }
                );
            }
            println!(
                "   | saturation ~{:.3}",
                c.refined_saturation(warmup, measure)
            );
        }
        // Summaries: nonspec is index 0, conventional 1, pessimistic 2.
        let (ns, conv, pess) = (&curves[0], &curves[1], &curves[2]);
        let zl_gain = (ns.min_rate_latency() - pess.min_rate_latency()) / ns.min_rate_latency();
        println!(
            "zero-load latency gain from speculation: {:.1}%",
            zl_gain * 100.0
        );
        let (s_ns, s_conv, s_pess) = (
            ns.refined_saturation(warmup, measure),
            conv.refined_saturation(warmup, measure),
            pess.refined_saturation(warmup, measure),
        );
        if s_ns > 0.0 && s_conv > 0.0 {
            println!(
                "saturation: spec vs nonspec {:+.1}%, pessimistic vs conventional {:+.1}%",
                (s_pess / s_ns - 1.0) * 100.0,
                (s_pess / s_conv - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("paper reference points: zero-load gain up to 23% (mesh) / 14% (fbfly);");
    println!("spec saturation gain 14% (mesh 2x1x1), 6% (fbfly 2x2x1), <5% elsewhere;");
    println!("pessimistic loses <4% throughput vs conventional.");
}
