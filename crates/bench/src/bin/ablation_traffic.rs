//! Ablation: traffic-pattern invariance (§3.2's claim that the paper's
//! conclusions are "largely invariant to traffic pattern selection").
//!
//! Repeats the Figure 13 comparison (sep_if vs wf switch allocator) on the
//! flattened butterfly 2x2x2 under four synthetic patterns.

use noc_bench::env_usize;
use noc_core::SwitchAllocatorKind;
use noc_sim::sim::latency_curve;
use noc_sim::{SimConfig, TopologyKind, TrafficPattern};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 2000) as u64;
    let measure = env_usize("NOC_MEASURE", 4000) as u64;
    let base = SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 2);
    let rates: Vec<f64> = (1..=8).map(|i| 0.07 * i as f64).collect();
    for pattern in [
        TrafficPattern::UniformRandom,
        TrafficPattern::BitComplement,
        TrafficPattern::Transpose,
        TrafficPattern::Tornado,
    ] {
        println!("--- {} traffic, fbfly 2x2x2 ---", pattern.label());
        for (label, kind) in [
            (
                "sep_if",
                SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
            ),
            ("wf", SwitchAllocatorKind::Wavefront),
        ] {
            let cfg = SimConfig {
                pattern,
                sa_kind: kind,
                ..base.clone()
            };
            let curve = latency_curve(&cfg, &rates, warmup, measure);
            print!("{label:<8}");
            for r in &curve {
                if r.stable {
                    print!(" {:>7.1}", r.avg_latency);
                } else {
                    print!(" {:>7}", "sat");
                }
            }
            let sat = curve
                .iter()
                .filter(|r| r.stable)
                .map(|r| r.offered)
                .fold(0.0, f64::max);
            println!("  | saturation ~{sat:.3}");
        }
        println!();
    }
    println!("conclusion check: wf saturation >= sep_if saturation under every pattern.");
}
