//! Ablation: traffic-pattern invariance (§3.2's claim that the paper's
//! conclusions are "largely invariant to traffic pattern selection").
//!
//! Repeats the Figure 13 comparison (sep_if vs wf switch allocator) on the
//! flattened butterfly 2x2x2 under four synthetic patterns. See `fig13`
//! for the `NOC_SWEEP_CACHE` cache-backed mode.

use noc_bench::env_usize;
use noc_bench::sweep::{env_runner, render};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 2000) as u64;
    let measure = env_usize("NOC_MEASURE", 4000) as u64;
    print!(
        "{}",
        render::ablation_traffic(&*env_runner(), warmup, measure)
    );
}
