//! Ablation: throughput-oriented (DMA-like) workloads (§5.4).
//!
//! The paper's discussion argues that switch allocators with higher
//! matching quality "are particularly suitable for improving performance
//! in primarily throughput-oriented networks, where large quantities of
//! data are transferred concurrently using DMA-like semantics". This
//! sweep compares sep_if against wf on the flattened butterfly under
//! increasingly bursty traffic.

use noc_bench::env_usize;
use noc_bench::sweep::env_runner;
use noc_core::SwitchAllocatorKind;
use noc_sim::sim::saturation_rate_with;
use noc_sim::{SimConfig, TopologyKind};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 2000) as u64;
    let measure = env_usize("NOC_MEASURE", 4000) as u64;
    let run = env_runner();
    println!("fbfly 2x2x4, saturation throughput vs burst size:");
    println!("{:<8} {:>7} {:>12}", "alloc", "burst", "saturation");
    for burst in [1usize, 4, 8] {
        let mut sats = Vec::new();
        for (label, kind) in [
            (
                "sep_if",
                SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
            ),
            ("wf", SwitchAllocatorKind::Wavefront),
        ] {
            let cfg = SimConfig {
                sa_kind: kind,
                burst,
                ..SimConfig::paper_baseline(TopologyKind::FlattenedButterfly4x4, 4)
            };
            let sat = saturation_rate_with(&cfg, warmup, measure, &*run);
            println!("{:<8} {:>7} {:>12.3}", label, burst, sat);
            sats.push(sat);
        }
        if sats[0] > 0.0 {
            println!(
                "{:<8} {:>7} {:>11.1}%",
                "wf gain",
                burst,
                (sats[1] / sats[0] - 1.0) * 100.0
            );
        }
    }
    println!("\nobservation: the wavefront's large matching-quality advantage");
    println!("(~17-22% saturation) persists across burst sizes — §5.4's argument");
    println!("for quality-first allocators in throughput-oriented networks — while");
    println!("bursts themselves cost everyone throughput by hammering ejection");
    println!("ports with correlated packets.");
}
