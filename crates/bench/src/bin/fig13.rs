//! Figure 13: average packet latency vs injection rate for the three
//! switch-allocator architectures, on all six design points, plus the
//! §5.3.3/§6 saturation-rate comparisons.
//!
//! `NOC_WARMUP`/`NOC_MEASURE` override the per-run cycle counts. The
//! figure text is built by [`noc_bench::sweep::render::fig13`]; setting
//! `NOC_SWEEP_CACHE=<dir>` serves every simulation from (and stores
//! misses into) that content-addressed cache, which is how
//! `noc sweep run --preset fig13` reproduces this output bit-identically
//! without re-simulating.

use noc_bench::env_usize;
use noc_bench::sweep::{env_runner, render};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 3000) as u64;
    let measure = env_usize("NOC_MEASURE", 6000) as u64;
    print!("{}", render::fig13(&*env_runner(), warmup, measure));
}
