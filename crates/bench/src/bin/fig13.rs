//! Figure 13: average packet latency vs injection rate for the three
//! switch-allocator architectures, on all six design points, plus the
//! §5.3.3/§6 saturation-rate comparisons.
//!
//! `NOC_WARMUP`/`NOC_MEASURE` override the per-run cycle counts.

use noc_bench::figures::sa_latency_data;
use noc_bench::{env_usize, fmt, DESIGN_POINTS};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 3000) as u64;
    let measure = env_usize("NOC_MEASURE", 6000) as u64;
    println!("warmup {warmup} / measure {measure} cycles per run\n");
    for point in &DESIGN_POINTS {
        println!(
            "--- Figure 13({}): {} — latency (cycles) vs injection rate (flits/cycle) ---",
            point.tag,
            point.label()
        );
        let curves = sa_latency_data(point, warmup, measure);
        print!("{:<8}", "rate");
        for r in &curves[0].results {
            print!(" {:>7.3}", r.offered);
        }
        println!();
        for c in &curves {
            print!("{:<8}", c.label);
            for r in &c.results {
                print!(
                    " {:>7}",
                    if r.stable {
                        fmt(r.avg_latency)
                    } else {
                        "sat".into()
                    }
                );
            }
            println!(
                "   | saturation ~{:.3}",
                c.refined_saturation(warmup, measure)
            );
        }
        let sat_if = curves[0].refined_saturation(warmup, measure);
        let sat_wf = curves[2].refined_saturation(warmup, measure);
        if sat_if > 0.0 {
            println!(
                "wf vs sep_if saturation: {:+.1}%",
                (sat_wf / sat_if - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("paper reference points: wf ~= sep_if on mesh (<4% for 2x1x4);");
    println!("wf +4% on fbfly 2x2x1; wf >+20% on fbfly 2x2x4.");
}
