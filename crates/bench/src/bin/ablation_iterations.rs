//! Ablation: multi-iteration separable allocation (DESIGN.md §6).
//!
//! §2.1 notes that "multiple iterations can be performed to improve
//! matching quality" but rejects them for NoCs on delay grounds. This
//! sweep quantifies the quality side of that tradeoff: grants vs a
//! maximum-size allocator on random matrices, for 1..4 iterations.

use noc_bench::env_usize;
use noc_core::separable::{SeparableInputFirst, SeparableOutputFirst};
use noc_core::{Allocator, AugmentingPathAllocator, BitMatrix, MaxSizeAllocator};
use rand::{Rng, SeedableRng};

fn random_matrix(rng: &mut impl Rng, n: usize, density: f64) -> BitMatrix {
    let mut m = BitMatrix::new(n, n);
    for r in 0..n {
        for c in 0..n {
            if rng.gen_bool(density) {
                m.set(r, c, true);
            }
        }
    }
    m
}

fn main() {
    let trials = env_usize("NOC_TRIALS", 3000);
    let n = 16;
    println!("separable allocation quality vs iterations ({n}x{n}, density 0.25, {trials} trials)");
    println!("{:<8} {:>6} {:>10}", "variant", "iters", "quality");
    for density in [0.25f64] {
        for iters in 1..=4usize {
            for input_first in [true, false] {
                let mut alloc: Box<dyn Allocator> = if input_first {
                    Box::new(SeparableInputFirst::with_iterations(
                        n,
                        n,
                        noc_arbiter::ArbiterKind::RoundRobin,
                        iters,
                    ))
                } else {
                    Box::new(SeparableOutputFirst::with_iterations(
                        n,
                        n,
                        noc_arbiter::ArbiterKind::RoundRobin,
                        iters,
                    ))
                };
                let mut rng = rand::rngs::StdRng::seed_from_u64(99);
                let (mut got, mut best) = (0u64, 0u64);
                for _ in 0..trials {
                    let req = random_matrix(&mut rng, n, density);
                    got += alloc.allocate(&req).count_ones() as u64;
                    best += MaxSizeAllocator::max_matching_size(&req) as u64;
                }
                println!(
                    "{:<8} {:>6} {:>10.4}",
                    if input_first { "sep_if" } else { "sep_of" },
                    iters,
                    got as f64 / best as f64
                );
            }
        }
    }
    println!();
    println!("step-bounded augmenting-path allocation (§2.3, Hoare et al. style):");
    println!("{:<12} {:>6} {:>10}", "variant", "steps", "quality");
    for steps in [0usize, 1, 2, 4, 16] {
        let mut alloc = AugmentingPathAllocator::new(n, n, steps);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let (mut got, mut best) = (0u64, 0u64);
        for _ in 0..trials {
            let req = random_matrix(&mut rng, n, 0.25);
            got += alloc.allocate(&req).count_ones() as u64;
            best += MaxSizeAllocator::max_matching_size(&req) as u64;
        }
        println!(
            "{:<12} {:>6} {:>10.4}",
            "augmenting",
            steps,
            got as f64 / best as f64
        );
    }
    println!("\neach extra separable iteration repeats both arbitration stages serially,");
    println!("and each augmentation step is a sequential search — the delay cost that");
    println!("rules both out for single-cycle NoC allocation (§2.1/§2.3).");
}
