//! Ablation: speculation efficiency (§5.2's pessimism argument, measured
//! directly). Tracks the fraction of speculative switch grants that are
//! discarded — by the masking stage and by failed validation — as load
//! rises, for the conventional and pessimistic schemes.

use noc_bench::env_usize;
use noc_core::SpecMode;
use noc_sim::{run_sim, SimConfig, TopologyKind};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 2000) as u64;
    let measure = env_usize("NOC_MEASURE", 4000) as u64;
    for (topo, c) in [
        (TopologyKind::Mesh8x8, 1usize),
        (TopologyKind::FlattenedButterfly4x4, 4),
    ] {
        let base = SimConfig::paper_baseline(topo, c);
        println!("--- {} — speculative grant outcomes ---", base.label());
        println!(
            "{:<10} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "mode", "rate", "clean", "masked", "invalid", "kill_rate"
        );
        for mode in [SpecMode::Conventional, SpecMode::Pessimistic] {
            for rate in [0.05, 0.15, 0.25, 0.35] {
                let cfg = SimConfig {
                    spec_mode: mode,
                    injection_rate: rate,
                    ..base.clone()
                };
                let r = run_sim(&cfg, warmup, measure);
                let s = r.router_stats;
                let total = s.spec_grants + s.spec_masked + s.spec_invalid;
                let kill = (s.spec_masked + s.spec_invalid) as f64 / total.max(1) as f64;
                println!(
                    "{:<10} {:>6.2} {:>10} {:>10} {:>10} {:>9.1}%",
                    mode.label(),
                    rate,
                    s.spec_grants,
                    s.spec_masked,
                    s.spec_invalid,
                    kill * 100.0
                );
            }
        }
        println!();
    }
    println!("expectation (§5.2): kill rates converge at low load; the pessimistic");
    println!("scheme discards a growing fraction as the network approaches saturation.");
}
