//! Ablation: speculation efficiency (§5.2's pessimism argument, measured
//! directly). Tracks the fraction of speculative switch grants that are
//! discarded — by the masking stage and by failed validation — as load
//! rises, for the conventional and pessimistic schemes. See `fig13` for
//! the `NOC_SWEEP_CACHE` cache-backed mode.

use noc_bench::env_usize;
use noc_bench::sweep::{env_runner, render};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 2000) as u64;
    let measure = env_usize("NOC_MEASURE", 4000) as u64;
    print!(
        "{}",
        render::ablation_speculation(&*env_runner(), warmup, measure)
    );
}
