//! Ablation: VC buffer depth (DESIGN.md §6). The paper fixes 8-flit
//! buffers; this sweep shows saturation throughput sensitivity to 4/8/16.

use noc_bench::env_usize;
use noc_bench::sweep::env_runner;
use noc_sim::sim::saturation_rate_with;
use noc_sim::{SimConfig, TopologyKind};

fn main() {
    let warmup = env_usize("NOC_WARMUP", 2000) as u64;
    let measure = env_usize("NOC_MEASURE", 4000) as u64;
    let run = env_runner();
    println!("{:<14} {:>6} {:>12}", "config", "depth", "saturation");
    for (topo, c) in [
        (TopologyKind::Mesh8x8, 2usize),
        (TopologyKind::FlattenedButterfly4x4, 2),
    ] {
        for depth in [4usize, 8, 16] {
            let cfg = SimConfig {
                buf_depth: depth,
                ..SimConfig::paper_baseline(topo, c)
            };
            let sat = saturation_rate_with(&cfg, warmup, measure, &*run);
            println!("{:<14} {:>6} {:>12.3}", cfg.label(), depth, sat);
        }
    }
}
