//! Figure 11: switch allocator power vs delay.

use noc_bench::figures::sw_cost_data;
use noc_bench::DESIGN_POINTS;

fn main() {
    for point in &DESIGN_POINTS {
        println!(
            "--- Figure 11({}): {} — power (mW) vs delay (ns) ---",
            point.tag,
            point.label()
        );
        println!(
            "{:<10} {:>22} {:>22} {:>22}",
            "variant", "nonspec ns/mW", "pessimistic ns/mW", "conventional ns/mW"
        );
        for p in sw_cost_data(point) {
            print!("{:<10}", p.variant);
            for m in &p.modes {
                match m {
                    Ok(r) => print!(" {:>11.3} {:>10.2}", r.delay_ns, r.power_mw),
                    Err(_) => print!(" {:>11} {:>10}", "OOM", "OOM"),
                }
            }
            println!();
        }
        println!();
    }
}
