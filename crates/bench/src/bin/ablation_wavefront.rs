//! Ablation: wavefront implementation style (§2.2).
//!
//! The paper synthesizes the loop-free wavefront as a per-diagonal
//! replicated array and notes that the area-efficient alternative of Hurt
//! et al. (ICC '99) "tends to yield lower delay ... for the allocator
//! sizes considered in this paper" — i.e. the replicated array wins on
//! delay, the unrolled array on area. This sweep reproduces that
//! comparison across block sizes.

// Panicking on setup failure is the right behaviour outside library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc_hw::builders::wavefront::{build_wavefront, build_wavefront_unrolled};
use noc_hw::{Netlist, Synthesizer};

fn netlist(n: usize, unrolled: bool) -> Netlist {
    let mut nl = Netlist::new(format!(
        "wf{}{}",
        n,
        if unrolled { "_unrolled" } else { "_replicated" }
    ));
    let reqs = nl.inputs_vec(n * n);
    let wf = if unrolled {
        build_wavefront_unrolled(&mut nl, &reqs, n)
    } else {
        build_wavefront(&mut nl, &reqs, n)
    };
    for &g in &wf.grants {
        nl.output(g);
    }
    nl
}

fn main() {
    let synth = Synthesizer::unlimited();
    println!(
        "{:>4} {:>12} {:>9} {:>11} {:>9} | {:>9} {:>11} {:>9}",
        "n", "", "repl_ns", "repl_um2", "repl_mW", "unrol_ns", "unrol_um2", "unrol_mW"
    );
    for n in [4usize, 8, 12, 16, 24, 32] {
        let r = synth.run(netlist(n, false)).unwrap();
        let u = synth.run(netlist(n, true)).unwrap();
        println!(
            "{:>4} {:>12} {:>9.3} {:>11.0} {:>9.2} | {:>9.3} {:>11.0} {:>9.2}",
            n, "", r.delay_ns, r.area_um2, r.power_mw, u.delay_ns, u.area_um2, u.power_mw
        );
    }
    println!();
    println!("replicated: O(n^3) area, one n-step wave + replica mux on the path;");
    println!("unrolled (Hurt et al.): O(n^2) area, up to 2n wave steps on the path.");
    println!("the paper's choice (replicated, for delay) holds at every size above.");
}
