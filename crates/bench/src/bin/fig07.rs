//! Figure 7: VC allocator matching quality vs request rate for the three
//! architectures on all six design points.
//!
//! `NOC_TRIALS` overrides the request matrices per rate point (paper:
//! 10000; default here 3000 for single-core runtime).

use noc_bench::figures::{quality_rates, vc_quality_data};
use noc_bench::{env_usize, DESIGN_POINTS};

fn main() {
    let trials = env_usize("NOC_TRIALS", 3000);
    let rates = quality_rates();
    println!("trials per point: {trials} (paper: 10000)\n");
    for point in &DESIGN_POINTS {
        println!(
            "--- Figure 7({}): {} — matching quality ---",
            point.tag,
            point.label()
        );
        print!("{:<8}", "rate");
        for r in &rates {
            print!(" {r:>6.2}");
        }
        println!();
        for curve in vc_quality_data(point, trials) {
            print!("{:<8}", curve.label);
            for p in &curve.points {
                print!(" {:>6.3}", p.quality());
            }
            println!();
        }
        println!();
    }
}
