//! Figure 12: switch allocator matching quality vs request rate.

use noc_bench::figures::{quality_rates, sw_quality_data};
use noc_bench::{env_usize, DESIGN_POINTS};

fn main() {
    let trials = env_usize("NOC_TRIALS", 3000);
    let rates = quality_rates();
    println!("trials per point: {trials} (paper: 10000)\n");
    for point in &DESIGN_POINTS {
        println!(
            "--- Figure 12({}): {} — matching quality ---",
            point.tag,
            point.label()
        );
        print!("{:<8}", "rate");
        for r in &rates {
            print!(" {r:>6.2}");
        }
        println!();
        for curve in sw_quality_data(point, trials) {
            print!("{:<8}", curve.label);
            for p in &curve.points {
                print!(" {:>6.3}", p.quality());
            }
            println!();
        }
        println!();
    }
}
