//! Ablation: round-robin vs matrix arbiters (DESIGN.md §6).
//!
//! The paper concludes the delay advantage of matrix arbiters "is unlikely
//! to justify the higher cost" (§4.3.1/§5.3.1). This sweep isolates the
//! arbiter itself: synthesis cost of standalone rr/matrix/tree arbiters
//! across widths, and the (absence of) matching-quality impact of the
//! arbiter kind inside separable allocators.

// Panicking on setup failure is the right behaviour outside library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc_bench::env_usize;
use noc_core::AllocatorKind;
use noc_core::VcAllocSpec;
use noc_hw::builders::arbiters::{arbiter_netlist, HwArbiterKind};
use noc_hw::Synthesizer;
use noc_quality::{vc_quality_curve, VcQualityConfig};

fn main() {
    let synth = Synthesizer::unlimited();
    println!("standalone arbiter synthesis:");
    println!(
        "{:<6} {:>5} {:>9} {:>11} {:>9}",
        "kind", "width", "delay_ns", "area_um2", "power_mW"
    );
    for n in [4usize, 8, 16, 32, 64] {
        for kind in [HwArbiterKind::RoundRobin, HwArbiterKind::Matrix] {
            let r = synth.run(arbiter_netlist(kind, n)).unwrap();
            println!(
                "{:<6} {:>5} {:>9.3} {:>11.0} {:>9.2}",
                format!("{kind:?}")
                    .to_lowercase()
                    .chars()
                    .take(6)
                    .collect::<String>(),
                n,
                r.delay_ns,
                r.area_um2,
                r.power_mw
            );
        }
    }

    println!("\nmatching quality: arbiter kind inside separable VC allocators (rate 1.0):");
    let trials = env_usize("NOC_TRIALS", 2000);
    for spec in [VcAllocSpec::mesh(4), VcAllocSpec::fbfly(2)] {
        let cfg = VcQualityConfig {
            spec: spec.clone(),
            trials,
            seed: 11,
        };
        for kind in [
            AllocatorKind::SepIfRr,
            AllocatorKind::SepIfMatrix,
            AllocatorKind::SepOfRr,
            AllocatorKind::SepOfMatrix,
        ] {
            let q = vc_quality_curve(&cfg, kind, &[1.0]).points[0].quality();
            println!("  {} {:<10} {q:.3}", spec.label(), kind.label());
        }
    }
    println!("\nconclusion check: quality is essentially arbiter-kind independent;");
    println!("matrix buys delay at a superlinear area cost (see widths 32/64).");
}
