//! Data-series computation for every figure in the paper's evaluation.

use crate::points::DesignPoint;
use noc_core::{AllocatorKind, SpecMode, SwitchAllocatorKind};
use noc_hw::builders::sw_alloc::synthesize_switch_allocator;
use noc_hw::builders::vc_alloc::synthesize_vc_allocator;
use noc_hw::{SynthError, SynthResult, Synthesizer};
use noc_quality::{
    sw_quality_curve, vc_quality_curve, QualityCurve, SwQualityConfig, VcQualityConfig,
};
use noc_sim::sim::{latency_curve_with, run_sim};
use noc_sim::{SimConfig, SimResult};

/// The runner signature every simulation-driven series accepts: a plain
/// `run_sim` closure reproduces the legacy behavior; the sweep
/// orchestrator's cache-backed runner makes the same computation
/// resumable and shareable across binaries.
pub type SimRunner = dyn Fn(&SimConfig, u64, u64) -> SimResult + Sync;

/// The direct (uncached) runner: plain [`run_sim`].
pub fn direct_runner() -> impl Fn(&SimConfig, u64, u64) -> SimResult + Sync {
    |cfg, warmup, measure| run_sim(cfg, warmup, measure)
}

/// One VC-allocator cost point (Figures 5/6): a variant in dense and
/// sparse organization.
pub struct VcCostPoint {
    /// Architecture label (`sep_if/m`, …).
    pub variant: &'static str,
    /// Allocator kind.
    pub kind: AllocatorKind,
    /// Dense (un-optimized) synthesis outcome.
    pub dense: Result<SynthResult, SynthError>,
    /// Sparse (§4.2-optimized) synthesis outcome.
    pub sparse: Result<SynthResult, SynthError>,
}

/// Synthesizes all VC-allocator variants of one design point (Figures 5/6).
pub fn vc_cost_data(point: &DesignPoint) -> Vec<VcCostPoint> {
    let synth = Synthesizer::default();
    let spec = point.spec();
    AllocatorKind::COST_FIGURE_KINDS
        .iter()
        .map(|&kind| VcCostPoint {
            variant: kind.label(),
            kind,
            dense: synthesize_vc_allocator(&synth, &spec, kind, false),
            sparse: synthesize_vc_allocator(&synth, &spec, kind, true),
        })
        .collect()
}

/// The §4.3.1 headline: best-case savings of sparse over dense VC
/// allocation across a set of cost points (delay, area, power in percent).
pub fn sparse_savings(points: &[Vec<VcCostPoint>]) -> (f64, f64, f64) {
    let (mut d, mut a, mut p) = (0.0f64, 0.0f64, 0.0f64);
    for point in points {
        for vc in point {
            if let (Ok(dense), Ok(sparse)) = (&vc.dense, &vc.sparse) {
                d = d.max(100.0 * (1.0 - sparse.delay_ns / dense.delay_ns));
                a = a.max(100.0 * (1.0 - sparse.area_um2 / dense.area_um2));
                p = p.max(100.0 * (1.0 - sparse.power_mw / dense.power_mw));
            }
        }
    }
    (d, a, p)
}

/// One switch-allocator cost point (Figures 10/11): a variant across the
/// three speculation schemes.
pub struct SwCostPoint {
    /// Architecture label.
    pub variant: String,
    /// Switch allocator kind.
    pub kind: SwitchAllocatorKind,
    /// `[nonspec, pessimistic, conventional]` synthesis outcomes — the
    /// three connected data points per curve in Figures 10/11.
    pub modes: [Result<SynthResult, SynthError>; 3],
}

/// Switch-allocator variants plotted in Figures 10/11.
pub fn sw_variants() -> Vec<SwitchAllocatorKind> {
    use noc_arbiter::ArbiterKind::{Matrix, RoundRobin};
    vec![
        SwitchAllocatorKind::SepIf(Matrix),
        SwitchAllocatorKind::SepIf(RoundRobin),
        SwitchAllocatorKind::SepOf(Matrix),
        SwitchAllocatorKind::SepOf(RoundRobin),
        SwitchAllocatorKind::Wavefront,
    ]
}

/// Synthesizes all switch-allocator variants of one design point
/// (Figures 10/11).
pub fn sw_cost_data(point: &DesignPoint) -> Vec<SwCostPoint> {
    let synth = Synthesizer::default();
    let spec = point.spec();
    let (p, v) = (spec.ports(), spec.total_vcs());
    sw_variants()
        .into_iter()
        .map(|kind| SwCostPoint {
            variant: kind.label(),
            kind,
            modes: [
                synthesize_switch_allocator(&synth, kind, p, v, SpecMode::NonSpeculative),
                synthesize_switch_allocator(&synth, kind, p, v, SpecMode::Pessimistic),
                synthesize_switch_allocator(&synth, kind, p, v, SpecMode::Conventional),
            ],
        })
        .collect()
}

/// The §5.3.1 headline: best-case delay saving of pessimistic vs
/// conventional speculation, in percent.
pub fn pessimistic_delay_saving(points: &[Vec<SwCostPoint>]) -> f64 {
    let mut best = 0.0f64;
    for point in points {
        for sw in point {
            if let (Ok(pess), Ok(conv)) = (&sw.modes[1], &sw.modes[2]) {
                best = best.max(100.0 * (1.0 - pess.delay_ns / conv.delay_ns));
            }
        }
    }
    best
}

/// The request-rate grid of the quality figures (x axis 0 → 1).
pub fn quality_rates() -> Vec<f64> {
    (1..=10).map(|i| i as f64 * 0.1).collect()
}

/// Figure 7 series for one design point: matching-quality curves for the
/// three architectures.
pub fn vc_quality_data(point: &DesignPoint, trials: usize) -> Vec<QualityCurve> {
    let cfg = VcQualityConfig {
        spec: point.spec(),
        trials,
        seed: 0x5c09,
    };
    let rates = quality_rates();
    AllocatorKind::QUALITY_FIGURE_KINDS
        .iter()
        .map(|&k| vc_quality_curve(&cfg, k, &rates))
        .collect()
}

/// Figure 12 series for one design point.
pub fn sw_quality_data(point: &DesignPoint, trials: usize) -> Vec<QualityCurve> {
    use noc_arbiter::ArbiterKind::RoundRobin;
    let spec = point.spec();
    let cfg = SwQualityConfig {
        ports: spec.ports(),
        vcs: spec.total_vcs(),
        trials,
        seed: 0x5c09,
    };
    let rates = quality_rates();
    [
        SwitchAllocatorKind::SepIf(RoundRobin),
        SwitchAllocatorKind::SepOf(RoundRobin),
        SwitchAllocatorKind::Wavefront,
    ]
    .iter()
    .map(|&k| sw_quality_curve(&cfg, k, &rates))
    .collect()
}

/// A labeled latency-vs-injection-rate curve (one line of Figures 13/14).
pub struct LatencyCurve {
    /// Legend label.
    pub label: String,
    /// The configuration that produced the curve.
    pub cfg: SimConfig,
    /// One result per rate of the design point's grid.
    pub results: Vec<SimResult>,
}

impl LatencyCurve {
    /// Saturation estimate: the highest offered rate that stayed stable.
    pub fn saturation(&self) -> f64 {
        self.results
            .iter()
            .filter(|r| r.stable)
            .map(|r| r.offered)
            .fold(0.0, f64::max)
    }

    /// Bisection-refined saturation rate: narrows the bracket between the
    /// last stable and the first unstable grid point with a few extra runs
    /// of the given configuration.
    pub fn refined_saturation(&self, warmup: u64, measure: u64) -> f64 {
        self.refined_saturation_with(warmup, measure, &direct_runner())
    }

    /// As [`LatencyCurve::refined_saturation`], with the probe runs
    /// produced by `run` (the probe sequence is deterministic, so a cache
    /// makes the refinement free on re-runs).
    pub fn refined_saturation_with(&self, warmup: u64, measure: u64, run: &SimRunner) -> f64 {
        let cfg = &self.cfg;
        let mut lo = self.saturation();
        if lo == 0.0 {
            return 0.0;
        }
        let mut hi = self
            .results
            .iter()
            .filter(|r| !r.stable && r.offered > lo)
            .map(|r| r.offered)
            .fold(f64::INFINITY, f64::min);
        if !hi.is_finite() {
            // Stable across the whole grid; extend upward once.
            hi = (lo * 1.4).min(1.0);
        }
        for _ in 0..3 {
            let mid = 0.5 * (lo + hi);
            let r = run(
                &SimConfig {
                    injection_rate: mid,
                    ..cfg.clone()
                },
                warmup,
                measure,
            );
            if r.stable {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Latency at the lowest measured rate (zero-load proxy).
    pub fn min_rate_latency(&self) -> f64 {
        self.results.first().map_or(f64::NAN, |r| r.avg_latency)
    }
}

/// Figure 13: latency curves for the three switch-allocator architectures
/// on one design point (VC allocator fixed to `sep_if`, pessimistic
/// speculation — §5.3.3).
pub fn sa_latency_data(point: &DesignPoint, warmup: u64, measure: u64) -> Vec<LatencyCurve> {
    sa_latency_data_with(point, warmup, measure, &direct_runner())
}

/// [`sa_latency_data`] with an injectable runner (see [`SimRunner`]).
pub fn sa_latency_data_with(
    point: &DesignPoint,
    warmup: u64,
    measure: u64,
    run: &SimRunner,
) -> Vec<LatencyCurve> {
    use noc_arbiter::ArbiterKind::RoundRobin;
    let base = SimConfig::paper_baseline(point.topology, point.vcs_per_class);
    let rates = point.rate_grid();
    [
        ("sep_if", SwitchAllocatorKind::SepIf(RoundRobin)),
        ("sep_of", SwitchAllocatorKind::SepOf(RoundRobin)),
        ("wf", SwitchAllocatorKind::Wavefront),
    ]
    .iter()
    .map(|(label, kind)| {
        let cfg = SimConfig {
            sa_kind: *kind,
            ..base.clone()
        };
        LatencyCurve {
            label: label.to_string(),
            results: latency_curve_with(&cfg, &rates, warmup, measure, run),
            cfg,
        }
    })
    .collect()
}

/// Figure 14: latency curves for the three speculation schemes on one
/// design point (switch allocator fixed to `sep_if` — §5.3.3).
pub fn spec_latency_data(point: &DesignPoint, warmup: u64, measure: u64) -> Vec<LatencyCurve> {
    spec_latency_data_with(point, warmup, measure, &direct_runner())
}

/// [`spec_latency_data`] with an injectable runner (see [`SimRunner`]).
pub fn spec_latency_data_with(
    point: &DesignPoint,
    warmup: u64,
    measure: u64,
    run: &SimRunner,
) -> Vec<LatencyCurve> {
    let base = SimConfig::paper_baseline(point.topology, point.vcs_per_class);
    let rates = point.rate_grid();
    SpecMode::ALL
        .iter()
        .map(|&mode| {
            let cfg = SimConfig {
                spec_mode: mode,
                ..base.clone()
            };
            LatencyCurve {
                label: mode.label().to_string(),
                results: latency_curve_with(&cfg, &rates, warmup, measure, run),
                cfg,
            }
        })
        .collect()
}

/// Zero-load latency at 1% load for an arbitrary configuration (used by
/// the Figure 14 summaries).
pub fn zero_load(cfg: &SimConfig, measure: u64) -> f64 {
    let cfg = SimConfig {
        injection_rate: 0.01,
        ..cfg.clone()
    };
    run_sim(&cfg, 2_000, measure).avg_latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::TopologyKind;

    fn synth(delay: f64, area: f64, power: f64) -> SynthResult {
        SynthResult {
            name: "t".into(),
            delay_ns: delay,
            area_um2: area,
            power_mw: power,
            cells: 1,
            dffs: 0,
            buffers_inserted: 0,
            sizing_iterations: 0,
        }
    }

    #[test]
    fn sparse_savings_arithmetic() {
        let points = vec![vec![VcCostPoint {
            variant: "x",
            kind: AllocatorKind::SepIfRr,
            dense: Ok(synth(2.0, 1000.0, 10.0)),
            sparse: Ok(synth(1.0, 100.0, 2.0)),
        }]];
        let (d, a, p) = sparse_savings(&points);
        assert!((d - 50.0).abs() < 1e-9);
        assert!((a - 90.0).abs() < 1e-9);
        assert!((p - 80.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_savings_skips_oom_points() {
        let points = vec![vec![VcCostPoint {
            variant: "x",
            kind: AllocatorKind::Wavefront,
            dense: Err(noc_hw::SynthError::OutOfMemory {
                cells: 1,
                budget: 0,
            }),
            sparse: Ok(synth(1.0, 100.0, 2.0)),
        }]];
        assert_eq!(sparse_savings(&points), (0.0, 0.0, 0.0));
    }

    #[test]
    fn pessimistic_saving_uses_best_point() {
        let points = vec![vec![SwCostPoint {
            variant: "x".into(),
            kind: SwitchAllocatorKind::Wavefront,
            modes: [
                Ok(synth(1.0, 1.0, 1.0)),
                Ok(synth(0.8, 1.0, 1.0)),
                Ok(synth(1.0, 1.0, 1.0)),
            ],
        }]];
        assert!((pessimistic_delay_saving(&points) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn latency_curve_saturation_logic() {
        let base = SimConfig::paper_baseline(TopologyKind::Mesh8x8, 1);
        let mk = |offered: f64, stable: bool| SimResult {
            offered,
            avg_latency: 20.0,
            request_latency: 20.0,
            reply_latency: 20.0,
            latency_std_dev: 1.0,
            latency_p99: 32.0,
            throughput: offered,
            stable,
            ci95: f64::NAN,
            seeds: 1,
            warmup_detected: None,
            telemetry: None,
            hist: Default::default(),
            router_stats: Default::default(),
            routers: Vec::new(),
        };
        let c = LatencyCurve {
            label: "t".into(),
            cfg: base,
            results: vec![mk(0.1, true), mk(0.2, true), mk(0.3, false)],
        };
        assert!((c.saturation() - 0.2).abs() < 1e-12);
        assert!((c.min_rate_latency() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn quality_rate_grid_is_the_unit_interval() {
        let r = quality_rates();
        assert_eq!(r.len(), 10);
        assert!((r[9] - 1.0).abs() < 1e-12);
    }
}
