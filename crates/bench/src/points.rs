//! The six design points evaluated throughout the paper (§3): subfigures
//! (a)–(f) of Figures 5–7 and 10–14.

use noc_core::VcAllocSpec;
use noc_sim::TopologyKind;

/// One (topology, VC configuration) design point.
#[derive(Clone, Copy, Debug)]
pub struct DesignPoint {
    /// Subfigure tag in the paper (`a` … `f`).
    pub tag: char,
    /// Topology.
    pub topology: TopologyKind,
    /// VCs per class (`C` in `MxRxC`).
    pub vcs_per_class: usize,
}

impl DesignPoint {
    /// The VC class structure of this point.
    pub fn spec(&self) -> VcAllocSpec {
        match self.topology {
            TopologyKind::Mesh8x8 => VcAllocSpec::mesh(self.vcs_per_class),
            TopologyKind::FlattenedButterfly4x4 => VcAllocSpec::fbfly(self.vcs_per_class),
            TopologyKind::Torus8x8 => VcAllocSpec::torus(self.vcs_per_class),
        }
    }

    /// Figure caption label, e.g. `mesh, 2x1x4 VCs`.
    pub fn label(&self) -> String {
        format!("{}, {} VCs", self.topology.label(), self.spec().label())
    }

    /// The injection-rate grid for the latency figures, matching the
    /// x-axis ranges of Figures 13/14 (per design point).
    pub fn rate_grid(&self) -> Vec<f64> {
        let max = match (self.topology, self.vcs_per_class) {
            (TopologyKind::Mesh8x8, 1) => 0.35,
            (TopologyKind::Mesh8x8, 2) => 0.40,
            (TopologyKind::Mesh8x8, _) => 0.45,
            (TopologyKind::FlattenedButterfly4x4, 1) => 0.50,
            (TopologyKind::FlattenedButterfly4x4, 2) => 0.60,
            (TopologyKind::FlattenedButterfly4x4, _) => 0.70,
            (TopologyKind::Torus8x8, _) => 0.60,
        };
        (1..=10).map(|i| max * i as f64 / 10.0).collect()
    }
}

/// The paper's six design points in subfigure order.
pub const DESIGN_POINTS: [DesignPoint; 6] = [
    DesignPoint {
        tag: 'a',
        topology: TopologyKind::Mesh8x8,
        vcs_per_class: 1,
    },
    DesignPoint {
        tag: 'b',
        topology: TopologyKind::Mesh8x8,
        vcs_per_class: 2,
    },
    DesignPoint {
        tag: 'c',
        topology: TopologyKind::Mesh8x8,
        vcs_per_class: 4,
    },
    DesignPoint {
        tag: 'd',
        topology: TopologyKind::FlattenedButterfly4x4,
        vcs_per_class: 1,
    },
    DesignPoint {
        tag: 'e',
        topology: TopologyKind::FlattenedButterfly4x4,
        vcs_per_class: 2,
    },
    DesignPoint {
        tag: 'f',
        topology: TopologyKind::FlattenedButterfly4x4,
        vcs_per_class: 4,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_cover_the_paper_grid() {
        assert_eq!(DESIGN_POINTS.len(), 6);
        assert_eq!(DESIGN_POINTS[0].spec().label(), "2x1x1");
        assert_eq!(DESIGN_POINTS[5].spec().label(), "2x2x4");
        assert_eq!(DESIGN_POINTS[5].spec().total_vcs(), 16);
        for p in &DESIGN_POINTS {
            let grid = p.rate_grid();
            assert_eq!(grid.len(), 10);
            assert!(grid.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
