//! End-to-end tests for `noc serve`: real TCP, concurrent clients with
//! overlapping grids, dedup accounting, and restart-with-zero-recompute.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use noc_bench::sweep::serve::{request, start, ClientOutcome, ServeOptions};
use noc_bench::sweep::SweepSpec;
use noc_obs::serve::{serve_status_request_line, serve_sweep_request_line, ServeEvent};
use noc_obs::JsonValue;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "noc-serve-it-{}-{tag}-{}",
        std::process::id(),
        // RELAXED: unique-name ticket only; nothing is published.
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

fn opts(root: &Path) -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: root.join("cache"),
        out_dir: root.join("sweeps"),
        workers: 2,
        quiet: true,
    }
}

/// A tiny mesh grid over `rates`, milliseconds to simulate.
fn spec_json(rates: &[f64]) -> String {
    let rates: Vec<String> = rates.iter().map(|r| format!("{r}")).collect();
    format!(
        "{{\"name\":\"e2e\",\"grids\":[{{\"topology\":\"mesh\",\"vcs\":1,\"rates\":[{}],\"warmup\":50,\"measure\":100}}]}}",
        rates.join(",")
    )
}

/// The digests a spec expands to, computed without the daemon.
fn digests_of(spec: &str) -> HashSet<String> {
    SweepSpec::from_json(spec)
        .unwrap()
        .expand()
        .iter()
        .map(|p| p.digest())
        .collect()
}

/// The `computed` digests recorded in a serve journal, with multiplicity.
fn journaled_digests(path: &Path) -> Vec<String> {
    fs::read_to_string(path)
        .unwrap()
        .lines()
        .skip(1)
        .filter_map(|l| JsonValue::parse(l).ok())
        .filter_map(|v| {
            v.get("digest")
                .and_then(JsonValue::as_str)
                .map(String::from)
        })
        .collect()
}

/// Two clients with overlapping grids, concurrently: every shared digest
/// is computed exactly once, both clients receive complete result sets,
/// and the journal records each computed digest exactly once.
#[test]
fn concurrent_overlapping_clients_compute_each_shared_digest_once() {
    let root = scratch("overlap");
    let daemon = start(&opts(&root)).unwrap();
    let addr = daemon.addr().to_string();

    let spec_a = spec_json(&[0.05, 0.10, 0.20]);
    let spec_b = spec_json(&[0.05, 0.10, 0.30]);
    let union: HashSet<String> = digests_of(&spec_a)
        .union(&digests_of(&spec_b))
        .cloned()
        .collect();
    assert_eq!(union.len(), 4, "2 shared + 1 unique per client");

    let (out_a, out_b) = std::thread::scope(|scope| {
        let run = |id: &'static str, spec: &str| {
            let line = serve_sweep_request_line(id, spec, None);
            let addr = addr.clone();
            let spec = spec.to_string();
            scope.spawn(move || {
                let mut results: HashMap<String, String> = HashMap::new();
                let outcome = request(&addr, &line, |_, event| {
                    if let ServeEvent::Result {
                        digest,
                        result_json,
                        source,
                        ..
                    } = event
                    {
                        assert!(
                            source == "computed" || source == "cache",
                            "unexpected source {source}"
                        );
                        results.insert(digest.clone(), result_json.clone());
                    }
                })
                .unwrap();
                assert_eq!(
                    results.keys().cloned().collect::<HashSet<_>>(),
                    digests_of(&spec),
                    "{id} received exactly its spec's digests"
                );
                (outcome, results)
            })
        };
        let a = run("client-a", &spec_a);
        let b = run("client-b", &spec_b);
        (a.join().unwrap(), b.join().unwrap())
    });

    let (oa, results_a): (ClientOutcome, HashMap<String, String>) = out_a;
    let (ob, results_b) = out_b;
    assert_eq!(oa.unique, 3);
    assert_eq!(ob.unique, 3);
    // Every point was satisfied exactly once daemon-wide.
    let counters = daemon.counters();
    assert_eq!(
        counters.computed,
        union.len(),
        "each unique digest computed exactly once across both clients"
    );
    assert_eq!(counters.clients, 2);
    // Cross-client agreement: shared digests carry identical results.
    for (digest, json) in &results_a {
        if let Some(other) = results_b.get(digest) {
            assert_eq!(json, other, "shared digest {digest} byte-identical");
        }
    }
    // The journal saw each computed digest once — no duplicate work.
    let journal = daemon.journal_path();
    let shutdown_counters = daemon.shutdown();
    assert_eq!(shutdown_counters.computed, union.len());
    let mut recorded = journaled_digests(&journal);
    let n = recorded.len();
    recorded.sort();
    recorded.dedup();
    assert_eq!(recorded.len(), n, "no digest journaled twice");
    assert_eq!(recorded.into_iter().collect::<HashSet<_>>(), union);
    let _ = fs::remove_dir_all(&root);
}

/// Restarting the daemon over the same directories serves every
/// previously computed point from the cache: zero recomputation, and the
/// journal gains no new records.
#[test]
fn restart_resumes_with_zero_recomputation() {
    let root = scratch("restart");
    let spec = spec_json(&[0.05, 0.10]);
    let expected = digests_of(&spec);

    // Life 1: compute everything.
    let daemon = start(&opts(&root)).unwrap();
    let addr = daemon.addr().to_string();
    let outcome = request(
        &addr,
        &serve_sweep_request_line("first", &spec, None),
        |_, _| {},
    )
    .unwrap();
    assert_eq!(outcome.scheduled, expected.len());
    let journal = daemon.journal_path();
    assert_eq!(daemon.shutdown().computed, expected.len());
    let journal_before = fs::read_to_string(&journal).unwrap();

    // Life 2: same directories — everything is a cache hit.
    let daemon = start(&opts(&root)).unwrap();
    let addr = daemon.addr().to_string();
    let mut sources = Vec::new();
    let outcome = request(
        &addr,
        &serve_sweep_request_line("second", &spec, None),
        |_, event| {
            if let ServeEvent::Result { source, .. } = event {
                sources.push(source.clone());
            }
        },
    )
    .unwrap();
    assert_eq!(outcome.cache_hits, expected.len());
    assert_eq!(outcome.scheduled, 0);
    assert!(sources.iter().all(|s| s == "cache"), "{sources:?}");
    let counters = daemon.shutdown();
    assert_eq!(counters.computed, 0, "restart recomputed nothing");
    assert_eq!(
        fs::read_to_string(&journal).unwrap(),
        journal_before,
        "journal unchanged across the restart run"
    );
    let _ = fs::remove_dir_all(&root);
}

/// The status request and malformed requests over the real wire.
#[test]
fn status_and_error_paths_answer_over_tcp() {
    let root = scratch("status");
    let daemon = start(&opts(&root)).unwrap();
    let addr = daemon.addr().to_string();

    let spec = spec_json(&[0.05]);
    request(
        &addr,
        &serve_sweep_request_line("warm", &spec, None),
        |_, _| {},
    )
    .unwrap();

    let mut seen = None;
    request(&addr, &serve_status_request_line("st"), |_, event| {
        if let ServeEvent::Status {
            computed, clients, ..
        } = event
        {
            seen = Some((*computed, *clients));
        }
    })
    .unwrap();
    assert_eq!(seen, Some((1, 1)), "status reports the computed point");

    // A malformed request is refused with an error line, not a hang.
    let err = request(
        &addr,
        "{\"schema\":\"noc-serve/v1\",\"type\":\"sweep\",\"id\":\"x\"}",
        |_, _| {},
    )
    .unwrap_err();
    assert!(err.contains("daemon refused"), "{err}");

    // An engine override rides the request through to completion.
    let line = serve_sweep_request_line("eng", &spec_json(&[0.07]), Some("seq"));
    let outcome = request(&addr, &line, |_, _| {}).unwrap();
    assert_eq!(outcome.unique, 1);
    daemon.shutdown();
    let _ = fs::remove_dir_all(&root);
}
