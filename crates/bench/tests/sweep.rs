//! Integration tests for the sweep orchestrator: resumability, cache
//! sharing, and bit-identical preset renders.

use noc_bench::figures::direct_runner;
use noc_bench::sweep::presets::ablation_speculation_spec;
use noc_bench::sweep::{
    cached_runner, render, run_sweep, ResultCache, SweepGrid, SweepOptions, SweepSpec,
};
use noc_sim::{Engine, TopologyKind};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "noc-sweep-it-{}-{tag}-{}",
        std::process::id(),
        // RELAXED: unique-name ticket only; nothing is published.
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

fn opts(root: &Path) -> SweepOptions {
    SweepOptions {
        cache_dir: root.join("cache"),
        out_dir: root.join("sweeps"),
        engine: None,
        quiet: true,
        require_journal: false,
        telemetry: false,
        anatomy: false,
    }
}

/// A three-point sweep small enough to simulate in milliseconds.
fn tiny_spec(name: &str) -> SweepSpec {
    SweepSpec {
        name: name.into(),
        grids: vec![SweepGrid {
            topology: vec![TopologyKind::Mesh8x8],
            vcs: vec![1],
            rates: vec![0.05, 0.10, 0.15],
            warmup: 50,
            measure: 100,
            ..SweepGrid::default()
        }],
    }
}

#[test]
fn fresh_run_computes_everything_and_rerun_computes_nothing() {
    let root = scratch("rerun");
    let spec = tiny_spec("t");
    let first = run_sweep(&spec, &opts(&root)).unwrap();
    assert_eq!(
        (
            first.total,
            first.computed,
            first.cache_hits,
            first.journal_skips
        ),
        (3, 3, 0, 0)
    );
    let second = run_sweep(&spec, &opts(&root)).unwrap();
    assert_eq!(
        (second.computed, second.cache_hits, second.journal_skips),
        (0, 0, 3),
        "a completed sweep re-runs as pure journal skips"
    );
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(a.to_json_full(), b.to_json_full(), "results bit-identical");
    }
    assert!(first.manifest_path.exists());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn resume_after_kill_recomputes_nothing() {
    let root = scratch("kill");
    let spec = tiny_spec("t");
    let o = opts(&root);
    let first = run_sweep(&spec, &o).unwrap();
    assert_eq!(first.computed, 3);
    // Simulate a kill mid-run: the journal survives with only its header
    // and first record (the torn tail of a real crash is equivalent —
    // journal.rs tests cover torn lines).
    let journal = fs::read_to_string(&first.journal_path).unwrap();
    let kept: Vec<&str> = journal.lines().take(2).collect();
    fs::write(&first.journal_path, format!("{}\n", kept.join("\n"))).unwrap();

    let resumed = run_sweep(
        &spec,
        &SweepOptions {
            require_journal: true,
            ..o
        },
    )
    .unwrap();
    assert_eq!(resumed.computed, 0, "every lost point is a cache hit");
    assert_eq!(resumed.journal_skips, 1);
    assert_eq!(resumed.cache_hits, 2);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn resume_requires_a_journal_and_matching_spec() {
    let root = scratch("guard");
    let o = opts(&root);
    let err = run_sweep(
        &tiny_spec("t"),
        &SweepOptions {
            require_journal: true,
            ..o.clone()
        },
    )
    .unwrap_err();
    assert!(err.contains("no journal"), "{err}");

    let first = run_sweep(&tiny_spec("t"), &o).unwrap();
    // A different run window is a different sweep identity: it gets its
    // own journal (and shares nothing in the cache) instead of clashing.
    let mut changed = tiny_spec("t");
    changed.grids[0].measure = 200;
    let out = run_sweep(&changed, &o).unwrap();
    assert_ne!(out.journal_path, first.journal_path);
    assert_eq!(out.computed, 3, "window change misses the cache");
    // A journal whose header was tampered with (or collided) is refused.
    let text = fs::read_to_string(&first.journal_path).unwrap();
    fs::write(
        &first.journal_path,
        text.replacen(&first.spec_digest, &"0".repeat(32), 1),
    )
    .unwrap();
    let err = run_sweep(&tiny_spec("t"), &o).unwrap_err();
    assert!(err.contains("different sweep"), "{err}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cache_is_shared_across_sweeps() {
    let root = scratch("shared");
    let o = opts(&root);
    run_sweep(&tiny_spec("first"), &o).unwrap();
    // A different sweep whose grid overlaps on all three points plus one.
    let mut superset = tiny_spec("second");
    superset.grids[0].rates = vec![0.05, 0.10, 0.15, 0.20];
    let out = run_sweep(&superset, &o).unwrap();
    assert_eq!(
        (out.computed, out.cache_hits, out.journal_skips),
        (1, 3, 0),
        "overlapping points come from the first sweep's cache"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn preset_render_from_cache_is_bit_identical_to_direct() {
    let root = scratch("render");
    let (warmup, measure) = (100, 200);
    // The legacy path: direct simulation, exactly what the binary prints.
    let direct = render::ablation_speculation(&direct_runner(), warmup, measure);
    // The sweep path: populate the cache, then render through it.
    let spec = ablation_speculation_spec(warmup, measure);
    let out = run_sweep(&spec, &opts(&root)).unwrap();
    assert_eq!(out.computed, out.total, "cold cache computes all");
    let cache = ResultCache::new(&root.join("cache")).unwrap();
    let entries_before = cache.len();
    let via_cache =
        render::ablation_speculation(&cached_runner(cache, Engine::Sequential), warmup, measure);
    assert_eq!(direct, via_cache, "cached render bit-identical to direct");
    let cache = ResultCache::new(&root.join("cache")).unwrap();
    assert_eq!(
        cache.len(),
        entries_before,
        "render was all cache hits: no new entries"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn telemetry_sweep_writes_linked_dumps_without_touching_the_cache_contract() {
    let root = scratch("telemetry");
    let spec = tiny_spec("t");
    let recorded = run_sweep(
        &spec,
        &SweepOptions {
            telemetry: true,
            ..opts(&root)
        },
    )
    .unwrap();
    assert_eq!(recorded.computed, 3);

    // Every point got a parseable noc-telemetry/v1 dump, and the manifest
    // links each one by file name.
    let manifest = fs::read_to_string(&recorded.manifest_path).unwrap();
    let mut linked = 0;
    for part in manifest.split("\"telemetry\":\"").skip(1) {
        let name = part.split('"').next().unwrap();
        let dump_path = root.join("cache").join(name);
        let dump = noc_obs::TelemetryDump::parse(&fs::read_to_string(&dump_path).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", dump_path.display()));
        assert!(!dump.windows.is_empty(), "dump must hold windows");
        linked += 1;
    }
    assert_eq!(linked, 3, "all three points link a dump");

    // The cached SimResults are byte-identical to a plain sweep's: the
    // recorder is a pure observer and its summary stays out of the cache.
    let plain_root = scratch("telemetry-plain");
    let plain = run_sweep(&spec, &opts(&plain_root)).unwrap();
    for (a, b) in recorded.results.iter().zip(&plain.results) {
        assert_eq!(a.to_json_full(), b.to_json_full());
    }

    // A later *plain* re-run over the same cache still links the dumps.
    let rerun = run_sweep(&spec, &opts(&root)).unwrap();
    assert_eq!(rerun.computed, 0);
    let manifest = fs::read_to_string(&rerun.manifest_path).unwrap();
    assert_eq!(manifest.matches("\"telemetry\":\"").count(), 3);

    let _ = fs::remove_dir_all(&root);
    let _ = fs::remove_dir_all(&plain_root);
}

#[test]
fn anatomy_sweep_writes_linked_dumps_without_touching_the_cache_contract() {
    let root = scratch("anatomy");
    let spec = tiny_spec("t");
    let recorded = run_sweep(
        &spec,
        &SweepOptions {
            anatomy: true,
            ..opts(&root)
        },
    )
    .unwrap();
    assert_eq!(recorded.computed, 3);

    // Every point got a parseable noc-anatomy/v1 dump whose retained rows
    // all reconcile, and the manifest links each one by file name.
    let manifest = fs::read_to_string(&recorded.manifest_path).unwrap();
    let mut linked = 0;
    for part in manifest.split("\"anatomy\":\"").skip(1) {
        let name = part.split('"').next().unwrap();
        let dump_path = root.join("cache").join(name);
        let dump = noc_obs::AnatomyDump::parse(&fs::read_to_string(&dump_path).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", dump_path.display()));
        assert!(dump.totals.packets > 0, "dump must hold packets");
        for p in &dump.records {
            assert!(p.reconciles(), "{p:?}");
        }
        linked += 1;
    }
    assert_eq!(linked, 3, "all three points link a dump");

    // The cached SimResults are byte-identical to a plain sweep's: the
    // ledger is a pure observer and its dump stays out of the cache.
    let plain_root = scratch("anatomy-plain");
    let plain = run_sweep(&spec, &opts(&plain_root)).unwrap();
    for (a, b) in recorded.results.iter().zip(&plain.results) {
        assert_eq!(a.to_json_full(), b.to_json_full());
    }

    // A later *plain* re-run over the same cache still links the dumps.
    let rerun = run_sweep(&spec, &opts(&root)).unwrap();
    assert_eq!(rerun.computed, 0);
    let manifest = fs::read_to_string(&rerun.manifest_path).unwrap();
    assert_eq!(manifest.matches("\"anatomy\":\"").count(), 3);

    let _ = fs::remove_dir_all(&root);
    let _ = fs::remove_dir_all(&plain_root);
}
