//! Integration tests for the `noc bench` harness: report schema,
//! round-trip through the JSON reader, and the regression gate.

use noc_bench::{compare_baseline, parse_report, run_bench, BenchParams};
use noc_obs::validate_json;
use noc_sim::Engine;

fn tiny_params() -> BenchParams {
    BenchParams {
        quick: true,
        warmup: 200,
        measure: 600,
        reps: 1,
        engine: Engine::Sequential,
    }
}

#[test]
fn report_is_valid_json_and_round_trips() {
    let report = run_bench(&tiny_params(), |_| {});
    assert_eq!(report.workloads.len(), 7);
    let json = report.to_json();
    validate_json(&json).expect("bench report must be strict JSON");
    let parsed = parse_report(&json).expect("own report must parse");
    assert_eq!(parsed.schema, "noc-bench/v1");
    assert!(parsed.quick);
    assert_eq!(parsed.engine, "seq");
    assert_eq!(parsed.created_unix, report.created_unix);
    assert_eq!(parsed.workloads.len(), report.workloads.len());
    for (w, (name, cps)) in report.workloads.iter().zip(&parsed.workloads) {
        assert_eq!(&w.name, name);
        assert!(
            (w.cycles_per_sec - cps).abs() <= w.cycles_per_sec * 1e-12,
            "cycles_per_sec must survive the round trip"
        );
    }
    // Every workload must have measured something.
    for w in &report.workloads {
        assert!(w.cycles_per_sec > 0.0, "{}", w.name);
        assert!(w.result.avg_latency.is_finite(), "{}", w.name);
        assert!(w.profile.wall_nanos > 0, "{}: profile not stamped", w.name);
    }
}

#[test]
fn regression_gate_fires_on_injected_slowdown() {
    let report = run_bench(&tiny_params(), |_| {});
    let mut baseline = parse_report(&report.to_json()).unwrap();
    // Comparing a report against itself always passes.
    let ok = compare_baseline(&report, &baseline, 15.0);
    assert!(ok.is_ok(), "self-comparison failed: {ok:?}");
    // A baseline claiming 2x the throughput means this run is a 50%
    // regression — far beyond any tolerance below 50%.
    for (_, cps) in &mut baseline.workloads {
        *cps *= 2.0;
    }
    let err = compare_baseline(&report, &baseline, 15.0);
    let regressions = err.expect_err("2x-faster baseline must trip the gate");
    assert_eq!(regressions.len(), report.workloads.len());
    // ... but a tolerance above 50% lets it pass.
    assert!(compare_baseline(&report, &baseline, 60.0).is_ok());
}

#[test]
fn disjoint_baseline_is_an_error_not_a_pass() {
    let report = run_bench(&tiny_params(), |_| {});
    let mut baseline = parse_report(&report.to_json()).unwrap();
    for (name, _) in &mut baseline.workloads {
        name.push_str("_renamed");
    }
    assert!(
        compare_baseline(&report, &baseline, 15.0).is_err(),
        "zero compared workloads must not count as a pass"
    );
}

#[test]
fn wrong_schema_is_rejected() {
    let err = parse_report(r#"{"schema":"noc-bench/v0","workloads":[]}"#);
    assert!(err.is_err());
    let err = parse_report("not json at all");
    assert!(err.is_err());
}
