//! Smoke tests for every figure's data pipeline at reduced scale, so the
//! regeneration binaries cannot bit-rot between full runs.

use noc_bench::figures::*;
use noc_bench::points::DesignPoint;
use noc_bench::DESIGN_POINTS;
use noc_sim::TopologyKind;

fn small_points() -> Vec<&'static DesignPoint> {
    // One mesh and one fbfly point keep runtime reasonable.
    vec![&DESIGN_POINTS[0], &DESIGN_POINTS[3]]
}

#[test]
fn fig05_06_vc_cost_pipeline() {
    for point in small_points() {
        let data = vc_cost_data(point);
        assert_eq!(data.len(), 5, "five variants per subfigure");
        for p in &data {
            // Sparse always synthesizes at these sizes.
            let s = p
                .sparse
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: {e}", p.variant));
            assert!(s.delay_ns > 0.0 && s.area_um2 > 0.0 && s.power_mw > 0.0);
            if let Ok(d) = &p.dense {
                assert!(s.area_um2 < d.area_um2, "{}: sparse not smaller", p.variant);
            }
        }
    }
}

#[test]
fn fig10_11_sw_cost_pipeline() {
    for point in small_points() {
        let data = sw_cost_data(point);
        assert_eq!(data.len(), 5);
        for p in &data {
            let [ns, pess, conv] = &p.modes;
            let (ns, pess, conv) = (
                ns.as_ref().unwrap(),
                pess.as_ref().unwrap(),
                conv.as_ref().unwrap(),
            );
            assert!(
                ns.delay_ns <= pess.delay_ns + 1e-9 && pess.delay_ns <= conv.delay_ns + 1e-9,
                "{}: {} / {} / {}",
                p.variant,
                ns.delay_ns,
                pess.delay_ns,
                conv.delay_ns
            );
            // Speculative variants carry two allocators: more area.
            assert!(pess.area_um2 > 1.5 * ns.area_um2, "{}", p.variant);
        }
    }
}

#[test]
fn fig07_quality_pipeline() {
    let curves = vc_quality_data(&DESIGN_POINTS[0], 200);
    assert_eq!(curves.len(), 3);
    for c in &curves {
        assert_eq!(c.points.len(), quality_rates().len());
        // mesh 2x1x1: everyone at quality 1.
        assert!((c.min_quality() - 1.0).abs() < 1e-9, "{}", c.label);
    }
}

#[test]
fn fig12_quality_pipeline() {
    let curves = sw_quality_data(&DESIGN_POINTS[5], 200);
    assert_eq!(curves.len(), 3);
    let min_if = curves[0].min_quality();
    let min_wf = curves[2].min_quality();
    assert!(min_wf > min_if, "wf {min_wf} !> sep_if {min_if}");
}

#[test]
fn fig13_latency_pipeline() {
    let point = DesignPoint {
        tag: 'x',
        topology: TopologyKind::FlattenedButterfly4x4,
        vcs_per_class: 1,
    };
    let curves = sa_latency_data(&point, 500, 1_000);
    assert_eq!(curves.len(), 3);
    for c in &curves {
        assert_eq!(c.results.len(), point.rate_grid().len());
        // Lowest rate must be stable and fast.
        assert!(c.results[0].stable, "{}", c.label);
        assert!(c.results[0].avg_latency < 30.0, "{}", c.label);
    }
}

#[test]
fn fig14_speculation_pipeline() {
    let point = DesignPoint {
        tag: 'x',
        topology: TopologyKind::Mesh8x8,
        vcs_per_class: 1,
    };
    let curves = spec_latency_data(&point, 500, 1_500);
    assert_eq!(curves.len(), 3);
    let (ns, conv, pess) = (&curves[0], &curves[1], &curves[2]);
    assert_eq!(ns.label, "nonspec");
    assert_eq!(conv.label, "spec_gnt");
    assert_eq!(pess.label, "spec_req");
    // Speculation shows up even in a short run at the lowest rate.
    assert!(
        pess.min_rate_latency() < ns.min_rate_latency(),
        "pess {} !< nonspec {}",
        pess.min_rate_latency(),
        ns.min_rate_latency()
    );
}
