//! Criterion benchmarks: network-simulation cycle rate for the paper's two
//! topologies, and the per-engine step cost of the fast-path loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_obs::CountingSink;
use noc_sim::{Engine, Network, SimConfig, TopologyKind};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_cycles");
    group.sample_size(10);
    for (label, topo, vcs) in [
        ("mesh_2x1x1", TopologyKind::Mesh8x8, 1),
        ("mesh_2x1x4", TopologyKind::Mesh8x8, 4),
        ("fbfly_2x2x4", TopologyKind::FlattenedButterfly4x4, 4),
    ] {
        let cfg = SimConfig {
            injection_rate: 0.2,
            ..SimConfig::paper_baseline(topo, vcs)
        };
        // Default build: NopSink, every trace site compiles away. Compare
        // against run_500_traced below to measure instrumentation overhead.
        group.bench_with_input(BenchmarkId::new("run_500", label), &cfg, |b, cfg| {
            b.iter(|| {
                let mut net = Network::new(cfg.clone());
                net.run(500);
                net.total_flits_injected()
            })
        });
        group.bench_with_input(BenchmarkId::new("run_500_traced", label), &cfg, |b, cfg| {
            b.iter(|| {
                let mut net = Network::with_sink(cfg.clone(), CountingSink::default());
                net.run(500);
                net.sink.total()
            })
        });
    }
    group.finish();
}

/// One steady-state cycle on each engine, at a light load (where the
/// active-set engine skips most routers) and at the compute-bound 0.4
/// load (where the parallel engine amortizes its handshake).
fn bench_step_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_cycle");
    group.sample_size(10);
    for rate in [0.05, 0.4] {
        let cfg = SimConfig {
            injection_rate: rate,
            ..SimConfig::paper_baseline(TopologyKind::Mesh8x8, 2)
        };
        for engine in [Engine::Sequential, Engine::Parallel(4), Engine::ActiveSet] {
            let id = BenchmarkId::new(engine.label(), format!("mesh_r{rate}"));
            group.bench_with_input(id, &cfg, |b, cfg| {
                // Warm into steady state once, then time 200-cycle batches
                // that keep advancing the same network: the parallel pool
                // is per-run, so its spin-up cost is amortized here exactly
                // as in real workloads.
                let mut net = Network::new(cfg.clone());
                Engine::Sequential.run(&mut net, 500);
                b.iter(|| {
                    engine.run(&mut net, 200);
                    net.total_flits_injected()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_step_cycle);
criterion_main!(benches);
