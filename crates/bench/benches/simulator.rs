//! Criterion benchmarks: network-simulation cycle rate for the paper's two
//! topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_obs::CountingSink;
use noc_sim::{Network, SimConfig, TopologyKind};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_cycles");
    group.sample_size(10);
    for (label, topo, vcs) in [
        ("mesh_2x1x1", TopologyKind::Mesh8x8, 1),
        ("mesh_2x1x4", TopologyKind::Mesh8x8, 4),
        ("fbfly_2x2x4", TopologyKind::FlattenedButterfly4x4, 4),
    ] {
        let cfg = SimConfig {
            injection_rate: 0.2,
            ..SimConfig::paper_baseline(topo, vcs)
        };
        // Default build: NopSink, every trace site compiles away. Compare
        // against run_500_traced below to measure instrumentation overhead.
        group.bench_with_input(BenchmarkId::new("run_500", label), &cfg, |b, cfg| {
            b.iter(|| {
                let mut net = Network::new(cfg.clone());
                net.run(500);
                net.total_flits_injected()
            })
        });
        group.bench_with_input(BenchmarkId::new("run_500_traced", label), &cfg, |b, cfg| {
            b.iter(|| {
                let mut net = Network::with_sink(cfg.clone(), CountingSink::default());
                net.run(500);
                net.sink.total()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
