//! Criterion benchmarks: allocation throughput of the core architectures.
//!
//! These measure the *software model's* speed (allocations per second),
//! complementing the hardware cost model in `noc-hw` that measures the
//! *silicon* cost of the same architectures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_core::{AllocatorKind, BitMatrix};
use rand::{Rng, SeedableRng};

fn random_matrix(n: usize, density: f64, seed: u64) -> BitMatrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = BitMatrix::new(n, n);
    for r in 0..n {
        for c in 0..n {
            if rng.gen_bool(density) {
                m.set(r, c, true);
            }
        }
    }
    m
}

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate");
    group.sample_size(20);
    for kind in [
        AllocatorKind::SepIfRr,
        AllocatorKind::SepOfRr,
        AllocatorKind::Wavefront,
        AllocatorKind::MaxSize,
    ] {
        for n in [10usize, 40, 160] {
            let reqs = random_matrix(n, 0.2, 42);
            let mut alloc = kind.build(n, n);
            group.bench_with_input(
                BenchmarkId::new(kind.label().replace('/', "_"), n),
                &n,
                |b, _| b.iter(|| alloc.allocate(&reqs).count_ones()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
