//! Criterion benchmarks: synthesis-flow speed of the hardware cost model.

// Panicking on setup failure is the right behaviour outside library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_core::{AllocatorKind, VcAllocSpec};
use noc_hw::builders::vc_alloc::vc_allocator_netlist;
use noc_hw::Synthesizer;

fn bench_hwmodel(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    for (label, spec, kind, sparse) in [
        (
            "mesh_2x1x2_sep_if_sparse",
            VcAllocSpec::mesh(2),
            AllocatorKind::SepIfRr,
            true,
        ),
        (
            "mesh_2x1x2_wf_sparse",
            VcAllocSpec::mesh(2),
            AllocatorKind::Wavefront,
            true,
        ),
        (
            "fbfly_2x2x1_sep_if_sparse",
            VcAllocSpec::fbfly(1),
            AllocatorKind::SepIfRr,
            true,
        ),
    ] {
        let synth = Synthesizer::default();
        group.bench_function(BenchmarkId::new("vca", label), |b| {
            b.iter(|| {
                let nl = vc_allocator_netlist(&spec, kind, sparse);
                synth.run(nl).map(|r| r.delay_ns).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hwmodel);
criterion_main!(benches);
