//! Fixed-priority arbiter.

use crate::{Arbiter, Bits};

/// Static-priority arbiter: the lowest-indexed requester at or above a
/// configurable `base` position wins, without wraparound reordering over
/// time. With `base = 0` this is the classic priority encoder.
///
/// This is the building block the round-robin arbiter's RTL is made of (two
/// fixed-priority passes over a masked and an unmasked request vector), and
/// it is also useful as a deliberately unfair baseline in tests.
#[derive(Clone, Debug)]
pub struct FixedPriorityArbiter {
    n: usize,
    base: usize,
}

impl FixedPriorityArbiter {
    /// Creates an `n`-input fixed-priority arbiter with highest priority at
    /// index 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one input");
        FixedPriorityArbiter { n, base: 0 }
    }

    /// Creates an `n`-input arbiter whose highest-priority input is `base`;
    /// priority decreases cyclically from there.
    pub fn with_base(n: usize, base: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one input");
        assert!(base < n, "base {base} out of range {n}");
        FixedPriorityArbiter { n, base }
    }

    /// The current highest-priority input index.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Selects the first set bit at or cyclically after `base`.
    pub fn select_from(requests: &Bits, base: usize) -> Option<usize> {
        requests
            .first_set_from(base)
            .or_else(|| requests.first_set())
    }
}

impl Arbiter for FixedPriorityArbiter {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn arbitrate(&self, requests: &Bits) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request width mismatch");
        Self::select_from(requests, self.base)
    }

    fn update(&mut self, _winner: usize) {
        // Fixed priority: state never changes.
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_index_wins() {
        let arb = FixedPriorityArbiter::new(8);
        let r = Bits::from_indices(8, [3, 5, 7]);
        assert_eq!(arb.arbitrate(&r), Some(3));
    }

    #[test]
    fn base_shifts_priority_with_wraparound() {
        let arb = FixedPriorityArbiter::with_base(8, 6);
        let r = Bits::from_indices(8, [3, 5]);
        // Nothing at 6 or 7, wraps to 3.
        assert_eq!(arb.arbitrate(&r), Some(3));
        let r = Bits::from_indices(8, [3, 7]);
        assert_eq!(arb.arbitrate(&r), Some(7));
    }

    #[test]
    fn update_is_noop() {
        let mut arb = FixedPriorityArbiter::new(4);
        let r = Bits::ones(4);
        assert_eq!(arb.arbitrate(&r), Some(0));
        arb.update(0);
        assert_eq!(arb.arbitrate(&r), Some(0));
    }

    #[test]
    fn starves_low_priority_inputs() {
        // Documents the (intentional) unfairness: with 0 always requesting,
        // input 1 never wins.
        let mut arb = FixedPriorityArbiter::new(2);
        let r = Bits::ones(2);
        for _ in 0..10 {
            let w = arb.arbitrate(&r).unwrap();
            assert_eq!(w, 0);
            arb.update(w);
        }
    }
}
