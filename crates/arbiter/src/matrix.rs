//! Matrix (least-recently-served) arbiter.

use crate::{Arbiter, Bits};

/// Matrix arbiter (the `m` variants in the paper's figures).
///
/// Maintains an antisymmetric priority matrix `w`, where `w[i][j] == true`
/// means input `i` currently beats input `j`. Input `i` wins iff it requests
/// and beats every other requester. After a committed grant the winner's row
/// is cleared and its column set, making it the least-recently-served (lowest
/// priority) input — which yields strong, least-recently-served fairness.
///
/// In hardware the state is `n(n-1)/2` flip-flops (only the upper triangle is
/// stored; the lower is its complement). The behavioural model stores the
/// full matrix for clarity but maintains the antisymmetry invariant, which is
/// asserted in debug builds and exercised by the tests.
#[derive(Clone, Debug)]
pub struct MatrixArbiter {
    n: usize,
    /// Row-major: `beats[i * n + j]` is true iff `i` has priority over `j`.
    beats: Vec<bool>,
}

impl MatrixArbiter {
    /// Creates an `n`-input matrix arbiter with initial priority order
    /// `0 > 1 > ... > n-1`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one input");
        let mut beats = vec![false; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                beats[i * n + j] = true;
            }
        }
        MatrixArbiter { n, beats }
    }

    #[inline]
    fn beats(&self, i: usize, j: usize) -> bool {
        self.beats[i * self.n + j]
    }

    /// Checks the antisymmetry invariant: exactly one of `w[i][j]`,
    /// `w[j][i]` holds for each pair `i != j`.
    pub fn is_consistent(&self) -> bool {
        for i in 0..self.n {
            if self.beats(i, i) {
                return false;
            }
            for j in (i + 1)..self.n {
                if self.beats(i, j) == self.beats(j, i) {
                    return false;
                }
            }
        }
        true
    }

    /// Current total priority order, highest priority first. Well-defined
    /// because grants keep the relation a strict total order (it starts as
    /// one, and moving a winner to the bottom preserves that).
    pub fn priority_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.sort_by_key(|&i| {
            // Rank = number of inputs that beat i.
            (0..self.n).filter(|&j| j != i && self.beats(j, i)).count()
        });
        idx
    }
}

impl Arbiter for MatrixArbiter {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn arbitrate(&self, requests: &Bits) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request width mismatch");
        'outer: for i in requests.iter_set() {
            for j in requests.iter_set() {
                if j != i && !self.beats(i, j) {
                    continue 'outer;
                }
            }
            return Some(i);
        }
        // With a consistent (total-order) matrix some requester always wins;
        // reaching here means requests was empty.
        debug_assert!(requests.is_zero(), "inconsistent priority matrix");
        None
    }

    fn update(&mut self, winner: usize) {
        assert!(winner < self.n, "winner {winner} out of range {}", self.n);
        for j in 0..self.n {
            if j != winner {
                self.beats[winner * self.n + j] = false;
                self.beats[j * self.n + winner] = true;
            }
        }
        debug_assert!(self.is_consistent());
    }

    fn reset(&mut self) {
        *self = MatrixArbiter::new(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_order_is_index_order() {
        let arb = MatrixArbiter::new(5);
        assert!(arb.is_consistent());
        assert_eq!(arb.priority_order(), vec![0, 1, 2, 3, 4]);
        assert_eq!(arb.arbitrate(&Bits::ones(5)), Some(0));
    }

    #[test]
    fn winner_drops_to_lowest_priority() {
        let mut arb = MatrixArbiter::new(4);
        arb.update(0);
        assert_eq!(arb.priority_order(), vec![1, 2, 3, 0]);
        arb.update(2);
        assert_eq!(arb.priority_order(), vec![1, 3, 0, 2]);
        assert!(arb.is_consistent());
    }

    #[test]
    fn least_recently_served_wins() {
        let mut arb = MatrixArbiter::new(3);
        // Serve 0 then 1; now 2 is least recently served.
        arb.update(0);
        arb.update(1);
        assert_eq!(arb.arbitrate(&Bits::ones(3)), Some(2));
        // Among {0, 1}, 0 was served longer ago.
        let r = Bits::from_indices(3, [0, 1]);
        assert_eq!(arb.arbitrate(&r), Some(0));
    }

    #[test]
    fn lrs_fairness_differs_from_round_robin_on_sparse_requests() {
        // After serving 2, a matrix arbiter prefers the least recently
        // served of the remaining requesters (0), while round-robin would
        // scan from index 3 upward.
        let mut arb = MatrixArbiter::new(4);
        arb.update(2);
        let r = Bits::from_indices(4, [0, 3]);
        assert_eq!(arb.arbitrate(&r), Some(0));
    }

    #[test]
    fn consistency_preserved_under_random_updates() {
        let mut arb = MatrixArbiter::new(6);
        let mut x = 12345u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let w = (x >> 33) as usize % 6;
            arb.update(w);
            assert!(arb.is_consistent());
            assert_eq!(*arb.priority_order().last().unwrap(), w);
        }
    }
}
