//! Struct-of-arrays banks of `u64`-kernel arbiters.
//!
//! The allocators instantiate many identical small arbiters — `P` input
//! arbiters, `P*V` output arbiters, `P*P` pre-selection arbiters — and the
//! original representation (`Vec<Box<dyn Arbiter + Send>>`) scatters their
//! priority state across the heap, one allocation per arbiter, with a
//! virtual call per decision. A bank stores the state of a whole family of
//! same-kind, same-width arbiters contiguously (pointer array for
//! round-robin, packed `u64` beat rows for matrix) and makes decisions
//! directly on `u64` request words via the kernel primitives in
//! [`crate::bits`]. Behaviour is bit-identical to the boxed arbiters — the
//! differential test layer in `noc-core` drives both representations on
//! identical request streams and asserts grant equality.

use crate::bits::{rr_pick, width_mask};
use crate::ArbiterKind;

/// A bank of `count` identical arbiters of `width <= 64` inputs each.
#[derive(Clone, Debug)]
pub struct ArbiterBank {
    kind: ArbiterKind,
    count: usize,
    width: usize,
    /// Round-robin: the priority pointer of each arbiter. Empty otherwise.
    ptrs: Vec<u32>,
    /// Matrix: `beats[a * width + i]` is row `i` of arbiter `a` — bit `j`
    /// set iff input `i` currently beats input `j`. Empty otherwise.
    beats: Vec<u64>,
}

impl ArbiterBank {
    /// Creates a bank of `count` fresh arbiters. Panics if `width` is 0 or
    /// exceeds the 64-bit kernel word.
    pub fn new(kind: ArbiterKind, count: usize, width: usize) -> Self {
        assert!(
            (1..=64).contains(&width),
            "ArbiterBank width {width} outside kernel range"
        );
        let mut bank = ArbiterBank {
            kind,
            count,
            width,
            ptrs: Vec::new(),
            beats: Vec::new(),
        };
        match kind {
            ArbiterKind::FixedPriority => {}
            ArbiterKind::RoundRobin => bank.ptrs = vec![0; count],
            ArbiterKind::Matrix => {
                bank.beats = vec![0; count * width];
                bank.reset();
            }
        }
        bank
    }

    /// Number of arbiters in the bank.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Inputs per arbiter.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Arbiter kind shared by the bank.
    pub fn kind(&self) -> ArbiterKind {
        self.kind
    }

    /// Combinationally selects a winner for arbiter `a` among the set bits
    /// of `requests` (which must have no bits at or above the width).
    /// Semantically identical to [`crate::Arbiter::arbitrate`] on the
    /// corresponding boxed arbiter.
    #[inline]
    pub fn arbitrate(&self, a: usize, requests: u64) -> Option<usize> {
        debug_assert!(a < self.count);
        debug_assert_eq!(requests & !width_mask(self.width), 0);
        match self.kind {
            ArbiterKind::FixedPriority => {
                if requests == 0 {
                    None
                } else {
                    Some(requests.trailing_zeros() as usize)
                }
            }
            ArbiterKind::RoundRobin => rr_pick(requests, self.ptrs[a] as usize),
            ArbiterKind::Matrix => {
                if requests == 0 {
                    return None;
                }
                let rows = &self.beats[a * self.width..(a + 1) * self.width];
                let mut cand = requests;
                while cand != 0 {
                    let i = cand.trailing_zeros() as usize;
                    cand &= cand - 1;
                    // `i` wins iff it beats every other requester.
                    if requests & !(rows[i] | 1 << i) == 0 {
                        return Some(i);
                    }
                }
                // The beat matrix always encodes a strict total order, so a
                // winner exists whenever any input requests.
                debug_assert!(false, "inconsistent matrix bank state");
                None
            }
        }
    }

    /// Commits a successful grant to `winner` on arbiter `a`, advancing its
    /// priority state exactly like [`crate::Arbiter::update`].
    #[inline]
    pub fn update(&mut self, a: usize, winner: usize) {
        debug_assert!(a < self.count && winner < self.width);
        match self.kind {
            ArbiterKind::FixedPriority => {}
            ArbiterKind::RoundRobin => {
                self.ptrs[a] = ((winner + 1) % self.width) as u32;
            }
            ArbiterKind::Matrix => {
                let rows = &mut self.beats[a * self.width..(a + 1) * self.width];
                let wbit = 1u64 << winner;
                // Winner beats nobody; everybody now beats the winner.
                for (i, row) in rows.iter_mut().enumerate() {
                    if i == winner {
                        *row = 0;
                    } else {
                        *row |= wbit;
                    }
                }
            }
        }
    }

    /// Restores the power-on priority state of every arbiter in the bank.
    pub fn reset(&mut self) {
        match self.kind {
            ArbiterKind::FixedPriority => {}
            ArbiterKind::RoundRobin => self.ptrs.fill(0),
            ArbiterKind::Matrix => {
                // Initial order 0 > 1 > ... > n-1: row i beats all j > i.
                for a in 0..self.count {
                    for i in 0..self.width {
                        self.beats[a * self.width + i] =
                            width_mask(self.width) & !(width_mask(i + 1));
                    }
                }
            }
        }
    }
}

/// A bank of two-level tree arbiters over `groups * group_size <= 64`
/// inputs each — the struct-of-arrays counterpart of
/// [`crate::TreeArbiter`], used for the wide `P*V:1` output arbiters of the
/// VC allocators (§4.1). One root bank (width = group count) plus one leaf
/// bank (width = group size, `count * groups` arbiters) hold the whole
/// family's state in two contiguous allocations.
#[derive(Clone, Debug)]
pub struct TreeBank {
    groups: usize,
    group_size: usize,
    root: ArbiterBank,
    leaves: ArbiterBank,
}

impl TreeBank {
    /// Creates a bank of `count` tree arbiters, each `groups x group_size`
    /// wide. The total width must fit the 64-bit kernel word.
    pub fn new(kind: ArbiterKind, count: usize, groups: usize, group_size: usize) -> Self {
        assert!(groups > 0 && group_size > 0);
        assert!(
            groups * group_size <= 64,
            "TreeBank width {} outside kernel range",
            groups * group_size
        );
        TreeBank {
            groups,
            group_size,
            root: ArbiterBank::new(kind, count, groups),
            leaves: ArbiterBank::new(kind, count * groups, group_size),
        }
    }

    /// Total inputs per tree arbiter.
    pub fn width(&self) -> usize {
        self.groups * self.group_size
    }

    /// Winner for tree arbiter `a` over the flat request word `requests`
    /// (input `g * group_size + l` = leaf `l` of group `g`). Bit-identical
    /// to [`crate::TreeArbiter`] of the same kind and shape.
    #[inline]
    pub fn arbitrate(&self, a: usize, requests: u64) -> Option<usize> {
        if requests == 0 {
            return None;
        }
        let leaf_mask = width_mask(self.group_size);
        let mut active = 0u64;
        for g in 0..self.groups {
            if requests >> (g * self.group_size) & leaf_mask != 0 {
                active |= 1 << g;
            }
        }
        let g = self.root.arbitrate(a, active)?;
        let local = self.leaves.arbitrate(
            a * self.groups + g,
            requests >> (g * self.group_size) & leaf_mask,
        )?;
        Some(g * self.group_size + local)
    }

    /// Commits a grant: the root advances on the winning group, the winning
    /// group's leaf on the local index; other groups' leaves are untouched.
    #[inline]
    pub fn update(&mut self, a: usize, winner: usize) {
        let g = winner / self.group_size;
        self.root.update(a, g);
        self.leaves
            .update(a * self.groups + g, winner % self.group_size);
    }

    /// Restores power-on state for every tree in the bank.
    pub fn reset(&mut self) {
        self.root.reset();
        self.leaves.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Arbiter, Bits, TreeArbiter};

    fn kinds() -> [ArbiterKind; 3] {
        [
            ArbiterKind::FixedPriority,
            ArbiterKind::RoundRobin,
            ArbiterKind::Matrix,
        ]
    }

    /// Deterministic request-pattern stream (no RNG dependency here).
    fn patterns(width: usize, len: usize) -> Vec<u64> {
        let mut x = 0x9e3779b97f4a7c15u64;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 7) & width_mask(width)
            })
            .collect()
    }

    #[test]
    fn bank_matches_boxed_arbiters_on_committed_streams() {
        for kind in kinds() {
            for width in [1, 2, 3, 5, 7, 10, 16, 63, 64] {
                let count = 3;
                let mut bank = ArbiterBank::new(kind, count, width);
                let mut boxed: Vec<_> = (0..count).map(|_| kind.build(width)).collect();
                for (t, &p) in patterns(width, 200).iter().enumerate() {
                    let a = t % count;
                    let bits = Bits::from_indices(width, (0..width).filter(|i| p >> i & 1 != 0));
                    let got = bank.arbitrate(a, p);
                    let want = boxed[a].arbitrate(&bits);
                    assert_eq!(got, want, "{kind:?} w={width} t={t} p={p:b}");
                    if let Some(w) = got {
                        // Commit every other grant so losing grants are
                        // also exercised (the iSLIP no-update path).
                        if t % 2 == 0 {
                            bank.update(a, w);
                            boxed[a].update(w);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bank_reset_restores_power_on_state() {
        for kind in kinds() {
            let mut bank = ArbiterBank::new(kind, 2, 5);
            let fresh = ArbiterBank::new(kind, 2, 5);
            for w in [3usize, 1, 4] {
                bank.update(0, w);
                bank.update(1, (w + 1) % 5);
            }
            bank.reset();
            for p in 1u64..32 {
                assert_eq!(bank.arbitrate(0, p), fresh.arbitrate(0, p), "{kind:?}");
                assert_eq!(bank.arbitrate(1, p), fresh.arbitrate(1, p), "{kind:?}");
            }
        }
    }

    #[test]
    fn tree_bank_matches_tree_arbiter() {
        for kind in kinds() {
            for (groups, group_size) in [(2, 2), (3, 4), (5, 8), (8, 8), (10, 6)] {
                let width = groups * group_size;
                let mut bank = TreeBank::new(kind, 2, groups, group_size);
                let mut boxed = [
                    TreeArbiter::new(groups, group_size, kind),
                    TreeArbiter::new(groups, group_size, kind),
                ];
                for (t, &p) in patterns(width, 150).iter().enumerate() {
                    let a = t % 2;
                    let bits = Bits::from_indices(width, (0..width).filter(|i| p >> i & 1 != 0));
                    let got = bank.arbitrate(a, p);
                    let want = boxed[a].arbitrate(&bits);
                    assert_eq!(got, want, "{kind:?} {groups}x{group_size} t={t}");
                    if let Some(w) = got {
                        if t % 3 != 2 {
                            bank.update(a, w);
                            boxed[a].update(w);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn matrix_bank_is_least_recently_served() {
        let mut bank = ArbiterBank::new(ArbiterKind::Matrix, 1, 4);
        bank.update(0, 0);
        bank.update(0, 2);
        // LRS among {0, 2, 3}: 3 (never served) wins; then 0 beats 2.
        assert_eq!(bank.arbitrate(0, 0b1101), Some(3));
        assert_eq!(bank.arbitrate(0, 0b0101), Some(0));
    }

    #[test]
    fn bank_arbiters_are_independent() {
        let mut bank = ArbiterBank::new(ArbiterKind::RoundRobin, 3, 4);
        bank.update(1, 2); // only arbiter 1 advances
        assert_eq!(bank.arbitrate(0, 0b1111), Some(0));
        assert_eq!(bank.arbitrate(1, 0b1111), Some(3));
        assert_eq!(bank.arbitrate(2, 0b1111), Some(0));
    }
}
