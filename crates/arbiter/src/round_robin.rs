//! Round-robin arbiter with a rotating priority pointer.

use crate::{Arbiter, Bits, FixedPriorityArbiter};

/// Round-robin arbiter (the `rr` variants in the paper's figures).
///
/// A pointer marks the highest-priority input; the first requester at or
/// cyclically after the pointer wins. On a committed grant the pointer moves
/// to one past the winner, so the winner becomes lowest priority — the
/// classic rotating-priority scheme that provides strong fairness among
/// persistent requesters.
///
/// The hardware implementation mirrored by [`noc-hw`](../../hw) builds this
/// from a thermometer mask and two fixed-priority arbiters; the behavioural
/// model here is bit-exact with that structure (see
/// [`RoundRobinArbiter::arbitrate_masked_two_pass`], which the unit tests
/// check against the pointer-walk implementation for every state/request
/// combination up to 10 inputs).
/// ```
/// use noc_arbiter::{Arbiter, Bits, RoundRobinArbiter};
///
/// let mut arb = RoundRobinArbiter::new(4);
/// let all = Bits::ones(4);
/// assert_eq!(arb.arbitrate(&all), Some(0));
/// arb.update(0); // commit: input 0 becomes lowest priority
/// assert_eq!(arb.arbitrate(&all), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct RoundRobinArbiter {
    n: usize,
    /// Index of the current highest-priority input.
    pointer: usize,
}

impl RoundRobinArbiter {
    /// Creates an `n`-input round-robin arbiter with the pointer at 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one input");
        RoundRobinArbiter { n, pointer: 0 }
    }

    /// Current highest-priority input.
    pub fn pointer(&self) -> usize {
        self.pointer
    }

    /// Reference two-pass implementation matching the RTL structure:
    /// pass 1 arbitrates over `requests & thermometer_mask(pointer)` with a
    /// plain priority encoder; pass 2 arbitrates over the unmasked requests
    /// and is used only when the masked pass found nothing.
    pub fn arbitrate_masked_two_pass(&self, requests: &Bits) -> Option<usize> {
        let mut masked = requests.clone();
        // Thermometer mask: bits at positions >= pointer are enabled.
        for i in 0..self.pointer {
            masked.set(i, false);
        }
        masked.first_set().or_else(|| requests.first_set())
    }
}

impl Arbiter for RoundRobinArbiter {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn arbitrate(&self, requests: &Bits) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request width mismatch");
        FixedPriorityArbiter::select_from(requests, self.pointer)
    }

    fn update(&mut self, winner: usize) {
        assert!(winner < self.n, "winner {winner} out of range {}", self.n);
        self.pointer = (winner + 1) % self.n;
    }

    fn reset(&mut self) {
        self.pointer = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_through_persistent_requesters() {
        let mut arb = RoundRobinArbiter::new(4);
        let all = Bits::ones(4);
        let mut order = Vec::new();
        for _ in 0..8 {
            let w = arb.arbitrate(&all).unwrap();
            order.push(w);
            arb.update(w);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_idle_inputs() {
        let mut arb = RoundRobinArbiter::new(4);
        let r = Bits::from_indices(4, [1, 3]);
        let w = arb.arbitrate(&r).unwrap();
        assert_eq!(w, 1);
        arb.update(w);
        assert_eq!(arb.arbitrate(&r), Some(3));
        arb.update(3);
        assert_eq!(arb.arbitrate(&r), Some(1));
    }

    #[test]
    fn pointer_walk_matches_two_pass_rtl_structure() {
        // Exhaustive equivalence for n up to 10, all pointer states, all
        // request patterns.
        for n in 1..=10usize {
            for ptr in 0..n {
                let arb = RoundRobinArbiter { n, pointer: ptr };
                for pattern in 0u32..(1 << n) {
                    let r = Bits::from_indices(n, (0..n).filter(|i| pattern >> i & 1 != 0));
                    assert_eq!(
                        arb.arbitrate(&r),
                        arb.arbitrate_masked_two_pass(&r),
                        "n={n} ptr={ptr} pattern={pattern:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn recently_served_input_has_lowest_priority() {
        let mut arb = RoundRobinArbiter::new(3);
        arb.update(1); // pointer -> 2
        let r = Bits::from_indices(3, [0, 1]);
        // 2 not requesting; wrap to 0 before reaching 1.
        assert_eq!(arb.arbitrate(&r), Some(0));
    }
}
