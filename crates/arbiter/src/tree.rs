//! Two-level tree arbiter for large input counts.

use crate::{Arbiter, ArbiterKind, Bits};

/// Two-level tree arbiter: `G` leaf arbiters over groups of `g` inputs plus a
/// `G`-input root arbiter selecting among groups with active requests.
///
/// This is the structure §4.1 of the paper prescribes for the large
/// `P*V`-input arbiters at the output stage of a VC allocator: "a stage of
/// `P` `V`-input arbiters in parallel with a single `P`-input arbiter that
/// selects among them". Delay grows with `log` of the group size plus `log`
/// of the group count instead of `log(P*V)` through one monolithic arbiter
/// with a long priority chain.
///
/// Fairness is hierarchical: the root is fair among groups and each leaf is
/// fair within its group, which is weaker than flat least-recently-served
/// fairness but starvation-free as long as the component arbiters are.
pub struct TreeArbiter {
    n: usize,
    group_size: usize,
    leaves: Vec<Box<dyn Arbiter + Send>>,
    root: Box<dyn Arbiter + Send>,
}

impl TreeArbiter {
    /// Creates a tree arbiter over `num_groups * group_size` inputs, with all
    /// component arbiters of the given kind.
    pub fn new(num_groups: usize, group_size: usize, kind: ArbiterKind) -> Self {
        assert!(num_groups > 0 && group_size > 0);
        TreeArbiter {
            n: num_groups * group_size,
            group_size,
            leaves: (0..num_groups).map(|_| kind.build(group_size)).collect(),
            root: kind.build(num_groups),
        }
    }

    /// Number of leaf groups.
    pub fn num_groups(&self) -> usize {
        self.leaves.len()
    }

    /// Inputs per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    fn group_requests(&self, requests: &Bits, group: usize) -> Bits {
        let mut b = Bits::new(self.group_size);
        for i in 0..self.group_size {
            if requests.get(group * self.group_size + i) {
                b.set(i, true);
            }
        }
        b
    }
}

impl Arbiter for TreeArbiter {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn arbitrate(&self, requests: &Bits) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request width mismatch");
        let mut group_active = Bits::new(self.leaves.len());
        for g in 0..self.leaves.len() {
            if !self.group_requests(requests, g).is_zero() {
                group_active.set(g, true);
            }
        }
        let g = self.root.arbitrate(&group_active)?;
        // The root only grants groups with at least one active request, so
        // the leaf arbitration cannot come back empty.
        let local = self.leaves[g].arbitrate(&self.group_requests(requests, g))?;
        Some(g * self.group_size + local)
    }

    fn update(&mut self, winner: usize) {
        assert!(winner < self.n, "winner {winner} out of range {}", self.n);
        let g = winner / self.group_size;
        self.root.update(g);
        self.leaves[g].update(winner % self.group_size);
    }

    fn reset(&mut self) {
        self.root.reset();
        for l in &mut self.leaves {
            l.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_requesters_only() {
        let arb = TreeArbiter::new(4, 4, ArbiterKind::RoundRobin);
        for idx in [0usize, 5, 9, 15] {
            let r = Bits::from_indices(16, [idx]);
            assert_eq!(arb.arbitrate(&r), Some(idx));
        }
        assert_eq!(arb.arbitrate(&Bits::new(16)), None);
    }

    #[test]
    fn hierarchical_rotation_serves_all_groups() {
        let mut arb = TreeArbiter::new(3, 2, ArbiterKind::RoundRobin);
        let all = Bits::ones(6);
        let mut group_counts = [0usize; 3];
        for _ in 0..12 {
            let w = arb.arbitrate(&all).unwrap();
            group_counts[w / 2] += 1;
            arb.update(w);
        }
        assert_eq!(group_counts, [4, 4, 4]);
    }

    #[test]
    fn no_starvation_with_persistent_requests() {
        let mut arb = TreeArbiter::new(4, 4, ArbiterKind::Matrix);
        let r = Bits::from_indices(16, [1, 6, 11, 12, 15]);
        let mut served = std::collections::HashSet::new();
        for _ in 0..40 {
            let w = arb.arbitrate(&r).unwrap();
            served.insert(w);
            arb.update(w);
        }
        assert_eq!(served.len(), 5, "some persistent requester starved");
    }

    #[test]
    fn update_only_touches_winning_group() {
        let mut arb = TreeArbiter::new(2, 2, ArbiterKind::RoundRobin);
        // Serve input 0 (group 0); group 1's leaf pointer must be unchanged,
        // so within group 1 input 2 still has priority over input 3.
        arb.update(0);
        let r = Bits::from_indices(4, [2, 3]);
        assert_eq!(arb.arbitrate(&r), Some(2));
    }
}
