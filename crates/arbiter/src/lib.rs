#![forbid(unsafe_code)]
//! Arbiter primitives for network-on-chip router allocators.
//!
//! This crate implements the arbitration substrate used by the separable and
//! wavefront allocators of Becker & Dally, *Allocator Implementations for
//! Network-on-Chip Routers* (SC '09):
//!
//! * [`FixedPriorityArbiter`] — static priority, lowest index wins.
//! * [`RoundRobinArbiter`] — rotating priority pointer (the `rr` variants in
//!   the paper), implemented the way the RTL does it: a thermometer mask and
//!   two fixed-priority passes.
//! * [`MatrixArbiter`] — least-recently-served state matrix (the `m`
//!   variants), providing strong fairness.
//! * [`TreeArbiter`] — a two-level group/root decomposition used for the
//!   large `P*V`-input arbiters at the output stage of VC allocators (§4.1).
//!
//! All arbiters split decision from state update: [`Arbiter::arbitrate`] is a
//! pure combinational function of the request vector and the current priority
//! state, while [`Arbiter::update`] commits a *successful* grant. The split
//! is what lets separable allocators apply the iSLIP-style rule from the
//! paper (§2.1): "input priorities ... are only updated if the grant it
//! produces is also successful in the second arbitration stage".

pub mod bank;
pub mod bits;
mod fixed;
mod matrix;
mod round_robin;
mod tree;

pub use bank::{ArbiterBank, TreeBank};
pub use bits::{BitMatrix64, Bits};
pub use fixed::FixedPriorityArbiter;
pub use matrix::MatrixArbiter;
pub use round_robin::RoundRobinArbiter;
pub use tree::TreeArbiter;

/// An `n`-input arbiter: picks at most one winner among concurrent requesters.
///
/// Implementations must satisfy, for every request vector `r`:
///
/// * **grant ⊆ request** — `arbitrate(r)` is `Some(i)` only if `r.get(i)`.
/// * **work conservation** — `arbitrate(r)` is `Some(_)` whenever `r` has at
///   least one set bit.
/// * **purity** — `arbitrate` never mutates priority state; repeated calls
///   with the same requests return the same winner until `update` is called.
pub trait Arbiter {
    /// Number of requester inputs.
    fn num_inputs(&self) -> usize;

    /// Combinationally selects a winner among the set bits of `requests`.
    ///
    /// Returns `None` iff `requests` is all-zero. Panics if the width of
    /// `requests` differs from [`Arbiter::num_inputs`].
    fn arbitrate(&self, requests: &Bits) -> Option<usize>;

    /// Commits a successful grant to `winner`, advancing the priority state.
    ///
    /// Callers invoke this only when the grant "sticks" (e.g. survived the
    /// second stage of a separable allocator); losing speculative winners
    /// leave the state untouched so they retain priority next cycle.
    fn update(&mut self, winner: usize);

    /// Restores the power-on priority state.
    fn reset(&mut self);
}

/// Convenience: arbitrate and immediately commit the winner (single-stage use).
pub fn arbitrate_and_update(arb: &mut dyn Arbiter, requests: &Bits) -> Option<usize> {
    let w = arb.arbitrate(requests);
    if let Some(i) = w {
        arb.update(i);
    }
    w
}

/// The arbiter kinds evaluated in the paper's cost/quality studies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArbiterKind {
    /// Static priority (used inside other arbiters and as a baseline).
    FixedPriority,
    /// Rotating-pointer round-robin (`rr` in the paper's figures).
    RoundRobin,
    /// Least-recently-served matrix arbiter (`m` in the paper's figures).
    Matrix,
}

impl ArbiterKind {
    /// Instantiates an `n`-input arbiter of this kind.
    pub fn build(self, n: usize) -> Box<dyn Arbiter + Send> {
        match self {
            ArbiterKind::FixedPriority => Box::new(FixedPriorityArbiter::new(n)),
            ArbiterKind::RoundRobin => Box::new(RoundRobinArbiter::new(n)),
            ArbiterKind::Matrix => Box::new(MatrixArbiter::new(n)),
        }
    }

    /// Short name matching the paper's figure legends (`rr`, `m`).
    pub fn short_name(self) -> &'static str {
        match self {
            ArbiterKind::FixedPriority => "fp",
            ArbiterKind::RoundRobin => "rr",
            ArbiterKind::Matrix => "m",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> Vec<ArbiterKind> {
        vec![
            ArbiterKind::FixedPriority,
            ArbiterKind::RoundRobin,
            ArbiterKind::Matrix,
        ]
    }

    #[test]
    fn empty_requests_yield_no_grant() {
        for k in kinds() {
            let arb = k.build(8);
            assert_eq!(arb.arbitrate(&Bits::new(8)), None, "{k:?}");
        }
    }

    #[test]
    fn single_request_always_wins() {
        for k in kinds() {
            let mut arb = k.build(8);
            for i in 0..8 {
                let r = Bits::from_indices(8, [i]);
                assert_eq!(arb.arbitrate(&r), Some(i), "{k:?} input {i}");
                arb.update(i);
                assert_eq!(arb.arbitrate(&r), Some(i), "{k:?} input {i} after update");
            }
        }
    }

    #[test]
    fn grant_subset_of_request() {
        for k in kinds() {
            let mut arb = k.build(5);
            // Walk through a fixed request schedule, committing every grant.
            let schedule = [0b10110u32, 0b00001, 0b11111, 0b01010, 0b10000];
            for reqs in schedule {
                let r = Bits::from_indices(5, (0..5).filter(|i| reqs >> i & 1 != 0));
                if let Some(w) = arb.arbitrate(&r) {
                    assert!(r.get(w), "{k:?}: granted a non-requester");
                    arb.update(w);
                } else {
                    assert!(r.is_zero());
                }
            }
        }
    }

    #[test]
    fn work_conserving() {
        for k in kinds() {
            let arb = k.build(6);
            for pattern in 1u32..64 {
                let r = Bits::from_indices(6, (0..6).filter(|i| pattern >> i & 1 != 0));
                assert!(arb.arbitrate(&r).is_some(), "{k:?} pattern {pattern:b}");
            }
        }
    }

    #[test]
    fn arbitrate_is_pure() {
        for k in kinds() {
            let arb = k.build(4);
            let r = Bits::ones(4);
            let a = arb.arbitrate(&r);
            let b = arb.arbitrate(&r);
            assert_eq!(a, b, "{k:?}");
        }
    }

    #[test]
    fn round_robin_and_matrix_are_strongly_fair() {
        // With all inputs persistently requesting and every grant committed,
        // each input must be served exactly once per n grants.
        for k in [ArbiterKind::RoundRobin, ArbiterKind::Matrix] {
            let n = 7;
            let mut arb = k.build(n);
            let all = Bits::ones(n);
            let mut counts = vec![0usize; n];
            for _ in 0..n * 10 {
                let w = arb.arbitrate(&all).unwrap();
                counts[w] += 1;
                arb.update(w);
            }
            for (i, &c) in counts.iter().enumerate() {
                assert_eq!(c, 10, "{k:?} input {i} starved or favored: {counts:?}");
            }
        }
    }

    #[test]
    fn losing_grants_do_not_advance_priority() {
        // iSLIP rule: if we never call update, the same winner keeps winning.
        for k in kinds() {
            let arb = k.build(4);
            let r = Bits::ones(4);
            let w0 = arb.arbitrate(&r).unwrap();
            for _ in 0..5 {
                assert_eq!(arb.arbitrate(&r), Some(w0), "{k:?}");
            }
        }
    }

    #[test]
    fn reset_restores_initial_behavior() {
        for k in kinds() {
            let mut arb = k.build(5);
            let r = Bits::ones(5);
            let first = arb.arbitrate(&r).unwrap();
            for _ in 0..3 {
                let w = arb.arbitrate(&r).unwrap();
                arb.update(w);
            }
            arb.reset();
            assert_eq!(arb.arbitrate(&r), Some(first), "{k:?}");
        }
    }
}
