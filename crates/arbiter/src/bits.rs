//! A compact fixed-width bitset used for request and grant vectors.
//!
//! Allocator design points in this workspace go up to `P*V = 160` bits per
//! request vector (flattened butterfly, `P = 10`, `V = 16`), so a single
//! machine word is not enough. `Bits` stores an arbitrary fixed number of
//! bits — inline, for every width up to [`INLINE_WORDS`]` * 64`, so the
//! request/grant vectors built each cycle in the allocator kernels never
//! touch the heap (the `tests/zero_alloc.rs` audit counts on this), with
//! a `Vec<u64>` fallback for wider sets — and keeps all unused high bits
//! at zero, which lets the word-level operations (union, intersection,
//! popcount) stay branch-free.

/// Words stored inline before falling back to the heap: 192 bits, above
/// the widest vector any paper design point builds (160).
pub const INLINE_WORDS: usize = 3;

#[derive(Clone)]
enum Words {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// Fixed-width bit vector. The width is set at construction and never changes.
#[derive(Clone)]
pub struct Bits {
    len: usize,
    words: Words,
}

impl Bits {
    #[inline]
    fn nwords(len: usize) -> usize {
        len.div_ceil(64).max(1)
    }

    /// Creates an all-zero bit vector of width `len`.
    pub fn new(len: usize) -> Self {
        let n = Self::nwords(len);
        let words = if n <= INLINE_WORDS {
            Words::Inline([0; INLINE_WORDS])
        } else {
            Words::Heap(vec![0u64; n])
        };
        Bits { len, words }
    }

    /// The live words (exactly `nwords(len)` of them).
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline(a) => &a[..Self::nwords(self.len)],
            Words::Heap(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let n = Self::nwords(self.len);
        match &mut self.words {
            Words::Inline(a) => &mut a[..n],
            Words::Heap(v) => v,
        }
    }

    /// Creates an all-ones bit vector of width `len`.
    pub fn ones(len: usize) -> Self {
        let mut b = Bits::new(len);
        for w in b.words_mut() {
            *w = u64::MAX;
        }
        b.mask_tail();
        b
    }

    /// Builds a bit vector from an iterator of bit positions to set.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut b = Bits::new(len);
        for i in indices {
            b.set(i, true);
        }
        b
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has width zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words()[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Writes bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, s) = (i / 64, i % 64);
        if v {
            self.words_mut()[w] |= 1 << s;
        } else {
            self.words_mut()[w] &= !(1 << s);
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        for w in self.words_mut() {
            *w = 0;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// True if exactly one bit is set.
    pub fn is_one_hot(&self) -> bool {
        self.count_ones() == 1
    }

    /// Index of the lowest set bit, if any.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words().iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Index of the lowest set bit at position `from` or above, if any.
    pub fn first_set_from(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let words = self.words();
        let start_word = from / 64;
        let mut w = words[start_word] & (u64::MAX << (from % 64));
        let mut wi = start_word;
        loop {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
            wi += 1;
            if wi >= words.len() {
                return None;
            }
            w = words[wi];
        }
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_set(&self) -> SetBitsIter<'_> {
        let words = self.words();
        SetBitsIter {
            words,
            word_idx: 0,
            cur: words.first().copied().unwrap_or(0),
        }
    }

    /// In-place union with `other`. Panics on width mismatch.
    pub fn union_with(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "Bits width mismatch");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`. Panics on width mismatch.
    pub fn intersect_with(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "Bits width mismatch");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= b;
        }
    }

    /// In-place set difference (`self & !other`). Panics on width mismatch.
    pub fn subtract(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "Bits width mismatch");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !b;
        }
    }

    /// True if `self` and `other` share any set bit.
    pub fn intersects(&self, other: &Bits) -> bool {
        assert_eq!(self.len, other.len, "Bits width mismatch");
        self.words()
            .iter()
            .zip(other.words())
            .any(|(a, b)| a & b != 0)
    }

    /// True if every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &Bits) -> bool {
        assert_eq!(self.len, other.len, "Bits width mismatch");
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        } else if self.len == 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last = 0;
            }
        }
    }
}

// Manual impls: two equal-width vectors compare by live words only, so an
// inline and a heap representation of the same set (impossible today, but
// cheap to be robust against) and the unused inline tail never leak into
// equality or hashing.
impl PartialEq for Bits {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words() == other.words()
    }
}
impl Eq for Bits {}

impl std::hash::Hash for Bits {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words().hash(state);
    }
}

impl std::fmt::Debug for Bits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bits[{}]{{", self.len)?;
        let mut first = true;
        for i in self.iter_set() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Iterator over set-bit indices of a [`Bits`].
pub struct SetBitsIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    cur: u64,
}

impl Iterator for SetBitsIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let bit = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let b = Bits::new(100);
        assert_eq!(b.len(), 100);
        assert!(b.is_zero());
        assert_eq!(b.count_ones(), 0);
        assert!(!b.is_one_hot());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bits::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            b.set(i, true);
            assert!(b.get(i), "bit {i}");
        }
        assert_eq!(b.count_ones(), 8);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn ones_respects_width() {
        let b = Bits::ones(70);
        assert_eq!(b.count_ones(), 70);
        let b = Bits::ones(64);
        assert_eq!(b.count_ones(), 64);
        let b = Bits::ones(1);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn first_set_and_from() {
        let b = Bits::from_indices(150, [5, 70, 149]);
        assert_eq!(b.first_set(), Some(5));
        assert_eq!(b.first_set_from(0), Some(5));
        assert_eq!(b.first_set_from(5), Some(5));
        assert_eq!(b.first_set_from(6), Some(70));
        assert_eq!(b.first_set_from(71), Some(149));
        assert_eq!(b.first_set_from(150), None);
        assert_eq!(Bits::new(10).first_set(), None);
    }

    #[test]
    fn iter_set_matches_manual() {
        let idx = [0usize, 3, 63, 64, 100, 127];
        let b = Bits::from_indices(128, idx);
        let got: Vec<usize> = b.iter_set().collect();
        assert_eq!(got, idx);
    }

    #[test]
    fn set_algebra() {
        let a = Bits::from_indices(96, [1, 10, 80]);
        let b = Bits::from_indices(96, [10, 80, 90]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_set().collect::<Vec<_>>(), vec![1, 10, 80, 90]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_set().collect::<Vec<_>>(), vec![10, 80]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter_set().collect::<Vec<_>>(), vec![1]);
        assert!(a.intersects(&b));
        assert!(i.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn one_hot() {
        assert!(Bits::from_indices(70, [69]).is_one_hot());
        assert!(!Bits::from_indices(70, [1, 69]).is_one_hot());
    }

    #[test]
    fn wide_vectors_fall_back_to_the_heap() {
        // Above INLINE_WORDS * 64 bits the heap representation takes over
        // with identical semantics.
        let wide = INLINE_WORDS * 64 + 37;
        let mut b = Bits::new(wide);
        assert!(b.is_zero());
        b.set(wide - 1, true);
        b.set(0, true);
        assert_eq!(b.count_ones(), 2);
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![0, wide - 1]);
        assert_eq!(Bits::ones(wide).count_ones(), wide);
    }

    #[test]
    fn inline_boundary_widths_roundtrip() {
        for len in [63, 64, 65, 191, 192, 193] {
            let b = Bits::ones(len);
            assert_eq!(b.count_ones(), len, "width {len}");
            assert_eq!(b.iter_set().count(), len);
            assert_eq!(b, Bits::from_indices(len, 0..len));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        Bits::new(8).get(8);
    }
}
