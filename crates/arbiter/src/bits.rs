//! A compact fixed-width bitset used for request and grant vectors.
//!
//! Allocator design points in this workspace go up to `P*V = 160` bits per
//! request vector (flattened butterfly, `P = 10`, `V = 16`), so a single
//! machine word is not enough. `Bits` stores an arbitrary fixed number of
//! bits — inline, for every width up to [`INLINE_WORDS`]` * 64`, so the
//! request/grant vectors built each cycle in the allocator kernels never
//! touch the heap (the `tests/zero_alloc.rs` audit counts on this), with
//! a `Vec<u64>` fallback for wider sets — and keeps all unused high bits
//! at zero, which lets the word-level operations (union, intersection,
//! popcount) stay branch-free.

/// Words stored inline before falling back to the heap: 192 bits, above
/// the widest vector any paper design point builds (160).
pub const INLINE_WORDS: usize = 3;

// ---------------------------------------------------------------------------
// u64 kernel primitives
//
// The bit-parallel allocator kernels treat a request vector of width
// `n <= 64` as a single machine word. The primitives below are the whole
// vocabulary those kernels need: a width mask, a rotate that wraps at the
// *vector* width (not at 64 — the wavefront diagonal recurrence needs
// wrap-around at non-power-of-two port counts), a mask-and-ctz round-robin
// pick, and the AND-NOT speculative kill. Each is deliberately tiny so the
// kernel-level unit tests can pin its semantics against a scalar oracle and
// against a catalogue of off-by-one mutants.
// ---------------------------------------------------------------------------

/// The lowest `n` bits set, for `1 <= n <= 64`.
#[inline]
pub fn width_mask(n: usize) -> u64 {
    debug_assert!((1..=64).contains(&n), "width {n} out of kernel range");
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Rotate-left of a width-`n` vector by `by` positions: bit `j` of `word`
/// moves to position `(j + by) % n`. Bits at positions `>= n` must be (and
/// stay) zero. `by` may be any value; it is reduced mod `n`.
#[inline]
pub fn rotl_width(word: u64, by: usize, n: usize) -> u64 {
    debug_assert!((1..=64).contains(&n));
    debug_assert_eq!(word & !width_mask(n), 0, "stray bits above width {n}");
    let by = by % n;
    if by == 0 {
        word
    } else {
        ((word << by) | (word >> (n - by))) & width_mask(n)
    }
}

/// Mask-and-ctz round-robin pick: the lowest set bit of `requests` at
/// position `ptr` or above, wrapping to the lowest set bit overall when the
/// masked pass comes up empty. Exactly the two-pass thermometer-mask
/// structure of [`crate::RoundRobinArbiter`], collapsed to two word ops.
///
/// `requests` must have no bits set at or above the arbiter width, and
/// `ptr` must be below it; under those preconditions the result is
/// bit-identical to the pointer-walk arbiter.
#[inline]
pub fn rr_pick(requests: u64, ptr: usize) -> Option<usize> {
    if requests == 0 {
        return None;
    }
    debug_assert!(ptr < 64);
    let masked = requests & (u64::MAX << ptr);
    let w = if masked != 0 { masked } else { requests };
    Some(w.trailing_zeros() as usize)
}

/// AND-NOT speculative kill: the speculative candidates of `spec` that do
/// not collide with any bit of `blocked`. The masking stage of §5.2 is this
/// single operation once port usage is expressed as a `u64` mask.
#[inline]
pub fn spec_kill(spec: u64, blocked: u64) -> u64 {
    spec & !blocked
}

/// A request/grant matrix over at most 64 resource columns, one `u64` row
/// word per requester — the kernel-side counterpart of `noc-core`'s
/// `BitMatrix`, used as reusable scratch by the bit-parallel separable and
/// wavefront kernels (row sweeps, transposes, diagonal scatters).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix64 {
    rows: usize,
    cols: usize,
    words: Vec<u64>,
}

impl BitMatrix64 {
    /// All-zero `rows x cols` matrix; `cols` must be `1..=64`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!((1..=64).contains(&cols), "BitMatrix64 cols {cols} > 64");
        BitMatrix64 {
            rows,
            cols,
            words: vec![0; rows],
        }
    }

    /// Number of requester rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of resource columns.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a word (bit `c` = entry `(r, c)`).
    #[inline]
    pub fn row(&self, r: usize) -> u64 {
        self.words[r]
    }

    /// Overwrites row `r`; bits at or above the column count are discarded.
    #[inline]
    pub fn set_row(&mut self, r: usize, word: u64) {
        self.words[r] = word & width_mask(self.cols);
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(c < self.cols);
        self.words[r] >> c & 1 != 0
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(c < self.cols);
        if v {
            self.words[r] |= 1 << c;
        } else {
            self.words[r] &= !(1 << c);
        }
    }

    /// Clears every entry.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Total set entries.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Writes the transpose into `cols_out`: `cols_out[c]` gets bit `r` set
    /// iff entry `(r, c)` is set. Requires `rows <= 64` and
    /// `cols_out.len() >= cols`; entries beyond the column count are left
    /// untouched. Runs in O(set entries), which is what makes the
    /// output-first kernels cheap on sparse request matrices.
    pub fn transpose_into(&self, cols_out: &mut [u64]) {
        assert!(self.rows <= 64, "transpose needs <= 64 rows");
        assert!(cols_out.len() >= self.cols);
        cols_out[..self.cols].fill(0);
        for (r, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let c = w.trailing_zeros() as usize;
                w &= w - 1;
                cols_out[c] |= 1 << r;
            }
        }
    }
}

#[derive(Clone)]
enum Words {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// Fixed-width bit vector. The width is set at construction and never changes.
#[derive(Clone)]
pub struct Bits {
    len: usize,
    words: Words,
}

impl Bits {
    #[inline]
    fn nwords(len: usize) -> usize {
        len.div_ceil(64).max(1)
    }

    /// Creates an all-zero bit vector of width `len`.
    pub fn new(len: usize) -> Self {
        let n = Self::nwords(len);
        let words = if n <= INLINE_WORDS {
            Words::Inline([0; INLINE_WORDS])
        } else {
            Words::Heap(vec![0u64; n])
        };
        Bits { len, words }
    }

    /// The live words (exactly `nwords(len)` of them).
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.words {
            Words::Inline(a) => &a[..Self::nwords(self.len)],
            Words::Heap(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let n = Self::nwords(self.len);
        match &mut self.words {
            Words::Inline(a) => &mut a[..n],
            Words::Heap(v) => v,
        }
    }

    /// Creates an all-ones bit vector of width `len`.
    pub fn ones(len: usize) -> Self {
        let mut b = Bits::new(len);
        for w in b.words_mut() {
            *w = u64::MAX;
        }
        b.mask_tail();
        b
    }

    /// Builds a bit vector from an iterator of bit positions to set.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut b = Bits::new(len);
        for i in indices {
            b.set(i, true);
        }
        b
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has width zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words()[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Writes bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, s) = (i / 64, i % 64);
        if v {
            self.words_mut()[w] |= 1 << s;
        } else {
            self.words_mut()[w] &= !(1 << s);
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        for w in self.words_mut() {
            *w = 0;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// True if exactly one bit is set.
    pub fn is_one_hot(&self) -> bool {
        self.count_ones() == 1
    }

    /// Index of the lowest set bit, if any.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words().iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Index of the lowest set bit at position `from` or above, if any.
    pub fn first_set_from(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let words = self.words();
        let start_word = from / 64;
        let mut w = words[start_word] & (u64::MAX << (from % 64));
        let mut wi = start_word;
        loop {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
            wi += 1;
            if wi >= words.len() {
                return None;
            }
            w = words[wi];
        }
    }

    /// The vector as a single kernel word. Only meaningful for widths up to
    /// 64 (asserted in debug builds); this is the bridge the bit-parallel
    /// kernels use to lift a narrow `Bits` row into `u64` arithmetic.
    #[inline]
    pub fn low_word(&self) -> u64 {
        debug_assert!(self.len <= 64, "low_word on {}-bit vector", self.len);
        self.words()[0]
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_set(&self) -> SetBitsIter<'_> {
        let words = self.words();
        SetBitsIter {
            words,
            word_idx: 0,
            cur: words.first().copied().unwrap_or(0),
        }
    }

    /// In-place union with `other`. Panics on width mismatch.
    pub fn union_with(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "Bits width mismatch");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`. Panics on width mismatch.
    pub fn intersect_with(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "Bits width mismatch");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= b;
        }
    }

    /// In-place set difference (`self & !other`). Panics on width mismatch.
    pub fn subtract(&mut self, other: &Bits) {
        assert_eq!(self.len, other.len, "Bits width mismatch");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !b;
        }
    }

    /// True if `self` and `other` share any set bit.
    pub fn intersects(&self, other: &Bits) -> bool {
        assert_eq!(self.len, other.len, "Bits width mismatch");
        self.words()
            .iter()
            .zip(other.words())
            .any(|(a, b)| a & b != 0)
    }

    /// True if every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &Bits) -> bool {
        assert_eq!(self.len, other.len, "Bits width mismatch");
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        } else if self.len == 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last = 0;
            }
        }
    }
}

// Manual impls: two equal-width vectors compare by live words only, so an
// inline and a heap representation of the same set (impossible today, but
// cheap to be robust against) and the unused inline tail never leak into
// equality or hashing.
impl PartialEq for Bits {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words() == other.words()
    }
}
impl Eq for Bits {}

impl std::hash::Hash for Bits {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words().hash(state);
    }
}

impl std::fmt::Debug for Bits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bits[{}]{{", self.len)?;
        let mut first = true;
        for i in self.iter_set() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Iterator over set-bit indices of a [`Bits`].
pub struct SetBitsIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    cur: u64,
}

impl Iterator for SetBitsIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.cur != 0 {
                let bit = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let b = Bits::new(100);
        assert_eq!(b.len(), 100);
        assert!(b.is_zero());
        assert_eq!(b.count_ones(), 0);
        assert!(!b.is_one_hot());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bits::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            b.set(i, true);
            assert!(b.get(i), "bit {i}");
        }
        assert_eq!(b.count_ones(), 8);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn ones_respects_width() {
        let b = Bits::ones(70);
        assert_eq!(b.count_ones(), 70);
        let b = Bits::ones(64);
        assert_eq!(b.count_ones(), 64);
        let b = Bits::ones(1);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn first_set_and_from() {
        let b = Bits::from_indices(150, [5, 70, 149]);
        assert_eq!(b.first_set(), Some(5));
        assert_eq!(b.first_set_from(0), Some(5));
        assert_eq!(b.first_set_from(5), Some(5));
        assert_eq!(b.first_set_from(6), Some(70));
        assert_eq!(b.first_set_from(71), Some(149));
        assert_eq!(b.first_set_from(150), None);
        assert_eq!(Bits::new(10).first_set(), None);
    }

    #[test]
    fn iter_set_matches_manual() {
        let idx = [0usize, 3, 63, 64, 100, 127];
        let b = Bits::from_indices(128, idx);
        let got: Vec<usize> = b.iter_set().collect();
        assert_eq!(got, idx);
    }

    #[test]
    fn set_algebra() {
        let a = Bits::from_indices(96, [1, 10, 80]);
        let b = Bits::from_indices(96, [10, 80, 90]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_set().collect::<Vec<_>>(), vec![1, 10, 80, 90]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_set().collect::<Vec<_>>(), vec![10, 80]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.iter_set().collect::<Vec<_>>(), vec![1]);
        assert!(a.intersects(&b));
        assert!(i.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn one_hot() {
        assert!(Bits::from_indices(70, [69]).is_one_hot());
        assert!(!Bits::from_indices(70, [1, 69]).is_one_hot());
    }

    #[test]
    fn wide_vectors_fall_back_to_the_heap() {
        // Above INLINE_WORDS * 64 bits the heap representation takes over
        // with identical semantics.
        let wide = INLINE_WORDS * 64 + 37;
        let mut b = Bits::new(wide);
        assert!(b.is_zero());
        b.set(wide - 1, true);
        b.set(0, true);
        assert_eq!(b.count_ones(), 2);
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![0, wide - 1]);
        assert_eq!(Bits::ones(wide).count_ones(), wide);
    }

    #[test]
    fn inline_boundary_widths_roundtrip() {
        for len in [63, 64, 65, 191, 192, 193] {
            let b = Bits::ones(len);
            assert_eq!(b.count_ones(), len, "width {len}");
            assert_eq!(b.iter_set().count(), len);
            assert_eq!(b, Bits::from_indices(len, 0..len));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        Bits::new(8).get(8);
    }
}

/// Kernel-primitive pinning tests, in the style of the `crates/mc` mutant
/// catalogue: every primitive is checked against a bit-at-a-time scalar
/// oracle over an exhaustive input grid, and a catalogue of deliberately
/// off-by-one mutants is then run over the *same* grid to prove the oracle
/// check has teeth — a mutant that no input distinguishes would mean the
/// pinning test could not catch that bug.
#[cfg(test)]
#[allow(clippy::type_complexity)]
mod kernel_tests {
    use super::*;

    /// Widths covering non-powers-of-two (wrap-around is the hard case),
    /// the paper's port counts (5, 10), and the word boundary.
    const WIDTHS: [usize; 10] = [1, 2, 3, 5, 7, 8, 10, 16, 63, 64];

    fn patterns_for(n: usize) -> Vec<u64> {
        if n <= 10 {
            // Exhaustive for small widths.
            (0..(1u64 << n)).collect()
        } else {
            let mut x = 0x243f6a8885a308d3u64;
            (0..512)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 3) & width_mask(n)
                })
                .collect()
        }
    }

    /// Scalar oracle: move each set bit individually.
    fn oracle_rotl(word: u64, by: usize, n: usize) -> u64 {
        let mut out = 0;
        for j in 0..n {
            if word >> j & 1 != 0 {
                out |= 1 << ((j + by) % n);
            }
        }
        out
    }

    /// Scalar oracle: pointer walk, exactly `RoundRobinArbiter::arbitrate`.
    fn oracle_rr(requests: u64, ptr: usize, n: usize) -> Option<usize> {
        for k in 0..n {
            let i = (ptr + k) % n;
            if requests >> i & 1 != 0 {
                return Some(i);
            }
        }
        None
    }

    /// Scalar oracle: per-bit speculative kill.
    fn oracle_kill(spec: u64, blocked: u64, n: usize) -> u64 {
        let mut out = 0;
        for j in 0..n {
            if spec >> j & 1 != 0 && blocked >> j & 1 == 0 {
                out |= 1 << j;
            }
        }
        out
    }

    #[test]
    fn rotl_width_matches_oracle_including_nonpow2_wraparound() {
        for &n in &WIDTHS {
            for by in 0..(2 * n).max(4) {
                for &p in &patterns_for(n) {
                    assert_eq!(
                        rotl_width(p, by, n),
                        oracle_rotl(p, by, n),
                        "n={n} by={by} p={p:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn rr_pick_matches_pointer_walk_for_all_states() {
        for &n in &WIDTHS {
            for ptr in 0..n {
                for &p in &patterns_for(n) {
                    assert_eq!(
                        rr_pick(p, ptr),
                        oracle_rr(p, ptr, n),
                        "n={n} ptr={ptr} p={p:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn spec_kill_matches_per_bit_oracle() {
        for &n in &WIDTHS {
            let pats = patterns_for(n.min(8));
            for &s in &pats {
                for &b in &pats {
                    assert_eq!(spec_kill(s, b), oracle_kill(s, b, 64), "s={s:#x} b={b:#x}");
                }
            }
        }
    }

    // --- the mutant catalogue -------------------------------------------
    //
    // Each mutant is an off-by-one (or operator-swap) variant of a kernel
    // primitive. The assertion is *existential*: some input in the pinning
    // grid must distinguish the mutant from the oracle. If a mutant ever
    // becomes indistinguishable, the corresponding pinning test has lost
    // its power and must be extended.

    type NamedMutant<F> = (&'static str, F);

    fn rotl_mutants() -> Vec<NamedMutant<fn(u64, usize, usize) -> u64>> {
        vec![
            // Wraps at the 64-bit word instead of the vector width.
            ("rotl wraps at word not width", |w, by, n| {
                let by = by % n;
                if by == 0 {
                    w
                } else {
                    w.rotate_left(by as u32) & width_mask(n)
                }
            }),
            // Off-by-one in the wrap shift (n - by - 1).
            ("rotl wrap shift off by one", |w, by, n| {
                let by = by % n;
                if by == 0 {
                    w
                } else {
                    ((w << by) | (w >> (n - by).saturating_sub(1).max(1))) & width_mask(n)
                }
            }),
            // Forgets to mask the tail after shifting.
            ("rotl drops tail mask", |w, by, n| {
                let by = by % n;
                if by == 0 {
                    w
                } else {
                    (w << by) | (w >> (n - by))
                }
            }),
        ]
    }

    #[test]
    fn rotl_mutant_catalogue_is_rejected() {
        for (name, mutant) in rotl_mutants() {
            let mut caught = false;
            'search: for &n in &WIDTHS {
                for by in 0..(2 * n).max(4) {
                    for &p in &patterns_for(n) {
                        if mutant(p, by, n) != oracle_rotl(p, by, n) {
                            caught = true;
                            break 'search;
                        }
                    }
                }
            }
            assert!(caught, "mutant '{name}' survives the pinning grid");
        }
    }

    #[test]
    fn rr_pick_mutant_catalogue_is_rejected() {
        let mutants: Vec<NamedMutant<fn(u64, usize) -> Option<usize>>> = vec![
            // Thermometer mask starts one past the pointer, so the
            // highest-priority input itself is skipped.
            ("rr mask excludes the pointer", |r, ptr| {
                if r == 0 {
                    return None;
                }
                let masked = r & (u64::MAX << (ptr + 1).min(63));
                let w = if masked != 0 { masked } else { r };
                Some(w.trailing_zeros() as usize)
            }),
            // Takes the unmasked pass first, destroying rotation entirely.
            ("rr prefers the unmasked pass", |r, _ptr| {
                if r == 0 {
                    None
                } else {
                    Some(r.trailing_zeros() as usize)
                }
            }),
            // Uses leading_zeros: sweeps from the top instead of ctz order.
            ("rr sweeps from the msb", |r, ptr| {
                if r == 0 {
                    return None;
                }
                let masked = r & (u64::MAX << ptr);
                let w = if masked != 0 { masked } else { r };
                Some(63 - w.leading_zeros() as usize)
            }),
        ];
        for (name, mutant) in mutants {
            let mut caught = false;
            'search: for &n in &WIDTHS {
                for ptr in 0..n {
                    for &p in &patterns_for(n) {
                        if mutant(p, ptr) != oracle_rr(p, ptr, n) {
                            caught = true;
                            break 'search;
                        }
                    }
                }
            }
            assert!(caught, "mutant '{name}' survives the pinning grid");
        }
    }

    #[test]
    fn spec_kill_mutant_catalogue_is_rejected() {
        let mutants: Vec<NamedMutant<fn(u64, u64) -> u64>> = vec![
            // AND instead of AND-NOT: keeps exactly the colliding grants.
            ("kill keeps collisions", |s, b| s & b),
            // OR-NOT: resurrects grants that never existed.
            ("kill resurrects non-grants", |s, b| s | !b),
            // Kills against the mask shifted by one port.
            ("kill mask off by one port", |s, b| s & !(b << 1)),
        ];
        let pats = patterns_for(8);
        for (name, mutant) in mutants {
            let caught = pats
                .iter()
                .any(|&s| pats.iter().any(|&b| mutant(s, b) != oracle_kill(s, b, 64)));
            assert!(caught, "mutant '{name}' survives the pinning grid");
        }
    }

    #[test]
    fn bitmatrix64_roundtrip_and_transpose() {
        let mut m = BitMatrix64::new(5, 7);
        m.set(0, 6, true);
        m.set(4, 0, true);
        m.set(2, 3, true);
        assert_eq!(m.count_ones(), 3);
        assert!(m.get(0, 6) && m.get(4, 0) && m.get(2, 3) && !m.get(1, 1));
        let mut cols = [u64::MAX; 8];
        m.transpose_into(&mut cols);
        assert_eq!(cols[6], 1 << 0);
        assert_eq!(cols[0], 1 << 4);
        assert_eq!(cols[3], 1 << 2);
        assert_eq!(cols[1], 0);
        // Slots past the column count are untouched.
        assert_eq!(cols[7], u64::MAX);
        m.set(2, 3, false);
        assert_eq!(m.count_ones(), 2);
        m.set_row(1, u64::MAX);
        assert_eq!(m.row(1), width_mask(7));
        m.clear();
        assert_eq!(m.count_ones(), 0);
    }
}
