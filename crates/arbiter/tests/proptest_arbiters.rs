//! Property-based tests for the bitset and arbiter invariants.

use noc_arbiter::{Arbiter, ArbiterKind, Bits, TreeArbiter};
use proptest::prelude::*;

fn bits_strategy(max_len: usize) -> impl Strategy<Value = Bits> {
    (1usize..=max_len).prop_flat_map(|len| {
        proptest::collection::vec(proptest::bool::ANY, len).prop_map(move |v| {
            Bits::from_indices(
                len,
                v.iter().enumerate().filter(|(_, b)| **b).map(|(i, _)| i),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn count_ones_matches_iter(b in bits_strategy(200)) {
        prop_assert_eq!(b.count_ones(), b.iter_set().count());
        prop_assert_eq!(b.is_zero(), b.count_ones() == 0);
        prop_assert_eq!(b.is_one_hot(), b.count_ones() == 1);
    }

    #[test]
    fn first_set_from_agrees_with_scan(b in bits_strategy(150), from in 0usize..160) {
        let expect = b.iter_set().find(|&i| i >= from.min(b.len()));
        let got = if from >= b.len() { None } else { b.first_set_from(from) };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn union_intersection_de_morgan(a in bits_strategy(100)) {
        // A ∪ A = A, A ∩ A = A, A \ A = ∅.
        let mut u = a.clone();
        u.union_with(&a);
        prop_assert_eq!(&u, &a);
        let mut i = a.clone();
        i.intersect_with(&a);
        prop_assert_eq!(&i, &a);
        let mut d = a.clone();
        d.subtract(&a);
        prop_assert!(d.is_zero());
    }

    #[test]
    fn arbiters_grant_valid_requester_or_none(
        b in bits_strategy(40),
        commits in proptest::collection::vec(proptest::bool::ANY, 0..20)
    ) {
        for kind in [ArbiterKind::FixedPriority, ArbiterKind::RoundRobin, ArbiterKind::Matrix] {
            let mut arb = kind.build(b.len());
            // Random committed history first.
            for (k, c) in commits.iter().enumerate() {
                if *c {
                    arb.update(k % b.len());
                }
            }
            match arb.arbitrate(&b) {
                Some(w) => prop_assert!(b.get(w), "{kind:?}"),
                None => prop_assert!(b.is_zero(), "{kind:?}"),
            }
        }
    }

    #[test]
    fn round_robin_serves_all_within_n_rounds(n in 2usize..24) {
        let mut arb = noc_arbiter::RoundRobinArbiter::new(n);
        let all = Bits::ones(n);
        let mut seen = vec![false; n];
        for _ in 0..n {
            let w = arb.arbitrate(&all).unwrap();
            seen[w] = true;
            arb.update(w);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn round_robin_and_matrix_are_starvation_free(
        n in 2usize..16,
        p in 0usize..16,
        noise in proptest::collection::vec(proptest::bool::ANY, 256)
    ) {
        // A persistent requester competing against arbitrary other traffic
        // must be granted within n rounds (every granted competitor moves
        // behind it in priority, so at most n-1 grants can precede it).
        let p = p % n;
        for kind in [ArbiterKind::RoundRobin, ArbiterKind::Matrix] {
            let mut arb = kind.build(n);
            let mut served_at = None;
            for round in 0..n {
                let mut req = Bits::from_indices(
                    n,
                    (0..n).filter(|&i| noise[(round * n + i) % noise.len()]),
                );
                req.set(p, true);
                let w = arb.arbitrate(&req).expect("non-empty request set");
                arb.update(w);
                if w == p {
                    served_at = Some(round);
                    break;
                }
            }
            prop_assert!(
                served_at.is_some(),
                "{kind:?}: requester {p} starved for {n} rounds"
            );
        }
    }

    #[test]
    fn tree_arbiter_valid_for_any_group_shape(
        groups in 1usize..6,
        group_size in 1usize..6,
        pattern in proptest::collection::vec(proptest::bool::ANY, 36)
    ) {
        let n = groups * group_size;
        let mut arb = TreeArbiter::new(groups, group_size, ArbiterKind::RoundRobin);
        let b = Bits::from_indices(n, (0..n).filter(|&i| pattern[i]));
        match arb.arbitrate(&b) {
            Some(w) => {
                prop_assert!(b.get(w));
                arb.update(w);
            }
            None => prop_assert!(b.is_zero()),
        }
    }
}
