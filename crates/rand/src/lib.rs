#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate vendors
//! the small subset of the rand 0.8 API the workspace uses — `Rng::gen_bool`,
//! `Rng::gen_range` over integer ranges, and `rngs::StdRng` seeded through
//! `SeedableRng::seed_from_u64` — on top of a xoshiro256++ generator.
//! Sequences are deterministic given a seed but intentionally *not*
//! bit-compatible with the real `rand` crate; every consumer in this
//! workspace only relies on seed-determinism and statistical quality.

use std::ops::{Range, RangeInclusive};

/// A random-number generator: the subset of `rand::Rng` used here.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p` (`0.0..=1.0`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, the same resolution rand uses.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform sample from `range` (must be non-empty).
    #[inline]
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can be sampled uniformly (stand-in for `SampleRange`).
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty sample range");
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty sample range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty sample range");
        // Uniform in [0, 1) with 53 bits of precision, then scale.
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Seedable generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator, the workspace's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// splitmix64 step, used to expand the 64-bit seed into full state.
    #[inline]
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut x);
            }
            // All-zero state is the one invalid xoshiro state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..4usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = takes_impl(&mut rng);
        assert!(v < 4);
    }
}
